"""Command-line entry point: ``repro-verify`` / ``python -m repro.verify``.

Two subcommands::

    repro-verify fuzz   --budget 60s --seed 0 --policies fp,rr,tdma
    repro-verify replay --corpus tests/corpus

``fuzz`` runs a soundness-fuzzing campaign (optionally writing shrunk
reproducers into a corpus directory); ``replay`` re-checks every corpus
entry and fails on any regression.  Both exit non-zero on violations, so
they slot directly into CI gates.

Exit codes follow :mod:`repro.exitcodes`: 0 all oracles passed, 1
soundness violations found, 2 invalid command line or corpus entry,
3 analysis error during a campaign, 4 execution error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import AnalysisError, ModelError, ReproError
from repro.exitcodes import EXIT_USAGE, exit_code_for
from repro.model.platform import BusPolicy
from repro.perf import global_counters, reset_global_counters
from repro.verify.cases import CASE_KINDS
from repro.verify.corpus import DEFAULT_CORPUS, replay_corpus
from repro.verify.engine import fuzz
from repro.verify.faults import fault_names, inject_fault

_BUDGET_PATTERN = re.compile(r"^(\d+(?:\.\d+)?)(s|m)?$")


def parse_budget(text: str) -> float:
    """Parse ``"30"``, ``"45s"`` or ``"2m"`` into seconds."""
    match = _BUDGET_PATTERN.match(text.strip())
    if not match:
        raise AnalysisError(
            f"malformed budget {text!r}; expected e.g. '30', '45s' or '2m'"
        )
    value = float(match.group(1))
    if match.group(2) == "m":
        value *= 60.0
    if value <= 0:
        raise AnalysisError(f"budget must be positive, got {text!r}")
    return value


def _parse_policies(text: str) -> List[BusPolicy]:
    policies = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            policies.append(BusPolicy(token))
        except ValueError:
            known = ", ".join(policy.value for policy in BusPolicy)
            raise AnalysisError(
                f"unknown bus policy {token!r}; known: {known}"
            ) from None
    if not policies:
        raise AnalysisError("at least one bus policy is required")
    return policies


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Soundness fuzzing and metamorphic verification of the "
        "cache-persistence-aware bus contention analysis.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fuzz_cmd = commands.add_parser(
        "fuzz", help="run a randomised soundness-fuzzing campaign"
    )
    fuzz_cmd.add_argument(
        "--budget",
        default=None,
        help="wall-clock budget, e.g. '30s' or '2m' (default: 50 cases)",
    )
    fuzz_cmd.add_argument(
        "--cases", type=int, default=None, help="hard case-count cap"
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz_cmd.add_argument(
        "--policies",
        default=",".join(policy.value for policy in BusPolicy),
        help="comma-separated bus policies to draw from (default: all)",
    )
    fuzz_cmd.add_argument(
        "--kinds",
        default=",".join(CASE_KINDS),
        help=f"comma-separated case kinds (default: {','.join(CASE_KINDS)})",
    )
    fuzz_cmd.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help="directory to write shrunk reproducers into (default: only "
        "print them)",
    )
    fuzz_cmd.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw violating cases without delta-debugging them",
    )
    fuzz_cmd.add_argument(
        "--inject",
        choices=fault_names(),
        default=None,
        help="TEST ONLY: enable a named unsoundness fault to prove the "
        "oracles catch it",
    )
    fuzz_cmd.add_argument(
        "--profile",
        action="store_true",
        help="print perf counters (per-oracle checks, phase timings) after "
        "the campaign",
    )

    replay_cmd = commands.add_parser(
        "replay", help="replay the reproducer corpus and fail on regressions"
    )
    replay_cmd.add_argument(
        "--corpus",
        type=Path,
        default=DEFAULT_CORPUS,
        help=f"corpus directory (default: {DEFAULT_CORPUS})",
    )
    replay_cmd.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="specific corpus files to replay (default: whole corpus)",
    )
    return parser


def _run_fuzz(args: argparse.Namespace) -> int:
    try:
        # Validation phase: malformed flags are usage errors (exit 2)
        # whatever error class carries them.
        budget = parse_budget(args.budget) if args.budget is not None else None
        policies = _parse_policies(args.policies)
    except (AnalysisError, ModelError) as error:
        print(f"repro-verify: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
    if args.profile:
        reset_global_counters()

    def campaign():
        return fuzz(
            budget=budget,
            max_cases=args.cases,
            seed=args.seed,
            policies=policies,
            kinds=kinds,
            corpus_dir=args.corpus,
            shrink=not args.no_shrink,
        )

    if args.inject:
        print(
            f"repro-verify: fault {args.inject!r} injected — a PASS now "
            "means the oracles are blind",
            file=sys.stderr,
        )
        with inject_fault(args.inject):
            report = campaign()
    else:
        report = campaign()
    print(report.render())
    if args.profile:
        print()
        print(global_counters().render())
    return 0 if report.passed else 1


def _run_replay(args: argparse.Namespace) -> int:
    report = replay_corpus(
        corpus_dir=args.corpus, paths=args.paths or None
    )
    print(report.render())
    return 0 if report.passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatch; returns the process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "fuzz":
            return _run_fuzz(args)
        return _run_replay(args)
    except ModelError as error:
        # Malformed corpus entries / task-set documents: usage error.
        print(f"repro-verify: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as error:
        print(f"repro-verify: error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
