"""Named, test-only fault injections for self-testing the verifier.

A fuzzer that never fires is indistinguishable from one that cannot fire.
This module gives the test suite (and the CLI's ``--inject`` flag) a way to
deliberately break a bound — e.g. dropping the ``|PCB|`` cold-load term
from Eq. 10 — and assert that the oracle registry catches the unsoundness
and shrinks it to a small reproducer.

Faults are process-global flags on :data:`repro.persistence.demand.FAULTS`
guarded by the :func:`inject_fault` context manager; nothing in the library
sets them outside of it.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import AnalysisError, ExecutionError
from repro.persistence.demand import FAULTS

#: Registered fault names -> (FaultHooks attribute, description).
FAULT_REGISTRY = {
    "drop-pcb-term": (
        "drop_pcb_term",
        "drop the |PCB| cold-load term from the Eq. 10 multi-job demand "
        "(unsound tightening: n*MDr instead of min(n*MD, n*MDr + |PCB|))",
    ),
}


def fault_names() -> Tuple[str, ...]:
    """Names accepted by :func:`inject_fault` and the CLI's ``--inject``."""
    return tuple(sorted(FAULT_REGISTRY))


def any_fault_active() -> bool:
    """Whether any registered fault flag is currently set."""
    return any(getattr(FAULTS, attr) for attr, _ in FAULT_REGISTRY.values())


@contextmanager
def inject_fault(name: str) -> Iterator[None]:
    """Enable the named fault for the duration of the ``with`` block.

    Only for tests and the fuzzer's self-check mode; the flag is always
    restored, even if the block raises.
    """
    try:
        attribute, _ = FAULT_REGISTRY[name]
    except KeyError:
        raise AnalysisError(
            f"unknown fault {name!r}; known faults: {', '.join(fault_names())}"
        ) from None
    previous = getattr(FAULTS, attribute)
    setattr(FAULTS, attribute, True)
    try:
        yield
    finally:
        setattr(FAULTS, attribute, previous)


# ---------------------------------------------------------------------------
# Sweep-execution faults (crash / hang / flaky workers)
# ---------------------------------------------------------------------------
#
# The soundness faults above break an *equation*; the sweep faults below
# break the *execution substrate* so the supervisor's recovery paths
# (chunk bisection, hang timeouts, transient retries — see
# ``repro.experiments.supervisor``) are tested, not just written.  Unlike
# the process-global flags, a sweep fault must fire inside spawned worker
# processes, which re-import the library from scratch; it is therefore
# plain *data* — a picklable spec carried in the worker arguments — rather
# than mutable module state.

#: Registered sweep-fault kinds -> description.  ``attempt`` is the
#: supervisor's per-item retry counter (0 on first execution).
SWEEP_FAULT_KINDS = {
    "crash-sample": (
        "the targeted sample kills its worker process with os._exit on "
        "every attempt — deterministic poison; the supervisor must bisect "
        "the chunk and quarantine exactly this sample"
    ),
    "hang-sample": (
        "the targeted sample sleeps past any reasonable chunk timeout on "
        "its first attempt only — the supervisor must kill the pool and "
        "the retry then succeeds"
    ),
    "flaky-sample": (
        "the targeted sample raises a transient error on its first "
        "attempt only — the supervisor must retry it with backoff"
    ),
}

#: How long a hung sample sleeps.  Long enough that any sane chunk timeout
#: fires first, short enough that a supervisor bug cannot wedge CI forever.
HANG_SECONDS = 60.0

#: Exit status used by the crash injector (mirrors an abort/SIGABRT death).
CRASH_EXIT_STATUS = 134


class TransientWorkerFault(ExecutionError):
    """Raised by the flaky-sample injector on an item's first attempt."""


@dataclass(frozen=True)
class SweepFault:
    """A deterministic execution fault targeting one ``(point, sample)``.

    ``point``/``sample`` are curve-local indices (the same keys the run
    journal uses), so the target is independent of chunking, parallelism
    and resume state.
    """

    kind: str
    point: int = 0
    sample: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SWEEP_FAULT_KINDS:
            known = ", ".join(sorted(SWEEP_FAULT_KINDS))
            raise AnalysisError(
                f"unknown sweep fault {self.kind!r}; known kinds: {known}"
            )

    def matches(self, point: int, sample: int) -> bool:
        """Whether this fault targets the given work item."""
        return self.point == point and self.sample == sample


def sweep_fault_kinds() -> Tuple[str, ...]:
    """Kinds accepted by :class:`SweepFault` and the CLI's ``--inject``."""
    return tuple(sorted(SWEEP_FAULT_KINDS))


def parse_sweep_fault(text: str) -> SweepFault:
    """Parse ``"crash-sample"`` or ``"crash-sample:POINT,SAMPLE"``.

    Without an explicit target the fault hits ``(point 0, sample 0)``.
    """
    kind, _, target = text.strip().partition(":")
    point = sample = 0
    if target:
        pieces = target.split(",")
        if len(pieces) != 2:
            raise AnalysisError(
                f"malformed sweep-fault target {target!r}; "
                f"expected 'POINT,SAMPLE'"
            )
        try:
            point, sample = int(pieces[0]), int(pieces[1])
        except ValueError:
            raise AnalysisError(
                f"sweep-fault target indices must be integers, got {target!r}"
            ) from None
    return SweepFault(kind=kind, point=point, sample=sample)


def trigger_sweep_fault(
    fault: Optional[SweepFault], point: int, sample: int, attempt: int
) -> None:
    """Fire ``fault`` if it targets this item (called inside workers).

    ``crash-sample`` never returns (the process dies); ``hang-sample``
    blocks on attempt 0; ``flaky-sample`` raises
    :class:`TransientWorkerFault` on attempt 0.  No-op for ``None`` or a
    non-matching item.
    """
    if fault is None or not fault.matches(point, sample):
        return
    if fault.kind == "crash-sample":
        # A real poison sample (segfault, OOM kill) dies without unwinding;
        # os._exit skips all cleanup the same way.
        os._exit(CRASH_EXIT_STATUS)
    if fault.kind == "hang-sample" and attempt == 0:
        time.sleep(HANG_SECONDS)
    if fault.kind == "flaky-sample" and attempt == 0:
        raise TransientWorkerFault(
            f"injected transient fault at point {point} sample {sample} "
            f"(attempt {attempt})"
        )
