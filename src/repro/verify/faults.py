"""Named, test-only fault injections for self-testing the verifier.

A fuzzer that never fires is indistinguishable from one that cannot fire.
This module gives the test suite (and the CLI's ``--inject`` flag) a way to
deliberately break a bound — e.g. dropping the ``|PCB|`` cold-load term
from Eq. 10 — and assert that the oracle registry catches the unsoundness
and shrinks it to a small reproducer.

Faults are process-global flags on :data:`repro.persistence.demand.FAULTS`
guarded by the :func:`inject_fault` context manager; nothing in the library
sets them outside of it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Tuple

from repro.errors import AnalysisError
from repro.persistence.demand import FAULTS

#: Registered fault names -> (FaultHooks attribute, description).
FAULT_REGISTRY = {
    "drop-pcb-term": (
        "drop_pcb_term",
        "drop the |PCB| cold-load term from the Eq. 10 multi-job demand "
        "(unsound tightening: n*MDr instead of min(n*MD, n*MDr + |PCB|))",
    ),
}


def fault_names() -> Tuple[str, ...]:
    """Names accepted by :func:`inject_fault` and the CLI's ``--inject``."""
    return tuple(sorted(FAULT_REGISTRY))


def any_fault_active() -> bool:
    """Whether any registered fault flag is currently set."""
    return any(getattr(FAULTS, attr) for attr, _ in FAULT_REGISTRY.values())


@contextmanager
def inject_fault(name: str) -> Iterator[None]:
    """Enable the named fault for the duration of the ``with`` block.

    Only for tests and the fuzzer's self-check mode; the flag is always
    restored, even if the block raises.
    """
    try:
        attribute, _ = FAULT_REGISTRY[name]
    except KeyError:
        raise AnalysisError(
            f"unknown fault {name!r}; known faults: {', '.join(fault_names())}"
        ) from None
    previous = getattr(FAULTS, attribute)
    setattr(FAULTS, attribute, True)
    try:
        yield
    finally:
        setattr(FAULTS, attribute, previous)
