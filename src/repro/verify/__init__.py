"""Soundness fuzzing and metamorphic verification (``repro.verify``).

An always-on verification subsystem that hunts for unsoundness in the
analytical bounds: random adversarial cases are generated, checked against
a registry of provable oracles (memoization identity, simulation-vs-bound
soundness, Eq. 10 ground truth, dominance and monotonicity relations),
and any violation is delta-debugged to a minimal reproducer and persisted
into a replayable corpus.  See ``docs/VERIFY.md`` for the workflow and
``python -m repro.verify --help`` for the CLI.
"""

from repro.verify.cases import (
    CASE_KINDS,
    DemandCase,
    ScenarioCase,
    TasksetCase,
    case_from_json,
    case_to_json,
)
from repro.verify.corpus import (
    DEFAULT_CORPUS,
    CorpusEntry,
    ReplayReport,
    replay_corpus,
)
from repro.verify.engine import FuzzReport, Violation, collect_seed_corpus, fuzz
from repro.verify.faults import fault_names, inject_fault
from repro.verify.oracles import (
    Oracle,
    applicable_oracles,
    get_oracle,
    oracle_names,
    run_oracles,
)
from repro.verify.shrink import ShrinkResult, shrink_case

__all__ = [
    "CASE_KINDS",
    "DEFAULT_CORPUS",
    "CorpusEntry",
    "DemandCase",
    "FuzzReport",
    "Oracle",
    "ReplayReport",
    "ScenarioCase",
    "ShrinkResult",
    "TasksetCase",
    "Violation",
    "applicable_oracles",
    "case_from_json",
    "case_to_json",
    "collect_seed_corpus",
    "fault_names",
    "fuzz",
    "get_oracle",
    "inject_fault",
    "oracle_names",
    "replay_corpus",
    "run_oracles",
    "shrink_case",
]
