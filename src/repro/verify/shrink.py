"""Delta-debugging shrinker: reduce a violating case to a minimal reproducer.

When an oracle fires on a fuzz-generated case the raw input is usually far
larger than the bug needs — dozens of tasks, long job sequences, big cache
footprints.  :func:`shrink_case` greedily applies structure-preserving
reductions (drop tasks, shorten simulations, strip cache-block sets, lower
job counts) and keeps every reduction under which the *same oracle still
fires*, so the corpus ends up with the smallest reproducer the passes can
reach — typically a handful of tasks.

Every candidate is re-checked by actually running the oracle, so shrinking
can never manufacture a spurious reproducer; the output is guaranteed to
still violate the oracle it was shrunk against.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.verify.cases import DemandCase, ScenarioCase, TasksetCase
from repro.verify.oracles import Oracle


@dataclass
class ShrinkResult:
    """Outcome of shrinking one violating case."""

    case: object
    messages: List[str]
    steps: int  # oracle evaluations spent


def _still_fails(
    oracle: Oracle, candidate, budget: "_Budget"
) -> Optional[List[str]]:
    """Messages if ``candidate`` still violates ``oracle``, else ``None``.

    Candidates that fail to even construct (model validation errors) are
    treated as not reproducing.
    """
    budget.steps += 1
    try:
        messages = oracle.check(candidate)
    except Exception:
        return None
    return messages or None


@dataclass
class _Budget:
    limit: int
    steps: int = 0

    @property
    def exhausted(self) -> bool:
        return self.steps >= self.limit


def _greedy_drop(
    case,
    items: Tuple,
    rebuild: Callable,
    oracle: Oracle,
    budget: _Budget,
):
    """Repeatedly try dropping single items while the oracle still fires.

    Scans from the back (later items are the cheapest to remove without
    renumbering) and restarts after every successful removal, giving the
    classic greedy 1-minimal reduction.
    """
    current = case
    current_items = items
    progress = True
    while progress and len(current_items) > 1 and not budget.exhausted:
        progress = False
        for index in range(len(current_items) - 1, -1, -1):
            if len(current_items) <= 1 or budget.exhausted:
                break
            candidate_items = (
                current_items[:index] + current_items[index + 1 :]
            )
            try:
                candidate = rebuild(current, candidate_items)
            except Exception:
                continue
            if _still_fails(oracle, candidate, budget):
                current = candidate
                current_items = candidate_items
                progress = True
    return current, current_items


def _shrink_taskset(
    case: TasksetCase, oracle: Oracle, budget: _Budget
) -> TasksetCase:
    case, tasks = _greedy_drop(
        case,
        case.tasks,
        lambda c, items: c.with_tasks(items),
        oracle,
        budget,
    )
    # Per-task simplifications: strip cache-block sets and persistence
    # metadata one field at a time, keeping whatever still reproduces.
    simplifiers = (
        lambda t: replace(t, ucbs=frozenset()),
        lambda t: replace(t, pcbs=frozenset()),
        lambda t: replace(t, ecbs=t.ucbs | t.pcbs),
        lambda t: replace(t, md_r=t.md),
        lambda t: replace(t, pd=0.0),
    )
    for simplify in simplifiers:
        for index in range(len(case.tasks)):
            if budget.exhausted:
                return case
            try:
                mutated = tuple(
                    simplify(t) if i == index else t
                    for i, t in enumerate(case.tasks)
                )
                candidate = case.with_tasks(mutated)
            except Exception:
                continue
            if mutated != case.tasks and _still_fails(oracle, candidate, budget):
                case = candidate
    return case


def _shrink_scenario(
    case: ScenarioCase, oracle: Oracle, budget: _Budget
) -> ScenarioCase:
    case, _ = _greedy_drop(
        case,
        case.specs,
        lambda c, items: replace(c, specs=items),
        oracle,
        budget,
    )
    # Shorter simulations replay faster; halve while the bug survives.
    while case.hyperperiods > 2 and not budget.exhausted:
        candidate = replace(case, hyperperiods=case.hyperperiods // 2)
        if not _still_fails(oracle, candidate, budget):
            break
        case = candidate
    return case


def _shrink_demand(
    case: DemandCase, oracle: Oracle, budget: _Budget
) -> DemandCase:
    # Try the minimal job count outright, then walk down linearly.
    for n_jobs in (1, *range(2, case.n_jobs)):
        if n_jobs >= case.n_jobs or budget.exhausted:
            break
        candidate = replace(case, n_jobs=n_jobs)
        if _still_fails(oracle, candidate, budget):
            return candidate
    return case


def shrink_case(case, oracle: Oracle, max_steps: int = 200) -> ShrinkResult:
    """Shrink ``case`` to a smaller input still violating ``oracle``.

    ``max_steps`` bounds the number of oracle evaluations spent; the
    original case is returned unchanged if it no longer violates (e.g. a
    flaky environment), which callers should treat as a failed shrink.
    """
    budget = _Budget(limit=max_steps)
    messages = _still_fails(oracle, case, budget)
    if not messages:
        return ShrinkResult(case=case, messages=[], steps=budget.steps)
    if isinstance(case, TasksetCase):
        case = _shrink_taskset(case, oracle, budget)
    elif isinstance(case, ScenarioCase):
        case = _shrink_scenario(case, oracle, budget)
    elif isinstance(case, DemandCase):
        case = _shrink_demand(case, oracle, budget)
    final = _still_fails(oracle, case, budget) or messages
    return ShrinkResult(case=case, messages=final, steps=budget.steps)
