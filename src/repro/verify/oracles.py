"""The oracle registry: every property the fuzzer checks on a case.

Each oracle encodes a *provable* property of the analysis — soundness
against ground truth, dominance between configurations, or a metamorphic
monotonicity relation — so any reported violation is a genuine bug, never
fuzz noise:

``memo-identity``
    Epoch-keyed memoization is invisible: ``AnalysisConfig(memoization=
    True)`` and the brute-force reference path return bit-identical
    :class:`~repro.analysis.wcrt.WcrtResult`\\ s.
``bitset-identity``
    The packed-bitmask cache-set kernel
    (:class:`~repro.model.interference.InterferenceTable`) and the
    retained ``frozenset`` reference path return bit-identical results.
    Flagged ``always_replay``: corpus replay runs it on every task-set
    entry, including entries recorded before the kernel existed.
``warm-start-identity``
    Re-analysing the same (task set, platform, config) with warm starts
    enabled returns a result bit-identical to the cold analysis, and the
    warm shortcut actually engages for schedulable sets.  Also
    ``always_replay``.
``batch-identity``
    Batch-compiling the per-pair CRPD/CPRO tables up front
    (:class:`~repro.model.interference.BatchInterferenceTable`, numpy
    popcounts when available) returns results bit-identical to the lazy
    per-lookup fills (``AnalysisConfig(array_kernel=False)``).  Also
    ``always_replay``.
``adjacent-warmstart-identity``
    Seeding an analysis with a :class:`~repro.analysis.wcrt.WarmHint`
    from an adjacent converged analysis returns a result bit-identical
    to the cold analysis, and an exact hint actually engages.  Also
    ``always_replay``.
``lockstep-identity``
    The lockstep multi-sample engine
    (:func:`~repro.analysis.lockstep.analyze_taskset_batch`) returns
    outcomes bit-identical to analysing the same lanes one at a time
    with ``AnalysisConfig(lockstep_kernel=False)`` — including the error
    class and message of exceptional lanes.  Also ``always_replay``.
``resident-plane-identity``
    Serving repeated equal inputs from a worker-resident
    :class:`~repro.experiments.stateplane.StatePlane` (one canonical
    task-set object, warm-start seeds resident across requests) returns
    results bit-identical to fresh-object cold analyses.  Also
    ``always_replay``.
``persistence-tightens``
    The persistence-aware bounds of Lemmas 1-2 never exceed the baseline
    bounds of Davis et al., and never flip a baseline-schedulable set to
    unschedulable.
``perfect-dominance``
    The contention-free perfect bus lower-bounds every real arbiter.
``mono-period-shrink``
    Shrinking one task's period (and deadline) adds interference: on the
    perfect bus every bound weakly increases, and an unschedulable set
    stays unschedulable.
``mono-mdr-raise``
    Raising a task's residual demand ``MDr`` weakens persistence: on the
    perfect bus every bound weakly increases.  (Both monotonicity claims
    are provable only there — see :func:`_metamorphic_compare`.)
``fixed-point-sanity``
    Schedulable verdicts are internally consistent (every bound between
    the isolated WCET and the deadline).
``eq10-demand``
    The Eq. 10 multi-job demand bounds the *exact* miss count of ``n``
    consecutive jobs replayed through the trace-driven cache simulator.
``sim-vs-wcrt``
    Observed response times and per-job bus accesses in the discrete-event
    simulator never exceed the analytical WCRT bound / ``MD``.

Dominance and monotonicity comparisons are skipped when either analysis
exhausted its outer-iteration budget (verdict "unschedulable" with no
failing task): that verdict is conservative, not a fixed point, so ordering
arguments do not apply to it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import WarmHint, WcrtResult, analyze_taskset
from repro.cacheanalysis.extraction import extract_parameters_cached
from repro.cacheanalysis.simulator import simulate_trace
from repro.model.interference import prefill_batch
from repro.model.platform import BusPolicy, CacheGeometry
from repro.model.task import Task, TaskSet
from repro.persistence.demand import multi_job_demand
from repro.program.malardalen import benchmark_program
from repro.program.trace import worst_case_trace
from repro.sim.engine import simulate
from repro.sim.scenario import build_scenario
from repro.sim.workload import workload_from_programs
from repro.verify.cases import DemandCase, ScenarioCase, TasksetCase


@dataclass(frozen=True)
class Oracle:
    """One checkable property: a name, the case kinds it applies to, and a
    check function returning violation messages (empty = pass).

    ``always_replay`` marks oracles that corpus replay runs on *every*
    entry of an applicable kind, even entries whose recorded oracle list
    predates the oracle's existence.  Identity oracles (kernel and warm
    start vs their reference paths) use it so the whole historical corpus
    keeps exercising them without rewriting the checked-in files.
    """

    name: str
    kinds: Tuple[str, ...]
    description: str
    check: Callable[[object], List[str]]
    always_replay: bool = False


_REGISTRY: Dict[str, Oracle] = {}


def register(
    name: str,
    kinds: Tuple[str, ...],
    description: str,
    always_replay: bool = False,
):
    """Class-body decorator adding a check function to the registry."""

    def wrap(check: Callable[[object], List[str]]) -> Callable:
        _REGISTRY[name] = Oracle(name, kinds, description, check, always_replay)
        return check

    return wrap


def oracle_names() -> Tuple[str, ...]:
    """All registered oracle names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_oracle(name: str) -> Oracle:
    """Look up one oracle by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle {name!r}; known: {', '.join(oracle_names())}"
        ) from None


def applicable_oracles(kind: str) -> Tuple[Oracle, ...]:
    """Oracles applicable to a case kind, in registration order."""
    return tuple(o for o in _REGISTRY.values() if kind in o.kinds)


def always_replay_oracles(kind: str) -> Tuple[Oracle, ...]:
    """Applicable oracles flagged to run on every corpus entry."""
    return tuple(
        o for o in _REGISTRY.values() if o.always_replay and kind in o.kinds
    )


def run_oracles(
    case, names: Optional[Sequence[str]] = None
) -> Dict[str, List[str]]:
    """Run the named (default: all applicable) oracles on ``case``.

    Returns a mapping oracle name -> violation messages; an oracle that
    passed maps to an empty list.
    """
    if names is None:
        oracles: Sequence[Oracle] = applicable_oracles(case.kind)
    else:
        oracles = [get_oracle(name) for name in names]
        for oracle in oracles:
            if case.kind not in oracle.kinds:
                raise ValueError(
                    f"oracle {oracle.name!r} does not apply to "
                    f"{case.kind!r} cases"
                )
    return {oracle.name: oracle.check(case) for oracle in oracles}


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _exhausted(result: WcrtResult) -> bool:
    """Unschedulable only because the outer-iteration budget ran out."""
    return not result.schedulable and result.failed_task is None


def _by_priority(result: WcrtResult) -> Dict[int, int]:
    return {task.priority: r for task, r in result.response_times.items()}


def _compare_pointwise(
    label: str,
    lower: WcrtResult,
    upper: WcrtResult,
    messages: List[str],
) -> None:
    """Append a violation for every task where ``lower`` exceeds ``upper``."""
    upper_by_priority = _by_priority(upper)
    for task, bound in lower.response_times.items():
        other = upper_by_priority.get(task.priority)
        if other is not None and bound > other:
            messages.append(
                f"{label}: task {task.name!r} bound {bound} > {other}"
            )


# ---------------------------------------------------------------------------
# Analytical oracles (taskset cases)
# ---------------------------------------------------------------------------


@register(
    "memo-identity",
    ("taskset",),
    "memoized analysis == brute-force reference, bit for bit",
)
def _check_memo_identity(case: TasksetCase) -> List[str]:
    taskset = case.taskset()
    memoized = analyze_taskset(
        taskset, case.platform, replace(case.config, memoization=True)
    )
    reference = analyze_taskset(
        taskset, case.platform, replace(case.config, memoization=False)
    )
    if memoized != reference:
        return [
            "memoized result differs from reference: "
            f"schedulable {memoized.schedulable} vs {reference.schedulable}, "
            f"outer {memoized.outer_iterations} vs {reference.outer_iterations}, "
            f"response times equal: "
            f"{memoized.response_times == reference.response_times}"
        ]
    return []


@register(
    "bitset-identity",
    ("taskset",),
    "bitmask cache-set kernel == frozenset reference path, bit for bit",
    always_replay=True,
)
def _check_bitset_identity(case: TasksetCase) -> List[str]:
    taskset = case.taskset()
    bitset = analyze_taskset(
        taskset, case.platform, replace(case.config, bitset_kernel=True)
    )
    reference = analyze_taskset(
        taskset, case.platform, replace(case.config, bitset_kernel=False)
    )
    if bitset != reference:
        by_priority = _by_priority(reference)
        diffs = [
            f"{task.name!r}: {bound} vs {by_priority.get(task.priority)}"
            for task, bound in bitset.response_times.items()
            if by_priority.get(task.priority) != bound
        ]
        return [
            "bitmask kernel differs from frozenset reference: "
            f"schedulable {bitset.schedulable} vs {reference.schedulable}, "
            f"outer {bitset.outer_iterations} vs {reference.outer_iterations}"
            + (f", bounds: {'; '.join(diffs)}" if diffs else "")
        ]
    return []


@register(
    "warm-start-identity",
    ("taskset",),
    "warm-started re-analysis == cold analysis, bit for bit",
    always_replay=True,
)
def _check_warm_start_identity(case: TasksetCase) -> List[str]:
    taskset = case.taskset()
    config = replace(case.config, warm_start=True)
    cold = analyze_taskset(taskset, case.platform, config)
    warm = analyze_taskset(taskset, case.platform, config)
    messages: List[str] = []
    if warm != cold:
        messages.append(
            "warm-started replay differs from cold analysis: "
            f"schedulable {warm.schedulable} vs {cold.schedulable}, "
            f"outer {warm.outer_iterations} vs {cold.outer_iterations}, "
            f"response times equal: "
            f"{warm.response_times == cold.response_times}"
        )
    if cold.schedulable and warm.perf is not None and warm.perf.warm_starts != 1:
        messages.append(
            "warm start did not engage on a schedulable replay "
            f"(warm_starts = {warm.perf.warm_starts}): the seed failed "
            "re-verification on identical inputs"
        )
    return messages


@register(
    "batch-identity",
    ("taskset",),
    "batched pair-table compilation == lazy per-lookup fills, bit for bit",
    always_replay=True,
)
def _check_batch_identity(case: TasksetCase) -> List[str]:
    taskset = case.taskset()
    batched_config = replace(
        case.config, bitset_kernel=True, array_kernel=True
    )
    prefill_batch(
        (taskset,),
        batched_config.crpd_approach,
        batched_config.cpro_approach,
    )
    batched = analyze_taskset(taskset, case.platform, batched_config)
    reference = analyze_taskset(
        taskset, case.platform, replace(case.config, array_kernel=False)
    )
    if batched != reference:
        by_priority = _by_priority(reference)
        diffs = [
            f"{task.name!r}: {bound} vs {by_priority.get(task.priority)}"
            for task, bound in batched.response_times.items()
            if by_priority.get(task.priority) != bound
        ]
        return [
            "batched pair tables differ from lazy fills: "
            f"schedulable {batched.schedulable} vs {reference.schedulable}, "
            f"outer {batched.outer_iterations} vs {reference.outer_iterations}"
            + (f", bounds: {'; '.join(diffs)}" if diffs else "")
        ]
    return []


@register(
    "adjacent-warmstart-identity",
    ("taskset",),
    "hint-seeded analysis == cold analysis, bit for bit",
    always_replay=True,
)
def _check_adjacent_warmstart_identity(case: TasksetCase) -> List[str]:
    config = replace(case.config, warm_start=True)
    donor = analyze_taskset(case.taskset(), case.platform, config)
    if not donor.schedulable:
        # Unschedulable maps never donate hints (see WarmHint); the
        # chain layers drop them, so there is nothing to check here.
        return []
    hint = WarmHint(
        response_times={
            task.priority: value
            for task, value in donor.response_times.items()
        },
        outer_iterations=donor.outer_iterations,
    )
    # A fresh task-set container has no same-triple seeds, so the hint is
    # the only shortcut on offer.  Acceptance is *not* guaranteed even for
    # identical inputs: the cold ascent may rest at a pre-fixed point
    # (``f(r) < r`` after an inner overshoot), which the strict exactness
    # test deliberately rejects — the property to pin is that accepted or
    # not, the result is bit-identical to the donor.  (Deterministic
    # engagement is pinned by ``TestAdjacentWarmStartIsInvisible``.)
    hinted = analyze_taskset(
        case.taskset(), case.platform, config, warm_hint=hint
    )
    messages: List[str] = []
    if hinted != donor:
        messages.append(
            "hint-seeded analysis differs from its cold donor: "
            f"schedulable {hinted.schedulable} vs {donor.schedulable}, "
            f"outer {hinted.outer_iterations} vs {donor.outer_iterations}, "
            f"response times equal: "
            f"{hinted.response_times == donor.response_times}"
        )
    if hinted.perf is not None and hinted.perf.adjacent_warm_starts not in (0, 1):
        messages.append(
            "adjacent_warm_starts outside {0, 1} for a single hinted "
            f"analysis: {hinted.perf.adjacent_warm_starts}"
        )
    return messages


@register(
    "ladder-dominance",
    ("taskset",),
    "degraded ladder tiers over-approximate the exact analysis, degraded "
    "'schedulable' verdicts agree with it, and an unpressured ladder is "
    "bit-identical to the exact analysis",
    always_replay=True,
)
def _check_ladder_dominance(case: TasksetCase) -> List[str]:
    from repro.analysis.ladder import (
        SOUND_EXACT,
        TIER_EXACT,
        coarse_bound,
        run_ladder,
    )

    taskset = case.taskset()
    exact = analyze_taskset(taskset, case.platform, case.config)
    messages: List[str] = []

    # An unpressured ladder (no budget) must be the exact path, bit for bit.
    unpressured = run_ladder(case.taskset(), case.platform, case.config)
    if unpressured.tier != TIER_EXACT or unpressured.soundness != SOUND_EXACT:
        messages.append(
            f"unpressured ladder did not answer from the exact tier: "
            f"tier={unpressured.tier!r} soundness={unpressured.soundness!r}"
        )
    elif unpressured.result != exact:
        messages.append(
            "unpressured ladder result differs from the direct exact "
            f"analysis: schedulable {unpressured.result.schedulable} vs "
            f"{exact.schedulable}, outer "
            f"{unpressured.result.outer_iterations} vs "
            f"{exact.outer_iterations}, response times equal: "
            f"{unpressured.result.response_times == exact.response_times}"
        )

    degraded = []
    if case.config.persistence:
        degraded.append(
            (
                "baseline",
                analyze_taskset(
                    taskset,
                    case.platform,
                    replace(case.config, persistence=False),
                ),
            )
        )
    coarse = coarse_bound(taskset, case.platform, case.config)
    degraded.append(("coarse", coarse))

    if coarse.failed_task is not None and exact.schedulable:
        messages.append(
            f"coarse tier reports task {coarse.failed_task.name!r} "
            "trivially infeasible but the exact analysis is schedulable"
        )
    for label, tier in degraded:
        if _exhausted(exact) or _exhausted(tier):
            # Conservative exhausted verdicts are not fixed points;
            # ordering arguments do not apply to them.
            continue
        if tier.schedulable and not exact.schedulable:
            messages.append(
                f"{label} tier claims schedulable but the exact analysis "
                f"rejects the set (failed task "
                f"{exact.failed_task and exact.failed_task.name!r})"
            )
        if tier.schedulable and exact.schedulable:
            _compare_pointwise(f"exact > {label}", exact, tier, messages)
    return messages


@register(
    "persistence-tightens",
    ("taskset",),
    "persistence-aware bounds never exceed the persistence-oblivious baseline",
)
def _check_persistence_tightens(case: TasksetCase) -> List[str]:
    taskset = case.taskset()
    aware = analyze_taskset(
        taskset, case.platform, replace(case.config, persistence=True)
    )
    baseline = analyze_taskset(
        taskset, case.platform, replace(case.config, persistence=False)
    )
    if _exhausted(aware) or _exhausted(baseline):
        return []
    messages: List[str] = []
    if baseline.schedulable and not aware.schedulable:
        messages.append(
            "persistence-aware analysis rejects a baseline-schedulable set "
            f"(failed task {aware.failed_task and aware.failed_task.name!r})"
        )
    if baseline.schedulable and aware.schedulable:
        _compare_pointwise(
            "persistence-aware > baseline", aware, baseline, messages
        )
    return messages


@register(
    "perfect-dominance",
    ("taskset",),
    "the contention-free perfect bus lower-bounds every real arbiter",
)
def _check_perfect_dominance(case: TasksetCase) -> List[str]:
    if case.platform.bus_policy is BusPolicy.PERFECT:
        return []
    taskset = case.taskset()
    contended = analyze_taskset(taskset, case.platform, case.config)
    perfect = analyze_taskset(
        taskset,
        case.platform.with_bus_policy(BusPolicy.PERFECT),
        case.config,
    )
    if _exhausted(contended) or _exhausted(perfect):
        return []
    messages: List[str] = []
    if contended.schedulable and not perfect.schedulable:
        messages.append(
            f"perfect bus rejects a set schedulable under "
            f"{case.platform.bus_policy.value}"
        )
    if contended.schedulable and perfect.schedulable:
        _compare_pointwise(
            f"perfect > {case.platform.bus_policy.value}",
            perfect,
            contended,
            messages,
        )
    return messages


def _metamorphic_compare(
    label: str,
    base_tasks: Tuple[Task, ...],
    mutated_tasks: Tuple[Task, ...],
    case: TasksetCase,
) -> List[str]:
    """Check that the mutation moved every bound weakly *up*.

    Compared on the PERFECT bus, where the claim is provable: the bound is
    pure BAS (Eq. 1/16), which charges all ``n`` same-core jobs through the
    monotone ``min(n*MD, n*MDr + |PCB|)``, so the iteration function of the
    mutated system dominates the base one pointwise and least fixed points
    weakly increase.  Under any arbiter with remote windows the claim is
    *false*: Eq. 4/5 + Lemma 2 charge full remote jobs at ``MDr`` but the
    carry-out job at up to ``MD``, so a parameter change that pushes a
    carry-out job across a period boundary into being a full job can
    soundly *lower* another task's bound (found by fuzzing, seed 2020).
    """
    platform = replace(case.platform, bus_policy=BusPolicy.PERFECT)
    base = analyze_taskset(TaskSet(base_tasks), platform, case.config)
    mutated = analyze_taskset(TaskSet(mutated_tasks), platform, case.config)
    if _exhausted(base) or _exhausted(mutated):
        return []
    messages: List[str] = []
    if not base.schedulable and mutated.schedulable:
        messages.append(f"{label}: unschedulable set became schedulable")
    if base.schedulable and mutated.schedulable:
        _compare_pointwise(f"{label}: base > mutated", base, mutated, messages)
    return messages


@register(
    "mono-period-shrink",
    ("taskset",),
    "shrinking one task's period/deadline weakly increases every bound (perfect bus)",
)
def _check_mono_period_shrink(case: TasksetCase) -> List[str]:
    target = max(case.tasks, key=lambda t: (t.period, t.priority))
    new_period = int(target.period * 3 // 4)
    new_deadline = min(int(target.deadline * 3 // 4), new_period)
    if new_period < 1 or new_deadline < 1:
        return []
    mutated = tuple(
        t.with_timing(new_period, new_deadline) if t is target else t
        for t in case.tasks
    )
    return _metamorphic_compare(
        f"period of {target.name!r} {target.period} -> {new_period}",
        case.tasks,
        mutated,
        case,
    )


@register(
    "mono-mdr-raise",
    ("taskset",),
    "raising a task's residual demand MDr weakly increases every bound (perfect bus)",
)
def _check_mono_mdr_raise(case: TasksetCase) -> List[str]:
    target = max(case.tasks, key=lambda t: (t.md - t.md_r, t.priority))
    if target.md == target.md_r:
        return []
    mutated = tuple(
        replace(t, md_r=t.md) if t is target else t for t in case.tasks
    )
    return _metamorphic_compare(
        f"md_r of {target.name!r} {target.md_r} -> {target.md}",
        case.tasks,
        mutated,
        case,
    )


@register(
    "fixed-point-sanity",
    ("taskset",),
    "schedulable bounds lie between the isolated WCET and the deadline",
)
def _check_fixed_point_sanity(case: TasksetCase) -> List[str]:
    result = analyze_taskset(case.taskset(), case.platform, case.config)
    if not result.schedulable:
        return []
    d_mem = case.platform.d_mem
    messages: List[str] = []
    for task, bound in result.response_times.items():
        isolated = int(task.pd) + task.md * d_mem
        if bound < isolated:
            messages.append(
                f"task {task.name!r}: bound {bound} below isolated "
                f"WCET {isolated}"
            )
        if bound > task.deadline:
            messages.append(
                f"task {task.name!r}: schedulable verdict but bound {bound} "
                f"> deadline {int(task.deadline)}"
            )
    return messages


@register(
    "lockstep-identity",
    ("taskset",),
    "lockstep multi-lane batch == sequential scalar analyses, bit for bit",
    always_replay=True,
)
def _check_lockstep_identity(case: TasksetCase) -> List[str]:
    from repro.analysis.lockstep import analyze_taskset_batch

    lanes = 3
    # Fresh task-set objects per lane: lanes share no derived stores, so
    # every lane is an independent cold analysis — exactly what the
    # sequential scalar reference below computes.
    outcomes = analyze_taskset_batch(
        [case.taskset() for _ in range(lanes)],
        case.platform,
        replace(case.config, lockstep_kernel=True),
    )
    scalar_config = replace(case.config, lockstep_kernel=False)
    messages: List[str] = []
    for index, outcome in enumerate(outcomes):
        try:
            reference: Optional[WcrtResult] = analyze_taskset(
                case.taskset(), case.platform, scalar_config
            )
            reference_error: Optional[BaseException] = None
        except Exception as error:  # noqa: BLE001 — compared, not raised
            reference = None
            reference_error = error
        if reference_error is not None:
            if outcome.error is None or (
                type(outcome.error) is not type(reference_error)
                or str(outcome.error) != str(reference_error)
            ):
                messages.append(
                    f"lane {index}: scalar raised "
                    f"{type(reference_error).__name__}: {reference_error} "
                    f"but lockstep returned "
                    f"{outcome.error!r} / {outcome.result!r}"
                )
        elif outcome.error is not None:
            messages.append(
                f"lane {index}: lockstep raised "
                f"{type(outcome.error).__name__}: {outcome.error} "
                f"but the scalar analysis succeeded"
            )
        elif outcome.result != reference:
            messages.append(
                f"lane {index}: lockstep result differs from scalar: "
                f"schedulable {outcome.result.schedulable} vs "
                f"{reference.schedulable}, outer "
                f"{outcome.result.outer_iterations} vs "
                f"{reference.outer_iterations}, response times equal: "
                f"{outcome.result.response_times == reference.response_times}"
            )
    return messages


@register(
    "resident-plane-identity",
    ("taskset",),
    "resident-plane canonical replays == fresh-object cold analyses, bit for bit",
    always_replay=True,
)
def _check_resident_plane_identity(case: TasksetCase) -> List[str]:
    from repro.experiments.stateplane import StatePlane

    plane = StatePlane(capacity=4)
    config = replace(case.config, warm_start=True)
    fresh = analyze_taskset(case.taskset(), case.platform, config)
    first = plane.canonical("case", case.taskset)
    second = plane.canonical("case", case.taskset)
    messages: List[str] = []
    if second is not first:
        messages.append(
            "plane.canonical rebuilt the document instead of returning the "
            "resident object"
        )
    # First analysis on the resident object is cold; the replay takes the
    # strictly re-verified warm-start path off the object's derived seeds.
    resident_cold = analyze_taskset(first, case.platform, config)
    resident_warm = analyze_taskset(second, case.platform, config)
    for label, result in (("cold", resident_cold), ("warm", resident_warm)):
        if result != fresh:
            messages.append(
                f"resident-plane {label} analysis differs from the "
                f"fresh-object analysis: schedulable {result.schedulable} vs "
                f"{fresh.schedulable}, outer {result.outer_iterations} vs "
                f"{fresh.outer_iterations}, response times equal: "
                f"{result.response_times == fresh.response_times}"
            )
    if (
        fresh.schedulable
        and resident_warm.perf is not None
        and resident_warm.perf.warm_starts != 1
    ):
        messages.append(
            "warm start did not engage on the resident replay "
            f"(warm_starts = {resident_warm.perf.warm_starts})"
        )
    return messages


# ---------------------------------------------------------------------------
# Ground-truth oracles (demand / scenario cases)
# ---------------------------------------------------------------------------


@register(
    "eq10-demand",
    ("demand",),
    "Eq. 10 bounds the exact miss count of n consecutive jobs",
)
def _check_eq10_demand(case: DemandCase) -> List[str]:
    geometry = CacheGeometry(num_sets=case.num_sets)
    program = benchmark_program(case.benchmark)
    if case.scale != 1.0:
        program = program.scaled(case.scale)
    params = extract_parameters_cached(program, geometry)
    task = Task(
        name=case.benchmark,
        pd=params.pd,
        md=params.md,
        md_r=params.md_r,
        period=1,
        deadline=1,
        priority=1,
        ecbs=params.ecbs,
        ucbs=params.ucbs,
        pcbs=params.pcbs,
    )
    trace = worst_case_trace(program, geometry)
    blocks = [step.block for step in trace if step.block is not None]
    uncached = sum(1 for step in trace if step.uncached)
    state = None
    observed = 0
    messages: List[str] = []
    for n in range(1, case.n_jobs + 1):
        result = simulate_trace(blocks, geometry, initial=state)
        state = result.final_state
        observed += result.misses + uncached
        bound = multi_job_demand(task, n)
        if observed > bound:
            messages.append(
                f"{case.benchmark}@{case.num_sets} sets: exact demand of "
                f"{n} jobs is {observed} > Eq. 10 bound {bound} "
                f"(md={params.md}, md_r={params.md_r}, |PCB|={len(params.pcbs)})"
            )
    return messages


@register(
    "sim-vs-wcrt",
    ("scenario",),
    "simulated response times and bus accesses never exceed the bounds",
)
def _check_sim_vs_wcrt(case: ScenarioCase) -> List[str]:
    config = replace(case.config, tdma_slot_alignment=True)
    scenario = build_scenario(
        case.specs, case.platform, rng=random.Random(case.layout_seed)
    )
    analysis = analyze_taskset(scenario.taskset, case.platform, config)
    if not analysis.schedulable:
        return []
    workload = workload_from_programs(
        scenario.taskset, case.platform, scenario.programs
    )
    duration = int(max(t.period for t in scenario.taskset)) * case.hyperperiods
    observed = simulate(workload, case.platform, duration=duration)
    policy = case.platform.bus_policy.value
    messages: List[str] = []
    for task in scenario.taskset:
        stats = observed.of(task)
        bound = analysis.response_time(task)
        peak = stats.max_response_time
        if peak is not None and peak > bound:
            messages.append(
                f"{policy}:{task.name}: observed response {peak} "
                f"> analytical bound {bound}"
            )
        # MD bounds the accesses of an *unpreempted* job; a preempted job
        # additionally reloads evicted blocks (charged to gamma by the
        # analysis), so the per-job check only applies to tasks with no
        # same-core higher-priority task.
        preemptible = any(
            other.core == task.core and other.priority < task.priority
            for other in scenario.taskset
        )
        if not preemptible and stats.max_job_bus_accesses > task.md:
            messages.append(
                f"{policy}:{task.name}: per-job accesses "
                f"{stats.max_job_bus_accesses} > MD {task.md}"
            )
    return messages
