"""``python -m repro.verify`` — forwards to the CLI."""

import sys

from repro.verify.cli import main

sys.exit(main())
