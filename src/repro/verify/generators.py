"""Adversarial random case generation for the soundness fuzzer.

Generation deliberately strays from the paper's default experiment recipe:
small and large caches, short and long memory latencies, lop-sided core
counts, every bus policy, every CRPD/CPRO approach combination, and
utilisations spanning trivially schedulable to hopeless.  Small task sets
are favoured — they analyse faster (more cases per budget) and shrink to
smaller reproducers when an oracle fires.

All randomness flows through one explicit :class:`random.Random`, so a
fuzz run is a pure function of its seed.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.crpd.approaches import CrpdApproach
from repro.generation.taskset_gen import GenerationConfig, generate_taskset
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.persistence.cpro import CproApproach
from repro.sim.scenario import ScenarioSpec
from repro.verify.cases import DemandCase, ScenarioCase, TasksetCase

#: Benchmarks whose scaled traces stay short enough for quick replay.
LIGHT_BENCHMARKS: Tuple[str, ...] = (
    "lcdnum",
    "bs",
    "cnt",
    "fibcall",
    "insertsort",
    "ns",
    "sqrt",
    "janne_complex",
)

_ALL_POLICIES: Tuple[BusPolicy, ...] = tuple(BusPolicy)


def _random_platform(
    rng: random.Random, policies: Sequence[BusPolicy]
) -> Platform:
    return Platform(
        num_cores=rng.choice((2, 2, 3, 4)),
        cache=CacheGeometry(num_sets=rng.choice((64, 128, 256))),
        d_mem=rng.choice((5, 10, 10, 20)),
        bus_policy=rng.choice(tuple(policies)),
        slot_size=rng.choice((1, 2, 3)),
    )


def random_taskset_case(
    rng: random.Random, policies: Sequence[BusPolicy] = _ALL_POLICIES
) -> TasksetCase:
    """Draw a synthetic-task-set case for the analytical oracles."""
    platform = _random_platform(rng, policies)
    generation = GenerationConfig(tasks_per_core=rng.choice((2, 3, 3, 4, 5)))
    utilization = rng.uniform(0.1, 0.9)
    taskset = generate_taskset(rng, platform, utilization, generation)
    config = AnalysisConfig(
        persistence=True,
        crpd_approach=rng.choice(tuple(CrpdApproach)),
        cpro_approach=rng.choice(tuple(CproApproach)),
        tdma_slot_alignment=rng.random() < 0.5,
    )
    return TasksetCase(
        platform=platform, tasks=tuple(taskset), config=config
    )


def random_scenario_case(
    rng: random.Random, policies: Sequence[BusPolicy] = _ALL_POLICIES
) -> ScenarioCase:
    """Draw a program-backed case for the analysis-vs-simulation oracle."""
    names = list(LIGHT_BENCHMARKS)
    rng.shuffle(names)
    cores = rng.choice((2, 2, 3))
    specs = tuple(
        ScenarioSpec(
            benchmark=name,
            core=position % cores,
            period_factor=rng.randint(5, 12),
        )
        for position, name in enumerate(names[: rng.randint(2, 5)])
    )
    platform = Platform(
        num_cores=cores,
        cache=CacheGeometry(num_sets=rng.choice((128, 256))),
        d_mem=rng.choice((5, 10)),
        bus_policy=rng.choice(tuple(policies)),
        slot_size=rng.choice((1, 2)),
    )
    return ScenarioCase(
        platform=platform,
        specs=specs,
        layout_seed=rng.randrange(2**31),
        hyperperiods=rng.randint(4, 10),
    )


def random_demand_case(rng: random.Random) -> DemandCase:
    """Draw a multi-job-demand case for the Eq. 10 trace oracle."""
    return DemandCase(
        benchmark=rng.choice(LIGHT_BENCHMARKS),
        n_jobs=rng.randint(1, 4),
        num_sets=rng.choice((64, 128, 256)),
    )


def generate_case(
    kind: str, rng: random.Random, policies: Sequence[BusPolicy] = _ALL_POLICIES
):
    """Dispatch on a case kind string (see ``CASE_KINDS``)."""
    if kind == "taskset":
        return random_taskset_case(rng, policies)
    if kind == "scenario":
        return random_scenario_case(rng, policies)
    if kind == "demand":
        return random_demand_case(rng)
    raise ValueError(f"unknown case kind {kind!r}")
