"""Fuzz-case model and its versioned JSON serialisation.

A *case* is one self-contained input the oracle registry can be evaluated
on.  Three kinds exist, mirroring the three ways the library's bounds can
be exercised:

* :class:`TasksetCase` — a synthetic task set plus platform and analysis
  configuration; target of the purely analytical oracles (memoization
  identity, persistence/perfect dominance, metamorphic monotonicity).
* :class:`ScenarioCase` — benchmark programs placed on cores, analysed
  *and* executed by the discrete-event simulator; target of the
  analysis-versus-simulation oracle.
* :class:`DemandCase` — a single benchmark replayed for ``n_jobs``
  consecutive jobs through the exact cache simulator; target of the Eq. 10
  multi-job-demand oracle.

Cases serialise to plain JSON with an explicit format tag and version
(``repro-verify-case`` v1) so corpus reproducers stay replayable as the
library evolves.  Serialisation is canonical — keys sorted, sets stored as
sorted lists — making file contents byte-stable and content-addressable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.analysis.config import AnalysisConfig
from repro.crpd.approaches import CrpdApproach
from repro.errors import ModelError
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import CproApproach
from repro.serialization import (
    platform_from_dict,
    platform_to_dict,
    task_from_dict,
    task_to_dict,
)
from repro.sim.scenario import ScenarioSpec

#: Format tag and version of serialised fuzz cases / corpus reproducers.
CASE_TAG = "repro-verify-case"
CASE_VERSION = 1


def config_to_dict(config: AnalysisConfig) -> Dict:
    """Plain-dict form of an :class:`AnalysisConfig` (JSON-safe)."""
    return {
        "persistence": config.persistence,
        "crpd_approach": config.crpd_approach.value,
        "cpro_approach": config.cpro_approach.value,
        "persistence_in_low": config.persistence_in_low,
        "tdma_slot_alignment": config.tdma_slot_alignment,
        "memoization": config.memoization,
        "bitset_kernel": config.bitset_kernel,
        "array_kernel": config.array_kernel,
        "warm_start": config.warm_start,
    }


def config_from_dict(data: Dict) -> AnalysisConfig:
    """Inverse of :func:`config_to_dict` (absent keys keep defaults)."""
    defaults = AnalysisConfig()
    try:
        return AnalysisConfig(
            persistence=data.get("persistence", defaults.persistence),
            crpd_approach=CrpdApproach(
                data.get("crpd_approach", defaults.crpd_approach.value)
            ),
            cpro_approach=CproApproach(
                data.get("cpro_approach", defaults.cpro_approach.value)
            ),
            persistence_in_low=data.get(
                "persistence_in_low", defaults.persistence_in_low
            ),
            tdma_slot_alignment=data.get(
                "tdma_slot_alignment", defaults.tdma_slot_alignment
            ),
            memoization=data.get("memoization", defaults.memoization),
            bitset_kernel=data.get("bitset_kernel", defaults.bitset_kernel),
            array_kernel=data.get("array_kernel", defaults.array_kernel),
            warm_start=data.get("warm_start", defaults.warm_start),
        )
    except ValueError as error:
        raise ModelError(f"malformed analysis config record: {error}") from error


@dataclass(frozen=True)
class TasksetCase:
    """A synthetic task set under a given platform and analysis config."""

    platform: Platform
    tasks: Tuple[Task, ...]
    config: AnalysisConfig = AnalysisConfig()

    kind = "taskset"

    def taskset(self) -> TaskSet:
        """Materialise the (view-caching) task-set container."""
        return TaskSet(self.tasks)

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def with_tasks(self, tasks: Tuple[Task, ...]) -> "TasksetCase":
        return replace(self, tasks=tuple(tasks))

    def payload(self) -> Dict:
        return {
            "platform": platform_to_dict(self.platform),
            "config": config_to_dict(self.config),
            "tasks": [task_to_dict(task) for task in self.tasks],
        }


@dataclass(frozen=True)
class ScenarioCase:
    """Benchmark programs on cores, analysed and simulated side by side."""

    platform: Platform
    specs: Tuple[ScenarioSpec, ...]
    layout_seed: int = 0
    hyperperiods: int = 8
    config: AnalysisConfig = AnalysisConfig(
        persistence=True, tdma_slot_alignment=True
    )

    kind = "scenario"

    @property
    def task_count(self) -> int:
        return len(self.specs)

    def payload(self) -> Dict:
        return {
            "platform": platform_to_dict(self.platform),
            "config": config_to_dict(self.config),
            "layout_seed": self.layout_seed,
            "hyperperiods": self.hyperperiods,
            "specs": [
                {
                    "benchmark": spec.benchmark,
                    "core": spec.core,
                    "period_factor": spec.period_factor,
                    "scale": spec.scale,
                }
                for spec in self.specs
            ],
        }


@dataclass(frozen=True)
class DemandCase:
    """One benchmark replayed for ``n_jobs`` jobs (Eq. 10 ground truth)."""

    benchmark: str
    n_jobs: int
    num_sets: int = 256
    scale: float = 1.0

    kind = "demand"

    #: A demand case always concerns exactly one task.
    task_count = 1

    def payload(self) -> Dict:
        return {
            "benchmark": self.benchmark,
            "n_jobs": self.n_jobs,
            "num_sets": self.num_sets,
            "scale": self.scale,
        }


Case = object  # TasksetCase | ScenarioCase | DemandCase (py39-compatible alias)


def case_to_dict(case) -> Dict:
    """Versioned plain-dict form of any case kind."""
    document = {
        "format": CASE_TAG,
        "version": CASE_VERSION,
        "kind": case.kind,
    }
    document.update(case.payload())
    return document


def case_to_json(case) -> str:
    """Canonical (sorted-keys) JSON form of a case — byte-stable."""
    return json.dumps(case_to_dict(case), indent=2, sort_keys=True) + "\n"


def case_from_dict(document: Dict):
    """Inverse of :func:`case_to_dict`."""
    if document.get("format") != CASE_TAG:
        raise ModelError(
            f"unexpected format tag {document.get('format')!r}; "
            f"expected {CASE_TAG!r}"
        )
    if document.get("version") != CASE_VERSION:
        raise ModelError(f"unsupported case version {document.get('version')!r}")
    kind = document.get("kind")
    if kind == "taskset":
        return TasksetCase(
            platform=platform_from_dict(document["platform"]),
            tasks=tuple(task_from_dict(record) for record in document["tasks"]),
            config=config_from_dict(document.get("config", {})),
        )
    if kind == "scenario":
        return ScenarioCase(
            platform=platform_from_dict(document["platform"]),
            specs=tuple(
                ScenarioSpec(
                    benchmark=record["benchmark"],
                    core=record["core"],
                    period_factor=record.get("period_factor", 6.0),
                    scale=record.get("scale", 1.0),
                )
                for record in document["specs"]
            ),
            layout_seed=document.get("layout_seed", 0),
            hyperperiods=document.get("hyperperiods", 8),
            config=config_from_dict(document.get("config", {})),
        )
    if kind == "demand":
        return DemandCase(
            benchmark=document["benchmark"],
            n_jobs=document["n_jobs"],
            num_sets=document.get("num_sets", 256),
            scale=document.get("scale", 1.0),
        )
    raise ModelError(f"unknown case kind {kind!r}")


def case_from_json(text: str):
    """Inverse of :func:`case_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelError(f"not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise ModelError("a case document must be a JSON object")
    try:
        return case_from_dict(document)
    except KeyError as error:
        raise ModelError(f"malformed case record: missing {error}") from error


#: Kinds accepted by the generators / CLI, in default generation order.
CASE_KINDS: Tuple[str, ...] = ("taskset", "demand", "scenario")
