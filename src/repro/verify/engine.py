"""The fuzzing engine: generate, check, shrink, persist, report.

:func:`fuzz` drives the whole verification loop under a wall-clock budget
or a case count: draw an adversarial case (see
:mod:`repro.verify.generators`), evaluate every applicable oracle (see
:mod:`repro.verify.oracles`), and — on a violation — delta-debug the case
down to a minimal reproducer (:mod:`repro.verify.shrink`) and serialise it
into the corpus for permanent replay (:mod:`repro.verify.corpus`).

Per-oracle statistics flow through :class:`repro.perf.PerfCounters`
(``verify_cases``, ``verify_shrink_steps``, ``oracle_checks``,
``oracle_violations``), so ``--profile``-style reporting and the perf
regression benches see the verifier exactly like any other kernel.

All randomness comes from one ``random.Random(seed)``, making every run —
including the shrink and the corpus file it writes — reproducible from the
seed alone.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.model.platform import BusPolicy
from repro.perf import PerfCounters, merge_global
from repro.verify.cases import CASE_KINDS, case_to_json
from repro.verify.corpus import CorpusEntry, save_entry
from repro.verify.generators import generate_case
from repro.verify.oracles import applicable_oracles, get_oracle
from repro.verify.shrink import shrink_case


@dataclass
class Violation:
    """One oracle firing, with its shrunk reproducer."""

    oracle: str
    messages: List[str]
    case: object
    shrunk_case: object
    corpus_path: Optional[Path] = None

    def render(self) -> str:
        lines = [f"VIOLATION [{self.oracle}]"]
        lines.extend(f"  {message}" for message in self.messages)
        lines.append(
            f"  reproducer ({self.shrunk_case.task_count} task(s)):"
        )
        if self.corpus_path is not None:
            lines.append(f"  saved to {self.corpus_path}")
        else:
            lines.extend(
                "  " + line for line in case_to_json(self.shrunk_case).splitlines()
            )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    cases: int = 0
    elapsed: float = 0.0
    per_kind: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    perf: PerfCounters = field(default_factory=PerfCounters)

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def checks(self) -> int:
        return sum(self.perf.oracle_checks.values())

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        rate = self.cases / self.elapsed if self.elapsed > 0 else 0.0
        lines = [
            f"verify fuzz: {verdict} — {self.cases} cases, "
            f"{self.checks} oracle checks, {len(self.violations)} violations "
            f"in {self.elapsed:.1f}s ({rate:.1f} cases/s)"
        ]
        kinds = ", ".join(
            f"{kind}: {count}" for kind, count in sorted(self.per_kind.items())
        )
        lines.append(f"  case mix         {kinds}")
        for oracle in sorted(self.perf.oracle_checks):
            fired = self.perf.oracle_violations.get(oracle, 0)
            lines.append(
                f"  oracle {oracle:<20} checks {self.perf.oracle_checks[oracle]:>6d}"
                f"   violations {fired}"
            )
        for violation in self.violations:
            lines.append(violation.render())
        return "\n".join(lines)


def _kind_schedule(kinds: Sequence[str]) -> Tuple[str, ...]:
    """Deterministic generation rotation, weighted toward cheap kinds.

    Analytical task-set cases are cheap and cover most oracles, so they
    appear twice per cycle; the simulator-backed scenario kind is the most
    expensive and appears once.
    """
    schedule: List[str] = []
    for kind in kinds:
        schedule.extend([kind] * (2 if kind == "taskset" else 1))
    return tuple(schedule)


def fuzz(
    budget: Optional[float] = None,
    max_cases: Optional[int] = None,
    seed: int = 0,
    policies: Sequence[BusPolicy] = tuple(BusPolicy),
    kinds: Sequence[str] = CASE_KINDS,
    corpus_dir: Optional[Path] = None,
    shrink: bool = True,
    shrink_steps: int = 200,
    perf: Optional[PerfCounters] = None,
) -> FuzzReport:
    """Run one soundness-fuzzing campaign.

    Args:
        budget: wall-clock budget in seconds; generation stops once it is
            spent (a case in flight finishes its oracles).
        max_cases: alternatively / additionally, a hard case-count cap.
            When neither is given, 50 cases are run.
        seed: the campaign is a pure function of this seed.
        policies: bus policies the generated platforms draw from.
        kinds: case kinds to generate (see ``CASE_KINDS``).
        corpus_dir: where to serialise shrunk reproducers; violations are
            only reported (not persisted) when omitted.
        shrink: delta-debug violating cases to minimal reproducers.
        shrink_steps: oracle-evaluation budget per shrink.
        perf: optional caller-owned counters to additionally accumulate
            into (the report always carries its own).
    """
    if budget is None and max_cases is None:
        max_cases = 50
    if budget is not None and budget <= 0:
        raise AnalysisError(f"budget must be positive, got {budget}")
    if max_cases is not None and max_cases <= 0:
        raise AnalysisError(f"max_cases must be positive, got {max_cases}")
    if not kinds:
        raise AnalysisError("at least one case kind is required")
    unknown = set(kinds) - set(CASE_KINDS)
    if unknown:
        raise AnalysisError(f"unknown case kinds: {sorted(unknown)}")
    if not policies:
        raise AnalysisError("at least one bus policy is required")

    rng = random.Random(seed)
    schedule = _kind_schedule(kinds)
    report = FuzzReport()
    counters = report.perf
    started = time.perf_counter()
    index = 0
    while True:
        if max_cases is not None and report.cases >= max_cases:
            break
        if budget is not None and time.perf_counter() - started >= budget:
            break
        kind = schedule[index % len(schedule)]
        index += 1
        case = generate_case(kind, rng, policies)
        report.cases += 1
        counters.verify_cases += 1
        report.per_kind[kind] = report.per_kind.get(kind, 0) + 1
        for oracle in applicable_oracles(kind):
            with counters.phase(f"oracle:{oracle.name}"):
                messages = oracle.check(case)
            counters.oracle_checks[oracle.name] = (
                counters.oracle_checks.get(oracle.name, 0) + 1
            )
            if not messages:
                continue
            counters.oracle_violations[oracle.name] = (
                counters.oracle_violations.get(oracle.name, 0) + 1
            )
            shrunk = case
            if shrink:
                outcome = shrink_case(case, oracle, max_steps=shrink_steps)
                counters.verify_shrink_steps += outcome.steps
                shrunk = outcome.case
                if outcome.messages:
                    messages = outcome.messages
            violation = Violation(
                oracle=oracle.name,
                messages=list(messages),
                case=case,
                shrunk_case=shrunk,
            )
            if corpus_dir is not None:
                entry = CorpusEntry(
                    case=shrunk,
                    oracles=(oracle.name,),
                    note=f"fuzz seed={seed}: " + "; ".join(messages[:2]),
                )
                violation.corpus_path = save_entry(entry, corpus_dir)
            report.violations.append(violation)
    report.elapsed = time.perf_counter() - started
    if perf is not None:
        perf.merge(counters)
    merge_global(counters)
    return report


def collect_seed_corpus(
    corpus_dir: Path,
    seed: int = 0,
    per_kind: int = 2,
    policies: Sequence[BusPolicy] = tuple(BusPolicy),
) -> List[Path]:
    """Curate a passing seed corpus: the first ``per_kind`` cases of each
    kind (from the seeded generator stream) that pass every oracle.

    Used once to populate ``tests/corpus/`` and available for refreshing
    it; entries record every applicable oracle so replay re-checks them
    all.
    """
    rng = random.Random(seed)
    paths: List[Path] = []
    for kind in CASE_KINDS:
        kept = 0
        while kept < per_kind:
            case = generate_case(kind, rng, policies)
            oracles = applicable_oracles(kind)
            if any(oracle.check(case) for oracle in oracles):
                continue  # never seed a failing case; fix the bug first
            entry = CorpusEntry(
                case=case,
                oracles=tuple(oracle.name for oracle in oracles),
                note=f"seed corpus (seed={seed}, kind={kind})",
            )
            paths.append(save_entry(entry, corpus_dir))
            kept += 1
    return paths
