"""Versioned seed corpus: serialised reproducers replayed on every test run.

The corpus (checked in under ``tests/corpus/``) holds two sorts of entries,
both in the ``repro-verify-corpus`` v1 envelope around a serialised case:

* *reproducers* written by the fuzzer when an oracle fired — after the bug
  is fixed they stay in the corpus forever as regression tests;
* *seed cases* curated from passing fuzz runs — interesting boundary
  inputs (each case kind, each bus policy, near-unschedulable sets) that
  pin today's behaviour down cheaply.

Replaying an entry means running its recorded oracles and requiring zero
violations; a corpus entry that fires is always a regression.  File names
are content-addressed (kind + first oracle + payload hash), so identical
reproducers dedupe and names stay stable across regeneration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.errors import ModelError
from repro.verify.cases import case_from_dict, case_to_dict
from repro.verify.oracles import always_replay_oracles, run_oracles

#: Format tag and version of corpus entries.
CORPUS_TAG = "repro-verify-corpus"
CORPUS_VERSION = 1

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = Path("tests") / "corpus"

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus file: a case plus the oracles it must satisfy."""

    case: object
    oracles: Tuple[str, ...]
    note: str = ""

    def to_json(self) -> str:
        document = {
            "format": CORPUS_TAG,
            "version": CORPUS_VERSION,
            "oracles": list(self.oracles),
            "note": self.note,
            "case": case_to_dict(self.case),
        }
        return json.dumps(document, indent=2, sort_keys=True) + "\n"


def entry_from_json(text: str) -> CorpusEntry:
    """Parse one corpus entry; raises :class:`ModelError` when malformed."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelError(f"not valid JSON: {error}") from error
    if document.get("format") != CORPUS_TAG:
        raise ModelError(
            f"unexpected format tag {document.get('format')!r}; "
            f"expected {CORPUS_TAG!r}"
        )
    if document.get("version") != CORPUS_VERSION:
        raise ModelError(
            f"unsupported corpus version {document.get('version')!r}"
        )
    case = case_from_dict(document.get("case", {}))
    return CorpusEntry(
        case=case,
        oracles=tuple(document.get("oracles", ())),
        note=document.get("note", ""),
    )


def entry_name(entry: CorpusEntry) -> str:
    """Deterministic content-addressed file name for ``entry``."""
    payload = json.dumps(case_to_dict(entry.case), sort_keys=True)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:10]
    lead = entry.oracles[0] if entry.oracles else "all"
    return f"{entry.case.kind}-{lead}-{digest}.json"


def save_entry(entry: CorpusEntry, corpus_dir: PathLike) -> Path:
    """Write ``entry`` into ``corpus_dir`` (created if missing)."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_name(entry)
    atomic_write_text(path, entry.to_json())
    return path


def load_corpus(corpus_dir: PathLike) -> List[Tuple[Path, CorpusEntry]]:
    """Load every ``*.json`` entry of a corpus directory, sorted by name."""
    directory = Path(corpus_dir)
    entries: List[Tuple[Path, CorpusEntry]] = []
    for path in sorted(directory.glob("*.json")):
        entries.append((path, entry_from_json(path.read_text())))
    return entries


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying a corpus."""

    entries: int = 0
    checks: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"corpus replay: {verdict} — {self.entries} entries, "
            f"{self.checks} oracle checks, {len(self.failures)} regressions"
        ]
        lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)


def replay_entry(entry: CorpusEntry) -> Dict[str, List[str]]:
    """Run the entry's recorded oracles (all applicable when unset).

    Oracles flagged ``always_replay`` (the kernel/warm-start identity
    checks) are additionally run on every entry of an applicable kind, so
    the historical corpus exercises them even though the checked-in files
    predate their registration.
    """
    names: Optional[Sequence[str]] = entry.oracles or None
    if names is not None:
        extra = [
            oracle.name
            for oracle in always_replay_oracles(entry.case.kind)
            if oracle.name not in names
        ]
        if extra:
            names = list(names) + extra
    return run_oracles(entry.case, names=names)


def replay_corpus(
    corpus_dir: PathLike = DEFAULT_CORPUS,
    paths: Optional[Sequence[PathLike]] = None,
) -> ReplayReport:
    """Replay every entry of a corpus (or just ``paths``) and report.

    A missing corpus directory yields an empty passing report, so fresh
    clones without a corpus stay green.
    """
    report = ReplayReport()
    if paths is not None:
        loaded = [
            (Path(p), entry_from_json(Path(p).read_text())) for p in paths
        ]
    elif Path(corpus_dir).is_dir():
        loaded = load_corpus(corpus_dir)
    else:
        loaded = []
    for path, entry in loaded:
        report.entries += 1
        outcome = replay_entry(entry)
        report.checks += len(outcome)
        for oracle, messages in outcome.items():
            for message in messages:
                report.failures.append(f"{path.name}: {oracle}: {message}")
    return report
