"""Supervised worker pool executing one analysis request per submission.

Requests run in **spawn** worker processes (same rationale as the sweep
supervisor: identical semantics on Linux/macOS, no inherited state).  Two
protection layers wrap every execution:

1. The request's own :class:`~repro.budget.Budget` (deadline seconds
   and/or iteration ceiling) aborts the analysis *cooperatively* at the
   next iteration boundary — the worker survives and returns a typed
   ``budget-exceeded`` / ``cancelled`` response.
2. A watchdog **fallback** derived from that budget
   (``budget x`` :data:`WATCHDOG_FACTOR` ``+`` :data:`WATCHDOG_GRACE`)
   kills and respawns the pool if a worker hangs between budget
   checkpoints, surfacing as
   :class:`~repro.errors.ChunkTimeoutError`.  A worker that dies outright
   surfaces as :class:`~repro.errors.WorkerCrashError`.  Both feed the
   daemon's circuit breaker.

The pool is shared by the daemon's request-handler threads; respawning
after a kill is serialised through a generation counter so concurrent
failures respawn the pool once, not once per waiter.
"""

from __future__ import annotations

import hashlib
import os
import threading
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Dict, Optional, Tuple

from repro.analysis.ladder import (
    SOUND_UNKNOWN,
    TIER_EXACT,
    run_ladder,
)
from repro.analysis.wcrt import WarmHint, analyze_taskset
from repro.budget import Budget
from repro.errors import (
    AnalysisAborted,
    BudgetExceeded,
    ChunkTimeoutError,
    WorkerCrashError,
)
from repro.experiments.stateplane import resident_plane
from repro.perf import PerfCounters
from repro.resultcache import hint_from_seed
from repro.serialization import canonical_json
from repro.service.protocol import (
    abort_response,
    degraded_response,
    error_response,
    ok_response,
    parse_request,
)

#: Watchdog allowance = budget seconds x factor + grace (see module doc).
WATCHDOG_FACTOR = 4.0

#: Constant watchdog slack absorbing worker spawn and import time.
WATCHDOG_GRACE = 10.0

#: Exit status of the test-only "crash" injection (mirrors SIGABRT deaths).
CRASH_EXIT_STATUS = 134


def service_worker(document: Dict) -> Tuple[Dict, PerfCounters]:
    """Execute one raw request document (worker side).

    Top-level so it pickles by reference into spawn workers.  The document
    was already validated by the daemon; it is re-parsed here because the
    worker is a separate process and the model objects do not travel.
    Returns ``(response document, perf counters)`` — analysis failures of
    every kind are *data* in the response, never exceptions, so the only
    exceptional outcomes the parent sees are real worker deaths.
    """
    perf = PerfCounters()
    try:
        request = parse_request(document)
    except Exception as error:  # noqa: BLE001 — isolate validation failures
        request_id = document.get("id", "") if isinstance(document, dict) else ""
        return error_response(request_id, error), perf
    budget: Optional[Budget] = None
    if request.budget_seconds is not None or request.max_iterations is not None:
        budget = Budget(
            wall_seconds=request.budget_seconds,
            max_iterations=request.max_iterations,
        )
    if request.inject == "crash":
        # TEST ONLY: die like a segfaulting worker would.
        os._exit(CRASH_EXIT_STATUS)
    try:
        if request.inject == "hang":
            # TEST ONLY: a *cooperative* hang — spins forever but keeps
            # ticking its budget, so a budgeted request aborts cleanly
            # while an unbudgeted one exercises the watchdog fallback.
            if budget is not None:
                budget.start()
            while True:
                if budget is not None:
                    budget.tick()
        # The daemon may attach a persisted warm-start seed (see
        # repro.resultcache.WarmSeedStore).  It is only ever a *hint*:
        # the analysis re-verifies it strictly and falls back to a cold
        # run on any mismatch, so a malformed or stale seed is dropped
        # here rather than failing the request.
        warm_hint: Optional[WarmHint] = None
        seed = document.get("warm_seed")
        if seed is not None and request.config.warm_start:
            try:
                warm_hint = hint_from_seed(seed)
            except Exception:  # noqa: BLE001 — seeds must never hurt
                warm_hint = None
        # Resident-plane canonicalisation: map equal taskset envelopes
        # onto one task-set object per worker, keyed by the envelope's
        # canonical-JSON digest.  Repeated identical requests served by a
        # resident worker then share derived tables and warm-start seeds
        # (their replays take the strictly re-verified warm path), so a
        # re-check costs one verification round instead of a cold fixed
        # point — bit-identical either way, pinned by the
        # ``resident-plane-identity`` oracle.
        try:
            digest = hashlib.sha256(
                canonical_json(document["taskset"]).encode("utf-8")
            ).hexdigest()
            taskset = resident_plane().canonical(
                ("service-taskset", digest),
                lambda: request.taskset,
                perf=perf,
            )
        except Exception:  # noqa: BLE001 — residency must never hurt
            taskset = request.taskset
        # The degradation ladder engages when the daemon (or the caller)
        # asked for it and there is a budget to degrade under; without
        # pressure the exact path runs exactly as before, bit for bit.
        use_ladder = (
            budget is not None
            and (
                request.degrade
                if request.degrade is not None
                else request.deadline_ms is not None
            )
        )
        if use_ladder:
            outcome = run_ladder(
                taskset,
                request.platform,
                request.config,
                budget=budget,
                perf=perf,
                warm_hint=warm_hint,
            )
            if outcome.soundness != SOUND_UNKNOWN:
                if outcome.tier == TIER_EXACT:
                    return ok_response(request.request_id, outcome.result), perf
                perf.degraded_responses += 1
                return (
                    degraded_response(
                        request.request_id,
                        outcome.result,
                        outcome.tier,
                        outcome.soundness,
                        outcome.tiers_tried,
                    ),
                    perf,
                )
            abort = outcome.abort
            if abort is None:  # pragma: no cover - defensive
                abort = BudgetExceeded(
                    "analysis budget exhausted before any ladder tier "
                    "completed"
                )
                abort.iterations = budget.iterations
                abort.elapsed = budget.elapsed()
            body = abort_response(request.request_id, abort)
            body["degraded"] = {
                "tier": None,
                "soundness": SOUND_UNKNOWN,
                "tiers_tried": list(outcome.tiers_tried),
            }
            return body, perf
        result = analyze_taskset(
            taskset,
            request.platform,
            request.config,
            perf=perf,
            budget=budget,
            warm_hint=warm_hint,
        )
    except AnalysisAborted as abort:
        return abort_response(request.request_id, abort), perf
    except Exception as error:  # noqa: BLE001 — isolate analysis failures
        return error_response(request.request_id, error), perf
    return ok_response(request.request_id, result), perf


class AnalysisPool:
    """Spawn-based worker pool with a per-request watchdog fallback."""

    def __init__(
        self,
        workers: int = 1,
        watchdog_factor: float = WATCHDOG_FACTOR,
        watchdog_grace: float = WATCHDOG_GRACE,
        default_watchdog: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.watchdog_factor = watchdog_factor
        self.watchdog_grace = watchdog_grace
        #: Watchdog allowance for requests with no budget of their own
        #: (``None`` = wait forever — only their cooperative budget, if
        #: any, bounds them).
        self.default_watchdog = default_watchdog
        self._lock = threading.Lock()
        self._generation = 0
        self._executor = self._new_executor()

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=get_context("spawn")
        )

    def allowance_for(self, budget_seconds: Optional[float]) -> Optional[float]:
        """Watchdog seconds for a request with the given budget."""
        if budget_seconds is None:
            return self.default_watchdog
        return budget_seconds * self.watchdog_factor + self.watchdog_grace

    def run(self, document: Dict) -> Tuple[Dict, PerfCounters]:
        """Execute one validated request document, enforcing the watchdog.

        Raises :class:`~repro.errors.WorkerCrashError` when the worker
        process died and :class:`~repro.errors.ChunkTimeoutError` when the
        watchdog allowance expired (the pool is killed and respawned —
        a hung worker cannot be cancelled any other way).
        """
        allowance = self.allowance_for(document.get("budget_seconds"))
        with self._lock:
            generation = self._generation
            executor = self._executor
        try:
            future = executor.submit(service_worker, document)
        except (BrokenProcessPool, RuntimeError) as error:
            self._respawn(generation, kill=False)
            raise WorkerCrashError(
                f"worker pool was broken at submission: {error}"
            ) from None
        try:
            return future.result(timeout=allowance)
        except FutureTimeout:
            self._respawn(generation, kill=True)
            raise ChunkTimeoutError(
                f"request exceeded its {allowance:.1f}s watchdog allowance "
                f"(cooperative budget checkpoints never fired)"
            ) from None
        except BrokenProcessPool:
            self._respawn(generation, kill=False)
            raise WorkerCrashError(
                "worker process died while executing this request"
            ) from None

    def _respawn(self, generation: int, kill: bool) -> None:
        """Replace the executor once per failure generation."""
        with self._lock:
            if self._generation != generation:
                return  # another thread already respawned it
            self._generation += 1
            old = self._executor
            self._executor = self._new_executor()
        self._shutdown(old, kill=kill)

    @staticmethod
    def _shutdown(executor: ProcessPoolExecutor, kill: bool) -> None:
        if kill:
            processes = getattr(executor, "_processes", None)
            if processes:
                for process in list(processes.values()):
                    process.terminate()
        executor.shutdown(wait=kill, cancel_futures=True)

    def close(self) -> None:
        """Terminate the pool (used on daemon shutdown)."""
        with self._lock:
            executor = self._executor
        self._shutdown(executor, kill=True)
