"""Health-checked sharded front end for a fleet of analysis daemons.

``python -m repro.service.router --shard URL --shard URL ...`` starts a
thin HTTP router that partitions requests across several
:mod:`repro.service` daemons by **result fingerprint**
(:func:`repro.resultcache.request_fingerprint`): identical requests
always land on the same shard, so each shard's persistent result cache
and warm-seed store stay hot for its slice of the request space and no
fingerprint is ever computed twice by two shards at once.

Routing is resilience-first:

* A background poller probes every shard's ``/readyz`` each
  ``health_interval_seconds`` and keeps a liveness map; forwarding
  prefers healthy shards but will still try an unhealthy primary when it
  is the only candidate (health data is advisory, never authoritative).
* **Idempotent** requests — everything except the test-only ``inject``
  faults — fail over: when the primary shard is dead, refusing (503) or
  timing out, the router retries the remaining shards in ring order with
  capped exponential backoff.  Analysis requests are pure functions of
  their payload, so a replay on another shard returns the bit-identical
  body (see ``docs/CACHE.md``).
* Non-idempotent requests get exactly one attempt on their primary.
* With every shard down the router degrades to a typed 503
  (``status: "no-shards"``) instead of hanging, and its own ``/readyz``
  reports 503 so an outer balancer can drain it.

The core :class:`ShardRouter` is HTTP-free and takes an injectable
``transport`` callable, so unit tests drive the full retry/failover
logic with an in-memory fake (see ``tests/test_router.py``); the chaos
harness (``scripts/chaos_smoke.py``) exercises the real HTTP stack
against SIGKILLed and SIGSTOPped shard processes.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AnalysisError, ModelError
from repro.exitcodes import EXIT_USAGE
from repro.perf import PerfCounters
from repro.resultcache import request_fingerprint
from repro.service.protocol import error_response, parse_request

#: Transport signature: ``(method, url, document, timeout) -> (status, body)``.
#: Must raise :class:`OSError` (connection refused, socket timeout, reset)
#: for transport-level failures; HTTP error statuses are *returned*.
Transport = Callable[[str, str, Optional[Dict], Optional[float]], Tuple[int, Dict]]

#: Leading fingerprint hex digits hashed into a shard index.
_SHARD_DIGITS = 16


def http_transport(
    method: str, url: str, document: Optional[Dict], timeout: Optional[float]
) -> Tuple[int, Dict]:
    """Default stdlib transport used by the real router process."""
    data = json.dumps(document).encode("utf-8") if document is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.loads(error.read())
        except (ValueError, json.JSONDecodeError):
            return error.code, {"status": "error", "message": str(error)}


@dataclass(frozen=True)
class RouterConfig:
    """Operational knobs of the shard router, validated eagerly."""

    #: Base URLs of the backing analysis daemons (``http://host:port``).
    shards: Tuple[str, ...] = ()
    host: str = "127.0.0.1"
    port: int = 8420
    #: Period of the background ``/readyz`` health poller.
    health_interval_seconds: float = 1.0
    #: Per-attempt transport timeout (``None`` = wait forever).  A slow or
    #: SIGSTOPped shard surfaces as a timeout and triggers failover.
    forward_timeout: Optional[float] = None
    #: Health-probe timeout (kept tight so one hung shard cannot stall
    #: the poller for long).
    health_timeout: float = 2.0
    #: Extra attempts (beyond the first) an idempotent request may spend
    #: across the remaining shards.
    max_retries: int = 3
    #: First backoff sleep; doubles per retry up to :attr:`backoff_cap`.
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if not self.shards:
            raise AnalysisError("router needs at least one --shard URL")
        if not (0 <= self.port <= 65535):
            raise AnalysisError(f"port must be in [0, 65535], got {self.port}")
        if self.health_interval_seconds <= 0:
            raise AnalysisError(
                f"health_interval_seconds must be positive, "
                f"got {self.health_interval_seconds}"
            )
        if self.forward_timeout is not None and self.forward_timeout <= 0:
            raise AnalysisError(
                f"forward_timeout must be positive (or None), "
                f"got {self.forward_timeout}"
            )
        if self.health_timeout <= 0:
            raise AnalysisError(
                f"health_timeout must be positive, got {self.health_timeout}"
            )
        if self.max_retries < 0:
            raise AnalysisError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise AnalysisError(
                f"need 0 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base} / {self.backoff_cap}"
            )


class ShardRouter:
    """Fingerprint-sharded request forwarder with health-aware failover."""

    def __init__(
        self,
        config: RouterConfig,
        transport: Transport = http_transport,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        self.transport = transport
        self.sleep = sleep
        self.perf = PerfCounters()
        self._lock = threading.Lock()
        #: Advisory liveness map maintained by the poller and by forward
        #: failures; shards start optimistically healthy.
        self._healthy: List[bool] = [True] * len(config.shards)
        self._health_detail: List[str] = ["unpolled"] * len(config.shards)
        self._poller: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._round_robin = 0

    # -- sharding -------------------------------------------------------------

    def shard_for(self, fingerprint: str) -> int:
        """Deterministic shard index of a request fingerprint."""
        return int(fingerprint[:_SHARD_DIGITS], 16) % len(self.config.shards)

    def _fingerprint_of(self, document) -> Optional[str]:
        """Fingerprint when the request is deterministic, else ``None``.

        ``None`` covers the test-only ``inject`` faults (non-idempotent —
        they kill or hang a worker, so a replay is not a no-op) and
        documents that fail validation (any shard returns the same typed
        400, so they round-robin).
        """
        try:
            request = parse_request(document)
        except (ModelError, AnalysisError):
            return None
        if request.inject is not None:
            return None
        return request_fingerprint(
            request.taskset, request.platform, request.config
        )

    def _candidates(self, primary: int, idempotent: bool) -> List[int]:
        """Shard indices in try-order: primary first, then the ring.

        Healthy shards are preferred within each group, but unhealthy
        ones stay in the list — the health map is advisory and a stale
        "down" verdict must not make a reachable shard unreachable.
        """
        if not idempotent:
            return [primary]
        ring = [
            (primary + offset) % len(self.config.shards)
            for offset in range(len(self.config.shards))
        ]
        with self._lock:
            healthy = list(self._healthy)
        return sorted(ring, key=lambda i: (ring.index(i) != 0, not healthy[i]))

    # -- forwarding -----------------------------------------------------------

    def forward(self, document) -> Tuple[int, Dict]:
        """Route one request document to its shard; returns (status, body)."""
        fingerprint = self._fingerprint_of(document)
        if fingerprint is not None:
            primary = self.shard_for(fingerprint)
            idempotent = True
        else:
            with self._lock:
                primary = self._round_robin % len(self.config.shards)
                self._round_robin += 1
            inject = document.get("inject") if isinstance(document, dict) else None
            idempotent = inject is None
        candidates = self._candidates(primary, idempotent)
        retries_left = self.config.max_retries
        backoff = self.config.backoff_base
        last_error: Optional[str] = None
        for position, shard in enumerate(candidates):
            if position > 0:
                if retries_left <= 0:
                    break
                retries_left -= 1
                with self._lock:
                    self.perf.router_retries += 1
                self.sleep(backoff)
                backoff = min(backoff * 2, self.config.backoff_cap)
            url = self.config.shards[shard] + "/analyze"
            try:
                status, body = self.transport(
                    "POST", url, document, self.config.forward_timeout
                )
            except OSError as error:
                self._mark(shard, False, f"forward failed: {error}")
                last_error = f"shard {shard} ({self.config.shards[shard]}): {error}"
                continue
            if status == 503 and idempotent and position + 1 < len(candidates):
                # The shard is up but refusing (draining / breaker open);
                # another shard can serve the identical request.
                last_error = (
                    f"shard {shard} refused with 503 "
                    f"({body.get('status', 'unknown')})"
                )
                continue
            self._mark(shard, True, "ok")
            with self._lock:
                self.perf.router_forwards += 1
                if shard != primary:
                    self.perf.router_failovers += 1
            if isinstance(body, dict):
                body = dict(body, shard=shard)
            return status, body
        request_id = document.get("id", "") if isinstance(document, dict) else ""
        return 503, {
            "status": "no-shards",
            "id": request_id,
            "message": (
                f"no shard could serve this request "
                f"(last error: {last_error or 'none tried'})"
            ),
            "retry_after": 1,
        }

    def forward_batch(self, documents) -> Tuple[int, Dict]:
        """Split a ``{"requests": [...]}`` batch across its shards."""
        if not isinstance(documents, list):
            return 400, error_response(
                "", ModelError("'requests' must be an array")
            )
        responses = []
        for document in documents:
            _status, body = self.forward(document)
            responses.append(body)
        return 200, {"responses": responses}

    # -- health ---------------------------------------------------------------

    def _mark(self, shard: int, healthy: bool, detail: str) -> None:
        with self._lock:
            self._healthy[shard] = healthy
            self._health_detail[shard] = detail

    def probe(self, shard: int) -> bool:
        """One synchronous ``/readyz`` probe of a shard."""
        url = self.config.shards[shard] + "/readyz"
        try:
            status, body = self.transport(
                "GET", url, None, self.config.health_timeout
            )
        except OSError as error:
            self._mark(shard, False, f"probe failed: {error}")
            return False
        healthy = status == 200
        detail = "ready" if healthy else f"not ready ({body.get('status')})"
        self._mark(shard, healthy, detail)
        return healthy

    def probe_all(self) -> int:
        """Probe every shard once; returns how many are ready."""
        return sum(self.probe(shard) for shard in range(len(self.config.shards)))

    def start_health_poller(self) -> None:
        """Launch the background ``/readyz`` poller (idempotent)."""
        if self._poller is not None:
            return
        self._stop.clear()

        def poll() -> None:
            while not self._stop.wait(self.config.health_interval_seconds):
                self.probe_all()

        self._poller = threading.Thread(
            target=poll, name="router-health", daemon=True
        )
        self._poller.start()

    def stop_health_poller(self) -> None:
        if self._poller is None:
            return
        self._stop.set()
        self._poller.join(timeout=5)
        self._poller = None

    # -- probes and stats -----------------------------------------------------

    def healthz(self) -> Tuple[int, Dict]:
        return 200, {"status": "ok"}

    def readyz(self) -> Tuple[int, Dict]:
        """Ready while at least one shard is believed reachable."""
        with self._lock:
            ready = sum(self._healthy)
        if ready:
            return 200, {"status": "ready", "shards_ready": ready}
        return 503, {"status": "no-shards", "shards_ready": 0}

    def stats_document(self) -> Dict:
        with self._lock:
            shards = [
                {
                    "url": url,
                    "healthy": self._healthy[index],
                    "detail": self._health_detail[index],
                }
                for index, url in enumerate(self.config.shards)
            ]
            return {
                "shards": shards,
                "router": {
                    "forwards": self.perf.router_forwards,
                    "retries": self.perf.router_retries,
                    "failovers": self.perf.router_failovers,
                },
            }


# -- HTTP front end -----------------------------------------------------------


class _RouterHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto one shared :class:`ShardRouter`."""

    router: ShardRouter  # injected by serve_router()
    quiet = True

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send(self, status: int, document: Dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        retry_after = document.get("retry_after")
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        if self.path == "/healthz":
            self._send(*self.router.healthz())
        elif self.path == "/readyz":
            self._send(*self.router.readyz())
        elif self.path == "/stats":
            self._send(200, self.router.stats_document())
        else:
            self._send(404, {"status": "not-found", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        if self.path != "/analyze":
            self._send(404, {"status": "not-found", "path": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            document = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError) as error:
            self._send(400, error_response("", ModelError(f"bad JSON: {error}")))
            return
        if isinstance(document, dict) and "requests" in document:
            self._send(*self.router.forward_batch(document["requests"]))
        else:
            self._send(*self.router.forward(document))


def serve_router(
    config: RouterConfig, router: Optional[ShardRouter] = None
) -> int:
    """Run the router until interrupted; returns the process exit code.

    Prints ``repro-router: listening on http://HOST:PORT`` once bound so
    wrappers (the chaos harness) can scrape the address.
    """
    router = router or ShardRouter(config)
    router.probe_all()
    router.start_health_poller()
    handler = type("BoundRouterHandler", (_RouterHandler,), {"router": router})
    server = ThreadingHTTPServer((config.host, config.port), handler)
    server.daemon_threads = True
    host, port = server.server_address[:2]
    print(f"repro-router: listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        router.stop_health_poller()
        server.server_close()
    print("repro-router: exiting", flush=True)
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-router",
        description="Fingerprint-sharded, health-checked router in front "
        "of several repro.service analysis daemons.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8420,
        help="TCP port (0 = let the OS pick; the chosen port is printed)",
    )
    parser.add_argument(
        "--shard",
        action="append",
        default=[],
        metavar="URL",
        help="backing daemon base URL (repeat once per shard)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="period of the background /readyz health poller",
    )
    parser.add_argument(
        "--forward-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt transport timeout (default: wait forever); a "
        "slow shard surfaces as a timeout and triggers failover",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="extra attempts an idempotent request may spend on other shards",
    )
    parser.add_argument(
        "--backoff-base",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="first retry backoff; doubles per retry up to --backoff-cap",
    )
    parser.add_argument(
        "--backoff-cap",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="retry backoff ceiling",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        config = RouterConfig(
            shards=tuple(args.shard),
            host=args.host,
            port=args.port,
            health_interval_seconds=args.health_interval,
            forward_timeout=args.forward_timeout,
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            backoff_cap=args.backoff_cap,
        )
    except AnalysisError as error:
        print(f"repro-router: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    return serve_router(config)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
