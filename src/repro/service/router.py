"""Health-checked sharded front end for a fleet of analysis daemons.

``python -m repro.service.router --shard URL --shard URL ...`` starts a
thin HTTP router that partitions requests across several
:mod:`repro.service` daemons by **result fingerprint**
(:func:`repro.resultcache.request_fingerprint`): identical requests
always land on the same shard, so each shard's persistent result cache
and warm-seed store stay hot for its slice of the request space and no
fingerprint is ever computed twice by two shards at once.

Routing is resilience-first:

* A background poller probes every shard's ``/readyz`` each
  ``health_interval_seconds`` and keeps a liveness map; forwarding
  prefers healthy shards but will still try an unhealthy primary when it
  is the only candidate (health data is advisory, never authoritative).
* **Idempotent** requests — everything except the test-only ``inject``
  faults — fail over: when the primary shard is dead, refusing (503) or
  timing out, the router retries the remaining shards in ring order with
  capped exponential backoff.  Analysis requests are pure functions of
  their payload, so a replay on another shard returns the bit-identical
  body (see ``docs/CACHE.md``).
* Non-idempotent requests get exactly one attempt on their primary.
* With every shard down the router degrades to a typed 503
  (``status: "no-shards"``) instead of hanging, and its own ``/readyz``
  reports 503 so an outer balancer can drain it.

The core :class:`ShardRouter` is HTTP-free and takes an injectable
``transport`` callable, so unit tests drive the full retry/failover
logic with an in-memory fake (see ``tests/test_router.py``); the chaos
harness (``scripts/chaos_smoke.py``) exercises the real HTTP stack
against SIGKILLed and SIGSTOPped shard processes.
"""

from __future__ import annotations

import argparse
import json
import queue
import signal
import sys
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AnalysisError, ModelError
from repro.exitcodes import EXIT_USAGE
from repro.perf import PerfCounters
from repro.resultcache import request_fingerprint
from repro.service.protocol import error_response, parse_request, shed_response

#: Transport signature: ``(method, url, document, timeout) -> (status, body)``.
#: Must raise :class:`OSError` (connection refused, socket timeout, reset)
#: for transport-level failures; HTTP error statuses are *returned*.
Transport = Callable[[str, str, Optional[Dict], Optional[float]], Tuple[int, Dict]]

#: Leading fingerprint hex digits hashed into a shard index.
_SHARD_DIGITS = 16


def http_transport(
    method: str, url: str, document: Optional[Dict], timeout: Optional[float]
) -> Tuple[int, Dict]:
    """Default stdlib transport used by the real router process."""
    data = json.dumps(document).encode("utf-8") if document is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.loads(error.read())
        except (ValueError, json.JSONDecodeError):
            return error.code, {"status": "error", "message": str(error)}


@dataclass(frozen=True)
class RouterConfig:
    """Operational knobs of the shard router, validated eagerly."""

    #: Base URLs of the backing analysis daemons (``http://host:port``).
    shards: Tuple[str, ...] = ()
    host: str = "127.0.0.1"
    port: int = 8420
    #: Period of the background ``/readyz`` health poller.
    health_interval_seconds: float = 1.0
    #: Per-attempt transport timeout (``None`` = wait forever).  A slow or
    #: SIGSTOPped shard surfaces as a timeout and triggers failover.
    forward_timeout: Optional[float] = None
    #: Health-probe timeout (kept tight so one hung shard cannot stall
    #: the poller for long).
    health_timeout: float = 2.0
    #: Extra attempts (beyond the first) an idempotent request may spend
    #: across the remaining shards.
    max_retries: int = 3
    #: First backoff sleep; doubles per retry up to :attr:`backoff_cap`.
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: Safety margin (milliseconds) the router subtracts from a request's
    #: remaining ``deadline_ms`` before forwarding — its share of the
    #: end-to-end deadline propagation chain.  Retries never start when
    #: the remaining deadline could not absorb the backoff sleep.
    deadline_safety_ms: float = 25.0
    #: Hedge the first attempt of an idempotent request: when the primary
    #: has not answered within the measured p95 forward latency, send one
    #: duplicate to the first backup shard and take whichever responds
    #: first.  Analysis requests are pure functions of their payload, so
    #: the duplicate is a no-op beyond the work it burns.
    hedge_enabled: bool = True
    #: Minimum recorded forward latencies before hedging engages (a cold
    #: router has no p95 worth trusting).
    hedge_min_samples: int = 16

    def __post_init__(self) -> None:
        if not self.shards:
            raise AnalysisError("router needs at least one --shard URL")
        if not (0 <= self.port <= 65535):
            raise AnalysisError(f"port must be in [0, 65535], got {self.port}")
        if self.health_interval_seconds <= 0:
            raise AnalysisError(
                f"health_interval_seconds must be positive, "
                f"got {self.health_interval_seconds}"
            )
        if self.forward_timeout is not None and self.forward_timeout <= 0:
            raise AnalysisError(
                f"forward_timeout must be positive (or None), "
                f"got {self.forward_timeout}"
            )
        if self.health_timeout <= 0:
            raise AnalysisError(
                f"health_timeout must be positive, got {self.health_timeout}"
            )
        if self.max_retries < 0:
            raise AnalysisError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < self.backoff_base:
            raise AnalysisError(
                f"need 0 <= backoff_base <= backoff_cap, got "
                f"{self.backoff_base} / {self.backoff_cap}"
            )
        if self.deadline_safety_ms < 0:
            raise AnalysisError(
                f"deadline_safety_ms must be non-negative, "
                f"got {self.deadline_safety_ms}"
            )
        if self.hedge_min_samples < 1:
            raise AnalysisError(
                f"hedge_min_samples must be >= 1, got {self.hedge_min_samples}"
            )


class ShardRouter:
    """Fingerprint-sharded request forwarder with health-aware failover."""

    def __init__(
        self,
        config: RouterConfig,
        transport: Transport = http_transport,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.transport = transport
        self.sleep = sleep
        #: Monotonic time source for deadlines, cooldowns and latency
        #: measurement; injectable for deterministic tests.
        self._clock = clock
        self.perf = PerfCounters()
        self._lock = threading.Lock()
        #: Advisory liveness map maintained by the poller and by forward
        #: failures; shards start optimistically healthy.
        self._healthy: List[bool] = [True] * len(config.shards)
        self._health_detail: List[str] = ["unpolled"] * len(config.shards)
        #: Monotonic instants before which each shard asked not to be
        #: retried (its 429/503 ``Retry-After``); cooling shards sort to
        #: the back of the candidate list but are never removed — like
        #: the health map, the hint is advisory.
        self._cooldown_until: List[float] = [0.0] * len(config.shards)
        #: Rolling window of successful forward latencies feeding the
        #: hedging p95.
        self._latencies: deque = deque(maxlen=128)
        self._poller: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._round_robin = 0

    # -- sharding -------------------------------------------------------------

    def shard_for(self, fingerprint: str) -> int:
        """Deterministic shard index of a request fingerprint."""
        return int(fingerprint[:_SHARD_DIGITS], 16) % len(self.config.shards)

    def _fingerprint_of(self, document) -> Optional[str]:
        """Fingerprint when the request is deterministic, else ``None``.

        ``None`` covers the test-only ``inject`` faults (non-idempotent —
        they kill or hang a worker, so a replay is not a no-op) and
        documents that fail validation (any shard returns the same typed
        400, so they round-robin).
        """
        try:
            request = parse_request(document)
        except (ModelError, AnalysisError):
            return None
        if request.inject is not None:
            return None
        return request_fingerprint(
            request.taskset, request.platform, request.config
        )

    def _candidates(self, primary: int, idempotent: bool) -> List[int]:
        """Shard indices in try-order: primary first, then the ring.

        Healthy shards are preferred within each group, but unhealthy
        ones stay in the list — the health map is advisory and a stale
        "down" verdict must not make a reachable shard unreachable.
        Shards inside a ``Retry-After`` cooldown window sort behind
        everything else (including an unhealthy primary): they asked not
        to be contacted, so they are the last resort, not removed.
        """
        if not idempotent:
            return [primary]
        ring = [
            (primary + offset) % len(self.config.shards)
            for offset in range(len(self.config.shards))
        ]
        now = self._clock()
        with self._lock:
            healthy = list(self._healthy)
            cooling = [until > now for until in self._cooldown_until]
        return sorted(
            ring,
            key=lambda i: (cooling[i], ring.index(i) != 0, not healthy[i]),
        )

    def _cool_down(self, shard: int, retry_after) -> None:
        """Honour a shard's ``Retry-After`` hint on 429/503 replies."""
        if not isinstance(retry_after, (int, float)) or isinstance(
            retry_after, bool
        ) or retry_after <= 0:
            return
        until = self._clock() + float(retry_after)
        with self._lock:
            if until > self._cooldown_until[shard]:
                self._cooldown_until[shard] = until

    # -- forwarding -----------------------------------------------------------

    def _attempt(
        self, shard: int, document, remaining: Callable[[], Optional[float]]
    ) -> Tuple[Optional[Tuple[int, Dict]], Optional[str]]:
        """One transport attempt; returns ``((status, body)|None, error)``.

        Deadline propagation happens here: the forwarded copy carries the
        *decremented* ``deadline_ms`` (the caller's deadline minus this
        hop's elapsed time and safety margin) and the transport timeout
        never exceeds what is left — a shard cannot be waited on past the
        point where its answer would be useless.
        """
        left = remaining()
        timeout = self.config.forward_timeout
        if left is not None:
            timeout = left if timeout is None else min(timeout, left)
            if isinstance(document, dict) and "deadline_ms" in document:
                document = dict(document, deadline_ms=left * 1000.0)
        url = self.config.shards[shard] + "/analyze"
        begun = self._clock()
        try:
            status, body = self.transport("POST", url, document, timeout)
        except OSError as error:
            self._mark(shard, False, f"forward failed: {error}")
            return None, (
                f"shard {shard} ({self.config.shards[shard]}): {error}"
            )
        if status == 200:
            with self._lock:
                self._latencies.append(self._clock() - begun)
        if status in (429, 503) and isinstance(body, dict):
            self._cool_down(shard, body.get("retry_after"))
        if status != 503:
            # 503 = up but refusing (draining / breaker open); that is a
            # routing hint handled by the caller, not a health verdict.
            self._mark(shard, True, "ok")
        return (status, body), None

    def _hedge_delay(self) -> Optional[float]:
        """The p95 forward latency, or ``None`` while hedging is off."""
        if not self.config.hedge_enabled:
            return None
        with self._lock:
            if len(self._latencies) < self.config.hedge_min_samples:
                return None
            ordered = sorted(self._latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    def _hedged_first(
        self,
        document,
        primary: int,
        backup: int,
        remaining: Callable[[], Optional[float]],
        delay: float,
    ) -> Tuple[int, Optional[Tuple[int, Dict]], Optional[str], int]:
        """First attempt with a single hedge after ``delay`` seconds.

        Sends the request to ``primary``; when no answer arrives within
        the measured p95 latency, one duplicate goes to ``backup`` and the
        first response wins (requests are pure functions of their
        payload, so either answer is correct).  Returns
        ``(shard, outcome, error, candidates_consumed)``.
        """
        results: "queue.Queue" = queue.Queue()

        def attempt(shard: int) -> None:
            outcome, error = self._attempt(shard, document, remaining)
            results.put((shard, outcome, error))

        threading.Thread(
            target=attempt, args=(primary,), name="router-hedge-0", daemon=True
        ).start()
        try:
            shard, outcome, error = results.get(timeout=delay)
        except queue.Empty:
            with self._lock:
                self.perf.hedges_sent += 1
            threading.Thread(
                target=attempt,
                args=(backup,),
                name="router-hedge-1",
                daemon=True,
            ).start()
            shard, outcome, error = results.get()
            if outcome is None:
                # The faster attempt died in transport; the slower one is
                # still in flight and may yet answer.
                shard, outcome, error = results.get()
            if outcome is not None and shard == backup:
                with self._lock:
                    self.perf.hedges_won += 1
            return shard, outcome, error, 2
        return shard, outcome, error, 1

    def forward(self, document) -> Tuple[int, Dict]:
        """Route one request document to its shard; returns (status, body)."""
        started = self._clock()
        fingerprint = self._fingerprint_of(document)
        if fingerprint is not None:
            primary = self.shard_for(fingerprint)
            idempotent = True
        else:
            with self._lock:
                primary = self._round_robin % len(self.config.shards)
                self._round_robin += 1
            inject = document.get("inject") if isinstance(document, dict) else None
            idempotent = inject is None
        deadline_seconds: Optional[float] = None
        if isinstance(document, dict):
            raw = document.get("deadline_ms")
            if (
                isinstance(raw, (int, float))
                and not isinstance(raw, bool)
                and raw > 0
            ):
                deadline_seconds = float(raw) / 1000.0

        def remaining() -> Optional[float]:
            """Caller-deadline seconds this hop may still spend."""
            if deadline_seconds is None:
                return None
            return (
                deadline_seconds
                - (self._clock() - started)
                - self.config.deadline_safety_ms / 1000.0
            )

        candidates = self._candidates(primary, idempotent)
        retries_left = self.config.max_retries
        backoff = self.config.backoff_base
        last_error: Optional[str] = None
        expired = False
        index = 0
        first = True
        while index < len(candidates):
            shard = candidates[index]
            if not first:
                if retries_left <= 0:
                    break
                left = remaining()
                if left is not None and left - backoff <= 0:
                    # The retry budget is bounded by the caller's
                    # deadline, not just by max_retries: a retry whose
                    # backoff sleep alone outlives the deadline is wasted
                    # work for an answer nobody is waiting for.
                    expired = True
                    break
                retries_left -= 1
                with self._lock:
                    self.perf.router_retries += 1
                self.sleep(backoff)
                backoff = min(backoff * 2, self.config.backoff_cap)
            left = remaining()
            if left is not None and left <= 0:
                expired = True
                break
            outcome: Optional[Tuple[int, Dict]] = None
            error: Optional[str] = None
            consumed = 1
            delay = (
                self._hedge_delay()
                if first and idempotent and index + 1 < len(candidates)
                else None
            )
            if delay is not None:
                shard, outcome, error, consumed = self._hedged_first(
                    document, shard, candidates[index + 1], remaining, delay
                )
            else:
                outcome, error = self._attempt(shard, document, remaining)
            first = False
            if outcome is None:
                last_error = error
                index += consumed
                continue
            status, body = outcome
            if status == 503 and idempotent and index + consumed < len(candidates):
                # The shard is up but refusing (draining / breaker open);
                # another shard can serve the identical request.
                last_error = (
                    f"shard {shard} refused with 503 "
                    f"({body.get('status', 'unknown')})"
                )
                index += consumed
                continue
            with self._lock:
                self.perf.router_forwards += 1
                if shard != primary:
                    self.perf.router_failovers += 1
            if isinstance(body, dict):
                body = dict(body, shard=shard)
            return status, body
        request_id = document.get("id", "") if isinstance(document, dict) else ""
        if expired:
            with self._lock:
                self.perf.shed_requests += 1
                self.perf.deadline_expired_rejects += 1
            return 504, shed_response(
                request_id,
                "deadline-expired",
                f"caller deadline expired at the router after "
                f"{self._clock() - started:.3f}s "
                f"(last error: {last_error or 'no attempt failed'})",
            )
        return 503, {
            "status": "no-shards",
            "id": request_id,
            "message": (
                f"no shard could serve this request "
                f"(last error: {last_error or 'none tried'})"
            ),
            "retry_after": 1,
        }

    def forward_batch(self, documents) -> Tuple[int, Dict]:
        """Split a ``{"requests": [...]}`` batch across its shards."""
        if not isinstance(documents, list):
            return 400, error_response(
                "", ModelError("'requests' must be an array")
            )
        responses = []
        for document in documents:
            _status, body = self.forward(document)
            responses.append(body)
        return 200, {"responses": responses}

    # -- health ---------------------------------------------------------------

    def _mark(self, shard: int, healthy: bool, detail: str) -> None:
        with self._lock:
            self._healthy[shard] = healthy
            self._health_detail[shard] = detail

    def probe(self, shard: int) -> bool:
        """One synchronous ``/readyz`` probe of a shard."""
        url = self.config.shards[shard] + "/readyz"
        try:
            status, body = self.transport(
                "GET", url, None, self.config.health_timeout
            )
        except OSError as error:
            self._mark(shard, False, f"probe failed: {error}")
            return False
        healthy = status == 200
        detail = "ready" if healthy else f"not ready ({body.get('status')})"
        self._mark(shard, healthy, detail)
        return healthy

    def probe_all(self) -> int:
        """Probe every shard once; returns how many are ready."""
        return sum(self.probe(shard) for shard in range(len(self.config.shards)))

    def start_health_poller(self) -> None:
        """Launch the background ``/readyz`` poller (idempotent)."""
        if self._poller is not None:
            return
        self._stop.clear()

        def poll() -> None:
            while not self._stop.wait(self.config.health_interval_seconds):
                self.probe_all()

        self._poller = threading.Thread(
            target=poll, name="router-health", daemon=True
        )
        self._poller.start()

    def stop_health_poller(self) -> None:
        if self._poller is None:
            return
        self._stop.set()
        self._poller.join(timeout=5)
        self._poller = None

    # -- probes and stats -----------------------------------------------------

    def healthz(self) -> Tuple[int, Dict]:
        return 200, {"status": "ok"}

    def readyz(self) -> Tuple[int, Dict]:
        """Ready while at least one shard is believed reachable."""
        with self._lock:
            ready = sum(self._healthy)
        if ready:
            return 200, {"status": "ready", "shards_ready": ready}
        return 503, {"status": "no-shards", "shards_ready": 0}

    def stats_document(self) -> Dict:
        now = self._clock()
        with self._lock:
            shards = [
                {
                    "url": url,
                    "healthy": self._healthy[index],
                    "detail": self._health_detail[index],
                    "cooling_seconds": round(
                        max(0.0, self._cooldown_until[index] - now), 3
                    ),
                }
                for index, url in enumerate(self.config.shards)
            ]
            return {
                "shards": shards,
                "router": {
                    "forwards": self.perf.router_forwards,
                    "retries": self.perf.router_retries,
                    "failovers": self.perf.router_failovers,
                    "hedges_sent": self.perf.hedges_sent,
                    "hedges_won": self.perf.hedges_won,
                    "shed_requests": self.perf.shed_requests,
                    "deadline_expired_rejects": (
                        self.perf.deadline_expired_rejects
                    ),
                    "latency_samples": len(self._latencies),
                },
            }


# -- HTTP front end -----------------------------------------------------------


class _RouterHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto one shared :class:`ShardRouter`."""

    router: ShardRouter  # injected by serve_router()
    quiet = True

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send(self, status: int, document: Dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        retry_after = document.get("retry_after")
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        if self.path == "/healthz":
            self._send(*self.router.healthz())
        elif self.path == "/readyz":
            self._send(*self.router.readyz())
        elif self.path == "/stats":
            self._send(200, self.router.stats_document())
        else:
            self._send(404, {"status": "not-found", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        if self.path != "/analyze":
            self._send(404, {"status": "not-found", "path": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            document = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError) as error:
            self._send(400, error_response("", ModelError(f"bad JSON: {error}")))
            return
        if isinstance(document, dict) and "requests" in document:
            self._send(*self.router.forward_batch(document["requests"]))
        else:
            self._send(*self.router.forward(document))


def serve_router(
    config: RouterConfig, router: Optional[ShardRouter] = None
) -> int:
    """Run the router until interrupted; returns the process exit code.

    Prints ``repro-router: listening on http://HOST:PORT`` once bound so
    wrappers (the chaos harness) can scrape the address.
    """
    router = router or ShardRouter(config)
    router.probe_all()
    router.start_health_poller()
    handler = type("BoundRouterHandler", (_RouterHandler,), {"router": router})
    server = ThreadingHTTPServer((config.host, config.port), handler)
    server.daemon_threads = True

    def _on_signal(signum, _frame) -> None:
        name = signal.Signals(signum).name
        print(
            f"repro-router: {name} received, shutting down...",
            file=sys.stderr,
            flush=True,
        )
        # Shut down off the signal handler's thread: shutdown() deadlocks
        # when called from within serve_forever's own thread context.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    host, port = server.server_address[:2]
    print(f"repro-router: listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
        # The poller thread is a daemon and its join is bounded, so a
        # hung health probe cannot wedge the drain; the OS reaps it.
        router.stop_health_poller()
        server.server_close()
    print("repro-router: exiting", flush=True)
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-router",
        description="Fingerprint-sharded, health-checked router in front "
        "of several repro.service analysis daemons.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8420,
        help="TCP port (0 = let the OS pick; the chosen port is printed)",
    )
    parser.add_argument(
        "--shard",
        action="append",
        default=[],
        metavar="URL",
        help="backing daemon base URL (repeat once per shard)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="period of the background /readyz health poller",
    )
    parser.add_argument(
        "--forward-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt transport timeout (default: wait forever); a "
        "slow shard surfaces as a timeout and triggers failover",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="extra attempts an idempotent request may spend on other shards",
    )
    parser.add_argument(
        "--backoff-base",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="first retry backoff; doubles per retry up to --backoff-cap",
    )
    parser.add_argument(
        "--backoff-cap",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="retry backoff ceiling",
    )
    parser.add_argument(
        "--deadline-safety-ms",
        type=float,
        default=25.0,
        metavar="MS",
        help="safety margin subtracted from a request's remaining "
        "deadline_ms before forwarding",
    )
    parser.add_argument(
        "--no-hedge",
        action="store_true",
        help="disable the single hedged duplicate of slow idempotent "
        "first attempts",
    )
    parser.add_argument(
        "--hedge-min-samples",
        type=int,
        default=16,
        metavar="N",
        help="recorded forward latencies required before hedging engages",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        config = RouterConfig(
            shards=tuple(args.shard),
            host=args.host,
            port=args.port,
            health_interval_seconds=args.health_interval,
            forward_timeout=args.forward_timeout,
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            backoff_cap=args.backoff_cap,
            deadline_safety_ms=args.deadline_safety_ms,
            hedge_enabled=not args.no_hedge,
            hedge_min_samples=args.hedge_min_samples,
        )
    except AnalysisError as error:
        print(f"repro-router: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    return serve_router(config)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
