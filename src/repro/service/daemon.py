"""The batch-analysis service core and its HTTP front end.

:class:`AnalysisService` is the HTTP-free heart — ``handle(document)``
implements validation, admission control, the circuit breaker, per-request
budgets and quarantine bookkeeping, and is directly unit-testable.  The
thin :func:`serve` wrapper exposes it over a stdlib
``ThreadingHTTPServer``:

===========  ======  ====================================================
endpoint     method  behaviour
===========  ======  ====================================================
/analyze     POST    one request object, or ``{"requests": [...]}`` for a
                     batch (processed sequentially per connection;
                     concurrency comes from concurrent connections)
/healthz     GET     liveness — 200 as long as the process serves
/readyz      GET     readiness — 503 while draining or the breaker is open
/stats       GET     counters, breaker state, quarantine log and the
                     aggregated :class:`~repro.perf.PerfCounters`
===========  ======  ====================================================

Status mapping: 200 processed (including typed ``budget-exceeded`` /
``cancelled`` outcomes — aborts are results, not transport failures), 400
invalid request, 404 unknown path, 429 admission queue full (with
``Retry-After``), 500 worker crash or internal analysis error, 503
draining or breaker open, 504 watchdog kill.

SIGTERM/SIGINT starts a graceful drain: readiness flips to 503 so load
balancers stop sending work, in-flight requests get
``drain_grace_seconds`` to finish, stragglers are quarantined (logged
with their request ids), and the process exits 0.
"""

from __future__ import annotations

import itertools
import json
import math
import random
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.ladder import SOUND_DEGRADED, TIER_COARSE, coarse_bound
from repro.budget import Budget
from repro.errors import (
    AnalysisAborted,
    AnalysisError,
    ChunkTimeoutError,
    ModelError,
    WorkerCrashError,
)
from repro.perf import PerfCounters
from repro.resultcache import (
    ResultCache,
    WarmSeedStore,
    request_fingerprint,
    seed_payload_from_response,
)
from repro.service.breaker import CircuitBreaker, OPEN
from repro.service.pool import AnalysisPool
from repro.service.protocol import (
    AnalysisRequest,
    abort_response,
    degraded_response,
    error_response,
    parse_request,
    shed_response,
)

#: Extra wait a coalesced request grants the leading computation beyond
#: the leader's own watchdog allowance before giving up.
COALESCE_GRACE = 5.0


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of the daemon, validated eagerly."""

    host: str = "127.0.0.1"
    port: int = 8421
    workers: int = 1
    #: Bounded admission: requests beyond this many in flight are rejected
    #: with 429 instead of queueing unboundedly.
    max_in_flight: int = 4
    #: Budget applied to requests that do not carry their own.
    default_budget: Optional[float] = None
    #: Watchdog allowance for requests with no budget at all.
    default_watchdog: Optional[float] = None
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 5.0
    breaker_probes: int = 1
    #: How long a SIGTERM drain waits for in-flight requests.
    drain_grace_seconds: float = 30.0
    #: Root of the persistent content-addressed result cache
    #: (:mod:`repro.resultcache`); ``None`` disables durable caching.
    cache_dir: Optional[str] = None
    #: LRU entry cap of the result cache (and of the warm-seed store).
    cache_max_entries: int = 4096
    #: Optional byte budget of the result cache (``None`` = unbounded).
    cache_max_bytes: Optional[int] = None
    #: Coalesce identical concurrent requests onto one computation.
    coalesce: bool = True
    #: Safety margin (milliseconds) this hop subtracts from a request's
    #: remaining ``deadline_ms`` before handing it on, covering its own
    #: serialisation and scheduling overhead.
    deadline_safety_ms: float = 25.0
    #: Floor for the deadline-derived analysis budget: a request admitted
    #: with almost no deadline left still gets this many seconds (the
    #: alternative — a zero budget — could not even return its typed
    #: abort).  Requests whose deadline already expired are shed instead.
    min_budget_seconds: float = 0.05
    #: In-flight count at which brownout mode engages (cache hits and the
    #: coarse ladder tier only; the pool is left to drain).  ``None``
    #: defaults to ``max_in_flight`` — the last admission slot browns out.
    brownout_in_flight: Optional[int] = None
    #: Admission cap for ``"batch"``-priority requests; under load they
    #: are shed before any ``"interactive"`` request is.  ``None``
    #: defaults to half of ``max_in_flight`` (at least 1).
    batch_max_in_flight: Optional[int] = None
    #: Base of the jittered, load-derived ``Retry-After`` on 429 replies.
    retry_after_base: float = 1.0

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise AnalysisError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise AnalysisError(f"workers must be >= 1, got {self.workers}")
        if self.max_in_flight < 1:
            raise AnalysisError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        for name in ("default_budget", "default_watchdog"):
            value = getattr(self, name)
            if value is not None and not (
                isinstance(value, (int, float))
                and math.isfinite(value)
                and value > 0
            ):
                raise AnalysisError(
                    f"{name} must be a positive number of seconds (or "
                    f"None), got {value!r}"
                )
        if self.breaker_threshold < 1:
            raise AnalysisError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_seconds <= 0:
            raise AnalysisError(
                f"breaker_reset_seconds must be positive, "
                f"got {self.breaker_reset_seconds}"
            )
        if self.drain_grace_seconds < 0:
            raise AnalysisError(
                f"drain_grace_seconds must be non-negative, "
                f"got {self.drain_grace_seconds}"
            )
        if self.cache_max_entries < 1:
            raise AnalysisError(
                f"cache_max_entries must be >= 1, got {self.cache_max_entries}"
            )
        if self.cache_max_bytes is not None and self.cache_max_bytes < 1:
            raise AnalysisError(
                f"cache_max_bytes must be >= 1 (or None for unbounded), "
                f"got {self.cache_max_bytes}"
            )
        if self.deadline_safety_ms < 0:
            raise AnalysisError(
                f"deadline_safety_ms must be non-negative, "
                f"got {self.deadline_safety_ms}"
            )
        if self.min_budget_seconds <= 0:
            raise AnalysisError(
                f"min_budget_seconds must be positive, "
                f"got {self.min_budget_seconds}"
            )
        if self.brownout_in_flight is not None and self.brownout_in_flight < 1:
            raise AnalysisError(
                f"brownout_in_flight must be >= 1 (or None for the "
                f"default), got {self.brownout_in_flight}"
            )
        if (
            self.batch_max_in_flight is not None
            and self.batch_max_in_flight < 1
        ):
            raise AnalysisError(
                f"batch_max_in_flight must be >= 1 (or None for the "
                f"default), got {self.batch_max_in_flight}"
            )
        if self.retry_after_base <= 0:
            raise AnalysisError(
                f"retry_after_base must be positive, "
                f"got {self.retry_after_base}"
            )

    @property
    def brownout_threshold(self) -> int:
        """Effective in-flight count at which brownout engages."""
        if self.brownout_in_flight is not None:
            return self.brownout_in_flight
        return self.max_in_flight

    @property
    def batch_cap(self) -> int:
        """Effective admission cap of ``"batch"``-priority requests."""
        if self.batch_max_in_flight is not None:
            return self.batch_max_in_flight
        return max(1, self.max_in_flight // 2)


@dataclass
class ServiceStats:
    """Request-level counters exposed through ``/stats``."""

    accepted: int = 0
    completed: int = 0
    budget_aborted: int = 0
    cancelled: int = 0
    analysis_errors: int = 0
    validation_errors: int = 0
    rejected_busy: int = 0
    rejected_breaker: int = 0
    rejected_draining: int = 0
    worker_crashes: int = 0
    watchdog_kills: int = 0
    #: Requests shed because their propagated deadline expired on arrival.
    shed_expired: int = 0
    #: ``batch``-priority requests shed by the overload policy.
    shed_overload: int = 0
    #: 200 answers produced by a degraded ladder tier (pool or brownout).
    degraded: int = 0
    #: Degraded answers served by the daemon-side brownout coarse tier.
    brownout_served: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _Flight:
    """One in-flight computation identical concurrent requests share."""

    __slots__ = ("done", "outcome")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.outcome: Optional[Tuple[int, Dict]] = None


class AnalysisService:
    """HTTP-agnostic service core: validation, admission, cache, breaker.

    The request path is layered so every tier degrades independently:

    1. **Durable cache** — deterministic requests are fingerprinted
       (:func:`repro.resultcache.request_fingerprint`) and served from
       the persistent :class:`~repro.resultcache.ResultCache` when
       possible.  Hits bypass the breaker entirely: cached results stay
       available even while the worker pool is tripped.
    2. **Coalescing** — N identical concurrent requests run *one*
       analysis; the others wait on the leader's flight and share its
       outcome (including failures and budget aborts).
    3. **Pool** — the leader runs through the circuit breaker and worker
       pool as before.  Only completed ``"ok"`` results are written back
       to the cache and the warm-seed store; aborted partials never are.
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        pool: Optional[AnalysisPool] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config
        #: Monotonic time source for deadline accounting; injectable so
        #: tests (and the chaos deadline-storm scenario) drive expiry
        #: deterministically.
        self._clock = clock
        #: Jitter source of the load-derived ``Retry-After``; injectable
        #: for deterministic tests.
        self._rng = rng or random.Random()
        self.pool = pool or AnalysisPool(
            workers=config.workers, default_watchdog=config.default_watchdog
        )
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            reset_seconds=config.breaker_reset_seconds,
            half_open_probes=config.breaker_probes,
        )
        self.stats = ServiceStats()
        self.perf = PerfCounters()
        self.cache: Optional[ResultCache] = None
        self.seeds: Optional[WarmSeedStore] = None
        if config.cache_dir is not None:
            root = Path(config.cache_dir)
            self.cache = ResultCache(
                root,
                max_entries=config.cache_max_entries,
                max_bytes=config.cache_max_bytes,
                perf=self.perf,
            )
            self.seeds = WarmSeedStore(
                root / "seeds",
                max_entries=config.cache_max_entries,
                perf=self.perf,
            )
        self._lock = threading.Lock()
        self._tokens = itertools.count()
        self._active: Dict[int, str] = {}
        self._flights: Dict[str, _Flight] = {}
        self._draining = threading.Event()
        #: Requests that could not be completed normally: budget aborts,
        #: watchdog kills and drain stragglers, with their reasons.
        self.quarantined: List[Dict[str, str]] = []

    # -- request handling ----------------------------------------------------

    def _retry_after(self, load: float) -> float:
        """Jittered, load-derived Retry-After seconds (call under lock).

        Scales with the admission queue's fill ratio so a saturated
        daemon pushes clients further away, and jitters uniformly over
        [0.5, 1.5)x so synchronized clients do not stampede back in one
        wave.  Deterministic in tests via the injected ``rng``.
        """
        base = self.config.retry_after_base
        return round(base * (0.5 + load) * (0.5 + self._rng.random()), 3)

    def handle(self, document) -> Tuple[int, Dict]:
        """Process one raw request document; returns (HTTP status, body).

        Order of the admission ladder (each step is a typed, counted
        outcome — nothing is dropped silently):

        1. draining -> 503
        2. validation -> 400
        3. deadline expired on arrival -> 504 (shed before the pool)
        4. batch-priority overload shed -> 429 (lowest class first)
        5. admission queue full -> 429
        6. admitted: deadline-derived budget, optional brownout, pool
        """
        arrival = self._clock()
        if self._draining.is_set():
            with self._lock:
                self.stats.rejected_draining += 1
            return 503, {
                "status": "draining",
                "message": "service is shutting down; retry elsewhere",
            }
        try:
            request = parse_request(document)
        except (ModelError, AnalysisError) as error:
            with self._lock:
                self.stats.validation_errors += 1
            return 400, error_response(
                document.get("id", "") if isinstance(document, dict) else "",
                error,
            )
        effective = dict(document)
        if (
            request.budget_seconds is None
            and self.config.default_budget is not None
        ):
            effective["budget_seconds"] = self.config.default_budget
        safety = self.config.deadline_safety_ms / 1000.0
        if request.deadline_ms is not None:
            # This hop's elapsed time plus the safety margin comes off the
            # caller's remaining deadline; an already-expired request is
            # shed here, before it can touch the admission queue or pool.
            remaining = (
                request.deadline_ms / 1000.0
                - (self._clock() - arrival)
                - safety
            )
            if remaining <= 0:
                with self._lock:
                    self.stats.shed_expired += 1
                    self.perf.shed_requests += 1
                    self.perf.deadline_expired_rejects += 1
                return 504, shed_response(
                    request.request_id,
                    "deadline-expired",
                    f"deadline_ms={request.deadline_ms:g} already expired "
                    f"on arrival (safety margin "
                    f"{self.config.deadline_safety_ms:g}ms)",
                )
            # Near-zero remainders are clamped to the minimum budget: an
            # admitted request must at least be able to return its typed
            # abort.  The caller's own budget, if tighter, still wins.
            deadline_budget = max(remaining, self.config.min_budget_seconds)
            current = effective.get("budget_seconds")
            effective["budget_seconds"] = (
                deadline_budget
                if current is None
                else min(current, deadline_budget)
            )
            effective["deadline_ms"] = remaining * 1000.0
        with self._lock:
            in_flight = len(self._active)
            if (
                request.priority == "batch"
                and in_flight >= self.config.batch_cap
            ):
                self.stats.shed_overload += 1
                self.perf.shed_requests += 1
                return 429, shed_response(
                    request.request_id,
                    "overload-shed",
                    f"batch-priority admission cap reached "
                    f"({self.config.batch_cap} in flight); "
                    f"interactive requests are still admitted",
                    retry_after=self._retry_after(
                        in_flight / self.config.max_in_flight
                    ),
                )
            if in_flight >= self.config.max_in_flight:
                self.stats.rejected_busy += 1
                return 429, {
                    "status": "busy",
                    "id": request.request_id,
                    "message": (
                        f"admission queue full "
                        f"({self.config.max_in_flight} in flight)"
                    ),
                    "retry_after": self._retry_after(
                        in_flight / self.config.max_in_flight
                    ),
                }
            token = next(self._tokens)
            self._active[token] = request.request_id
            self.stats.accepted += 1
            # Brownout only applies to requests that accept degraded
            # answers (explicit ``degrade`` or a propagated deadline);
            # everything else keeps the exact pre-pressure semantics,
            # including the 503 a tripped breaker would return.
            degradable = (
                request.degrade
                if request.degrade is not None
                else request.deadline_ms is not None
            )
            brownout = (
                request.inject is None
                and degradable
                and (
                    len(self._active) >= self.config.brownout_threshold
                    or self.breaker.state == OPEN
                )
            )
        try:
            return self._execute(request, effective, brownout=brownout)
        finally:
            with self._lock:
                self._active.pop(token, None)

    def _execute(
        self,
        request: AnalysisRequest,
        document: Dict,
        brownout: bool = False,
    ) -> Tuple[int, Dict]:
        """Cache, coalesce and run one admitted request."""
        request_id = request.request_id
        fingerprint = None
        if request.inject is None and (
            self.cache is not None or self.config.coalesce
        ):
            # Deterministic requests only: the test-only inject faults are
            # the one nondeterministic input and must never share work.
            fingerprint = request_fingerprint(
                request.taskset, request.platform, request.config
            )
        if fingerprint is not None and self.cache is not None:
            payload = self.cache.get(fingerprint)
            if payload is not None:
                # Served without touching the breaker: cached results stay
                # available even while the worker pool is tripped open.
                with self._lock:
                    self.stats.completed += 1
                return 200, dict(payload, id=request_id, cache="hit")
        if brownout:
            # Overload (queue nearly full or breaker open): answer from
            # the coarse ladder tier on this thread instead of queueing
            # on the pool — cheap, sound, typed.  Cache hits above still
            # serve exact results; inject faults never get here.
            return self._brownout(request, document)
        flight: Optional[_Flight] = None
        if fingerprint is not None and self.config.coalesce:
            with self._lock:
                flight = self._flights.get(fingerprint)
                if flight is not None:
                    leader_flight = None
                else:
                    leader_flight = self._flights[fingerprint] = _Flight()
            if leader_flight is None:
                return self._await_flight(request_id, document, flight)
            flight = leader_flight
        if (
            fingerprint is not None
            and self.seeds is not None
            and request.config.warm_start
        ):
            seed = self.seeds.get(fingerprint)
            if seed is not None:
                document = dict(document, warm_seed=seed)
        status = 500
        body: Dict = error_response(
            request_id,
            WorkerCrashError("computation died before producing a response"),
        )
        try:
            status, body = self._run_pool(request_id, document)
            return status, body
        finally:
            if flight is not None:
                with self._lock:
                    self._flights.pop(fingerprint, None)
                flight.outcome = (status, body)
                flight.done.set()
            if (
                fingerprint is not None
                and status == 200
                and body.get("status") == "ok"
                and "degraded" not in body
            ):
                # Degraded bodies never enter the stores: the fingerprint
                # names the *exact* result, and a looser-but-sound bound
                # must not be replayed as it once the pressure is gone.
                # Only completed results are durable; the store's own
                # validator additionally refuses anything else, so aborted
                # partials can never poison the cache.
                if self.cache is not None:
                    payload = {
                        key: value
                        for key, value in body.items()
                        if key not in ("id", "cache")
                    }
                    self.cache.put(fingerprint, payload)
                if self.seeds is not None:
                    seed = seed_payload_from_response(request.taskset, body)
                    if seed is not None:
                        self.seeds.put(fingerprint, seed)

    def _brownout(
        self, request: AnalysisRequest, document: Dict
    ) -> Tuple[int, Dict]:
        """Serve one admitted request from the coarse tier, pool-free.

        Brownout mode answers on the handler thread with the ladder's
        cheapest rung (one inner fixed point per task) instead of queueing
        on a saturated or breaker-tripped pool.  The answer is typed: a
        ``degraded`` marker naming the coarse tier plus ``brownout: true``
        so clients and the chaos harness can tell it from a pool answer.
        """
        request_id = request.request_id
        local = PerfCounters()
        budget: Optional[Budget] = None
        budget_seconds = document.get("budget_seconds")
        max_iterations = document.get("max_iterations")
        if budget_seconds is not None or max_iterations is not None:
            budget = Budget(
                wall_seconds=budget_seconds,
                max_iterations=max_iterations,
                clock=self._clock,
            )
        try:
            result = coarse_bound(
                request.taskset,
                request.platform,
                request.config,
                perf=local,
                budget=budget,
            )
        except AnalysisAborted as abort:
            body = abort_response(request_id, abort)
            body["degraded"] = {
                "tier": None,
                "soundness": "unknown",
                "tiers_tried": [TIER_COARSE],
            }
            body["brownout"] = True
            with self._lock:
                self.perf.merge(local)
                self.perf.ladder_tier_runs += 1
                self.stats.budget_aborted += 1
            self._quarantine(request_id, "budget-exceeded")
            return 200, body
        except Exception as error:  # noqa: BLE001 — typed 500, never a hang
            with self._lock:
                self.perf.merge(local)
                self.stats.analysis_errors += 1
            return 500, error_response(request_id, error)
        body = degraded_response(
            request_id, result, TIER_COARSE, SOUND_DEGRADED, (TIER_COARSE,)
        )
        body["brownout"] = True
        with self._lock:
            self.perf.merge(local)
            self.perf.ladder_tier_runs += 1
            self.perf.degraded_responses += 1
            self.stats.completed += 1
            self.stats.degraded += 1
            self.stats.brownout_served += 1
        return 200, body

    def _await_flight(
        self, request_id: str, document: Dict, flight: _Flight
    ) -> Tuple[int, Dict]:
        """Share the outcome of an identical in-flight computation."""
        allowance = self.pool.allowance_for(document.get("budget_seconds"))
        timeout = None if allowance is None else allowance + COALESCE_GRACE
        if not flight.done.wait(timeout):
            with self._lock:
                self.stats.analysis_errors += 1
            return 500, error_response(
                request_id,
                ChunkTimeoutError(
                    "coalesced request timed out waiting for the identical "
                    "in-flight computation"
                ),
            )
        status, shared = flight.outcome
        body = dict(shared, id=request_id, cache="coalesced")
        outcome = body.get("status")
        with self._lock:
            self.perf.coalesced_requests += 1
            if outcome == "ok":
                self.stats.completed += 1
            elif outcome == "budget-exceeded":
                self.stats.budget_aborted += 1
            elif outcome == "cancelled":
                self.stats.cancelled += 1
            elif outcome == "breaker-open":
                self.stats.rejected_breaker += 1
            else:
                self.stats.analysis_errors += 1
        if outcome in ("budget-exceeded", "cancelled"):
            self._quarantine(request_id, outcome)
        return status, body

    def _run_pool(self, request_id: str, document: Dict) -> Tuple[int, Dict]:
        """Run one leading request through the breaker and pool."""
        if not self.breaker.allow():
            with self._lock:
                self.stats.rejected_breaker += 1
                retry_after = round(
                    self.breaker.reset_seconds * (0.5 + self._rng.random()), 3
                )
            return 503, {
                "status": "breaker-open",
                "id": request_id,
                "message": (
                    "worker pool circuit breaker is open after repeated "
                    "crashes; retry after the cool-down"
                ),
                "retry_after": retry_after,
            }
        try:
            response, perf = self.pool.run(document)
        except WorkerCrashError as error:
            self.breaker.record_failure()
            with self._lock:
                self.stats.worker_crashes += 1
            return 500, error_response(request_id, error)
        except ChunkTimeoutError as error:
            self.breaker.record_failure()
            with self._lock:
                self.stats.watchdog_kills += 1
            self._quarantine(request_id, "watchdog-kill")
            return 504, error_response(request_id, error)
        self.breaker.record_success()
        with self._lock:
            self.perf.merge(perf)
            status = response.get("status")
            if status == "ok":
                self.stats.completed += 1
                if "degraded" in response:
                    self.stats.degraded += 1
            elif status == "budget-exceeded":
                self.stats.budget_aborted += 1
            elif status == "cancelled":
                self.stats.cancelled += 1
            else:
                self.stats.analysis_errors += 1
        if status in ("budget-exceeded", "cancelled"):
            self._quarantine(request_id, status)
            return 200, response
        if status == "error":
            return 500, response
        return 200, response

    def handle_batch(self, documents) -> Tuple[int, Dict]:
        """Process ``{"requests": [...]}`` sequentially; always 200."""
        if not isinstance(documents, list):
            return 400, error_response(
                "", ModelError("'requests' must be an array")
            )
        responses = []
        for document in documents:
            _status, body = self.handle(document)
            responses.append(body)
        return 200, {"responses": responses}

    def _quarantine(self, request_id: str, reason: str) -> None:
        entry = {"id": request_id, "reason": reason}
        with self._lock:
            self.quarantined.append(entry)
        print(
            f"repro-service: quarantined request {request_id!r} ({reason})",
            file=sys.stderr,
            flush=True,
        )

    # -- probes and stats ----------------------------------------------------

    def healthz(self) -> Tuple[int, Dict]:
        """Liveness: 200 while the process can answer at all."""
        return 200, {"status": "ok"}

    def readyz(self) -> Tuple[int, Dict]:
        """Readiness: 503 while draining or the breaker is open."""
        if self._draining.is_set():
            return 503, {"status": "draining"}
        if self.breaker.state == OPEN:
            return 503, {"status": "breaker-open"}
        return 200, {"status": "ready"}

    def stats_document(self) -> Dict:
        """The ``/stats`` body: counters, breaker, cache, quarantine, perf."""
        with self._lock:
            perf = {
                name: getattr(self.perf, name)
                for name in PerfCounters._INT_FIELDS
            }
            cache = {
                "enabled": self.cache is not None,
                "coalesce": self.config.coalesce,
                "coalescing_flights": len(self._flights),
            }
            if self.cache is not None:
                cache.update(self.cache.stats())
            if self.seeds is not None:
                cache["seeds"] = self.seeds.stats()
            return {
                "requests": self.stats.to_dict(),
                "in_flight": len(self._active),
                "draining": self._draining.is_set(),
                "overload": {
                    "max_in_flight": self.config.max_in_flight,
                    "brownout_threshold": self.config.brownout_threshold,
                    "batch_cap": self.config.batch_cap,
                    "deadline_safety_ms": self.config.deadline_safety_ms,
                    "min_budget_seconds": self.config.min_budget_seconds,
                },
                "breaker": {
                    "state": self.breaker.state,
                    "trips": self.breaker.trips,
                },
                "cache": cache,
                "quarantined": list(self.quarantined),
                "perf": perf,
            }

    # -- drain ----------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting work; readiness flips to 503 immediately."""
        self._draining.set()

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Wait for in-flight requests; quarantine stragglers.

        Returns ``True`` when everything finished within the grace period.
        """
        self.begin_drain()
        grace = (
            self.config.drain_grace_seconds
            if grace_seconds is None
            else grace_seconds
        )
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            with self._lock:
                if not self._active:
                    return True
            time.sleep(0.05)
        with self._lock:
            stragglers = list(self._active.values())
        for request_id in stragglers:
            self._quarantine(request_id, "drain-timeout")
        return not stragglers

    def close(self) -> None:
        """Release the worker pool."""
        self.pool.close()


# -- HTTP front end -----------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto one shared :class:`AnalysisService`."""

    service: AnalysisService  # injected by serve()
    quiet = True

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send(self, status: int, document: Dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        retry_after = document.get("retry_after")
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        if self.path == "/healthz":
            self._send(*self.service.healthz())
        elif self.path == "/readyz":
            self._send(*self.service.readyz())
        elif self.path == "/stats":
            self._send(200, self.service.stats_document())
        else:
            self._send(404, {"status": "not-found", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        if self.path != "/analyze":
            self._send(404, {"status": "not-found", "path": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            document = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError) as error:
            self._send(400, error_response("", ModelError(f"bad JSON: {error}")))
            return
        if isinstance(document, dict) and "requests" not in document:
            # Transport-level deadline/priority: proxies that cannot edit
            # the body (or callers fronted by one) may send the end-to-end
            # deadline and priority class as headers; body fields win.
            deadline = self.headers.get("X-Deadline-Ms")
            if deadline is not None and "deadline_ms" not in document:
                try:
                    document["deadline_ms"] = float(deadline)
                except ValueError:
                    self._send(
                        400,
                        error_response(
                            document.get("id", ""),
                            AnalysisError(
                                f"X-Deadline-Ms must be a number of "
                                f"milliseconds, got {deadline!r}"
                            ),
                        ),
                    )
                    return
            priority = self.headers.get("X-Priority")
            if priority is not None and "priority" not in document:
                document["priority"] = priority
        if isinstance(document, dict) and "requests" in document:
            self._send(*self.service.handle_batch(document["requests"]))
        else:
            self._send(*self.service.handle(document))


def serve(
    config: ServiceConfig = ServiceConfig(),
    service: Optional[AnalysisService] = None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the process exit code.

    Prints ``repro-service: listening on http://HOST:PORT`` once the
    socket is bound (with the real port when ``port=0`` asked the OS to
    pick one), so wrappers can scrape the address.
    """
    service = service or AnalysisService(config)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((config.host, config.port), handler)
    server.daemon_threads = True
    drained = threading.Event()

    def _shutdown() -> None:
        clean = service.drain()
        if not clean:
            print(
                "repro-service: drain grace expired; stragglers quarantined",
                file=sys.stderr,
                flush=True,
            )
        drained.set()
        server.shutdown()

    def _on_signal(signum, _frame) -> None:
        name = signal.Signals(signum).name
        print(
            f"repro-service: {name} received, draining...",
            file=sys.stderr,
            flush=True,
        )
        # Drain off the signal handler's thread: shutdown() would deadlock
        # if called from within serve_forever's own thread context.
        threading.Thread(target=_shutdown, daemon=True).start()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    host, port = server.server_address[:2]
    print(
        f"repro-service: listening on http://{host}:{port}",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
        server.server_close()
        service.close()
    print("repro-service: drained, exiting", flush=True)
    return 0
