"""Circuit breaker guarding the service's worker pool.

Classic three-state breaker (Nygard, *Release It!*):

* **CLOSED** — requests flow; consecutive pool failures are counted and
  ``failure_threshold`` of them trip the breaker.
* **OPEN** — requests are refused outright (the daemon answers 503) so a
  crashing worker pool is not hammered while it respawns; after
  ``reset_seconds`` the breaker lets probes through.
* **HALF_OPEN** — up to ``half_open_probes`` requests are admitted; the
  first success closes the breaker again, any failure re-opens it and
  restarts the cool-down.

The clock is injectable so the OPEN→HALF_OPEN transition is testable
without sleeping.  All transitions happen under one lock: the daemon calls
:meth:`allow` / :meth:`record_success` / :meth:`record_failure` from
concurrent request-handler threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Thread-safe circuit breaker with an injectable clock."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds <= 0:
            raise ValueError(
                f"reset_seconds must be positive, got {reset_seconds}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_issued = 0
        #: Telemetry: how often the breaker tripped (exposed via /stats).
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, re-evaluating the OPEN cool-down first."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def allow(self) -> bool:
        """Whether one request may proceed to the pool right now.

        In HALF_OPEN this *consumes* a probe slot, so callers must follow
        up with :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_issued < self.half_open_probes:
                self._probes_issued += 1
                return True
            return False

    def record_success(self) -> None:
        """Note a pool execution that completed (however it was judged)."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._probes_issued = 0

    def record_failure(self) -> None:
        """Note a pool failure (worker crash or watchdog kill)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_issued = 0
        self.trips += 1

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = HALF_OPEN
            self._probes_issued = 0
