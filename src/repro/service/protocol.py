"""Request/response protocol of the batch-analysis service.

One request analyses one task set::

    {
      "id": "job-17",                      # caller-chosen correlation id
      "taskset": { ... },                  # "repro-taskset" envelope
                                           # (see repro.serialization)
      "config": {"persistence": true},     # optional AnalysisConfig fields
      "budget_seconds": 2.0,               # optional per-request deadline
      "max_iterations": 100000,            # optional iteration ceiling
      "deadline_ms": 1500,                 # optional end-to-end deadline:
                                           # remaining milliseconds the
                                           # caller will still wait
      "priority": "interactive",           # "interactive" (default) or
                                           # "batch"; batch sheds first
      "degrade": true                      # opt in/out of the degradation
                                           # ladder (default: on iff a
                                           # deadline_ms is present)
    }

Validation maps onto the library's error taxonomy: structurally malformed
documents (bad JSON shape, unknown format tag, broken task records) raise
:class:`~repro.errors.ModelError`; semantically invalid knobs (negative
budgets, unknown config fields or injection kinds) raise
:class:`~repro.errors.AnalysisError`.  The daemon converts both into
HTTP 400 with a typed body.

Responses always carry ``id``, ``status`` and the protocol ``version``.
``status`` is one of ``"ok"`` (with the WCRT verdict),
``"budget-exceeded"`` / ``"cancelled"`` (with the partial estimates,
iterations spent and elapsed seconds), ``"error"`` (with the error class
and message), or one of the typed shed markers ``"deadline-expired"`` /
``"overload-shed"`` (with ``"shed": true``).  An ``"ok"`` answer produced
by a degraded ladder tier additionally carries a ``"degraded"`` object
naming the tier, its soundness class and the tiers tried — see
:mod:`repro.analysis.ladder` and :func:`degraded_response`.

The test-only ``inject`` field (``"hang"`` spins cooperatively inside the
request's budget; ``"crash"`` kills the worker process) exists so the
recovery paths can be demonstrated end-to-end — see
``scripts/service_smoke.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.config import AnalysisConfig
from repro.crpd.approaches import CrpdApproach
from repro.errors import AnalysisAborted, AnalysisError, Cancelled, ModelError
from repro.model.platform import Platform
from repro.model.task import TaskSet
from repro.persistence.cpro import CproApproach
from repro.resultcache import result_payload
from repro.serialization import (
    FORMAT_VERSION,
    platform_from_dict,
    task_from_dict,
)

#: Version stamped into every response document.
PROTOCOL_VERSION = 1

#: Test-only fault injections a request may carry.
INJECT_KINDS = ("hang", "crash")

#: Priority classes, highest first.  Under overload the daemon sheds the
#: lowest class first at admission.
PRIORITIES = ("interactive", "batch")

_TASKSET_TAG = "repro-taskset"

#: AnalysisConfig fields settable through the wire protocol, with their
#: converters.  Iteration ceilings are deliberately absent: the service's
#: own budget/deadline layer owns resource limits.
_CONFIG_FIELDS = {
    "persistence": bool,
    "persistence_in_low": bool,
    "tdma_slot_alignment": bool,
    "memoization": bool,
    "bitset_kernel": bool,
    "warm_start": bool,
    "crpd_approach": CrpdApproach,
    "cpro_approach": CproApproach,
}


@dataclass(frozen=True)
class AnalysisRequest:
    """One validated analysis request."""

    request_id: str
    taskset: TaskSet
    platform: Platform
    config: AnalysisConfig
    budget_seconds: Optional[float] = None
    max_iterations: Optional[int] = None
    inject: Optional[str] = None
    #: Remaining end-to-end deadline in milliseconds, as seen by the hop
    #: that sent the request (each hop forwards it minus its own elapsed
    #: time and a safety margin).
    deadline_ms: Optional[float] = None
    #: Priority class; ``"batch"`` is shed first under overload.
    priority: str = "interactive"
    #: Explicit degradation-ladder opt in/out; ``None`` = derived
    #: (on iff the request carries a deadline).
    degrade: Optional[bool] = None


def _parse_taskset(document) -> Tuple[TaskSet, Platform]:
    """Parse the embedded ``repro-taskset`` envelope (dict form)."""
    if not isinstance(document, dict):
        raise ModelError(
            f"'taskset' must be a repro-taskset object, "
            f"got {type(document).__name__}"
        )
    if document.get("format") != _TASKSET_TAG:
        raise ModelError(
            f"unexpected taskset format tag {document.get('format')!r}; "
            f"expected {_TASKSET_TAG!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported taskset format version {document.get('version')!r}"
        )
    platform = platform_from_dict(document.get("platform", {}))
    tasks = [task_from_dict(record) for record in document.get("tasks", [])]
    if not tasks:
        raise ModelError("taskset holds no tasks")
    return TaskSet(tasks), platform


def _parse_config(document) -> AnalysisConfig:
    """Build an :class:`AnalysisConfig` from the request's config dict."""
    if document is None:
        return AnalysisConfig()
    if not isinstance(document, dict):
        raise AnalysisError(
            f"'config' must be an object, got {type(document).__name__}"
        )
    kwargs = {}
    for key, value in document.items():
        converter = _CONFIG_FIELDS.get(key)
        if converter is None:
            known = ", ".join(sorted(_CONFIG_FIELDS))
            raise AnalysisError(
                f"unknown analysis config field {key!r}; known: {known}"
            )
        try:
            kwargs[key] = converter(value)
        except ValueError as error:
            raise AnalysisError(
                f"invalid value for config field {key!r}: {error}"
            ) from None
    return AnalysisConfig(**kwargs)


def parse_request(document) -> AnalysisRequest:
    """Validate a raw request document into an :class:`AnalysisRequest`.

    Raises :class:`~repro.errors.ModelError` for structural problems and
    :class:`~repro.errors.AnalysisError` for invalid parameter values, so
    the daemon (and any other front end) can map validation failures onto
    the library's taxonomy without string matching.
    """
    if not isinstance(document, dict):
        raise ModelError(
            f"request must be a JSON object, got {type(document).__name__}"
        )
    request_id = document.get("id", "")
    if not isinstance(request_id, str):
        raise ModelError(f"'id' must be a string, got {request_id!r}")
    if "taskset" not in document:
        raise ModelError("request is missing the 'taskset' envelope")
    taskset, platform = _parse_taskset(document["taskset"])
    config = _parse_config(document.get("config"))
    budget_seconds = document.get("budget_seconds")
    if budget_seconds is not None:
        if not isinstance(budget_seconds, (int, float)) or isinstance(
            budget_seconds, bool
        ) or not budget_seconds > 0:
            raise AnalysisError(
                f"'budget_seconds' must be a positive number, "
                f"got {budget_seconds!r}"
            )
        budget_seconds = float(budget_seconds)
    max_iterations = document.get("max_iterations")
    if max_iterations is not None:
        if not isinstance(max_iterations, int) or isinstance(
            max_iterations, bool
        ) or max_iterations <= 0:
            raise AnalysisError(
                f"'max_iterations' must be a positive integer, "
                f"got {max_iterations!r}"
            )
    inject = document.get("inject")
    if inject is not None and inject not in INJECT_KINDS:
        raise AnalysisError(
            f"unknown inject kind {inject!r}; known: {', '.join(INJECT_KINDS)}"
        )
    deadline_ms = document.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ) or not deadline_ms > 0:
            raise AnalysisError(
                f"'deadline_ms' must be a positive number of milliseconds, "
                f"got {deadline_ms!r}"
            )
        deadline_ms = float(deadline_ms)
    priority = document.get("priority", "interactive")
    if priority not in PRIORITIES:
        raise AnalysisError(
            f"unknown priority {priority!r}; known: {', '.join(PRIORITIES)}"
        )
    degrade = document.get("degrade")
    if degrade is not None and not isinstance(degrade, bool):
        raise AnalysisError(
            f"'degrade' must be a boolean, got {degrade!r}"
        )
    return AnalysisRequest(
        request_id=request_id,
        taskset=taskset,
        platform=platform,
        config=config,
        budget_seconds=budget_seconds,
        max_iterations=max_iterations,
        inject=inject,
        deadline_ms=deadline_ms,
        priority=priority,
        degrade=degrade,
    )


def ok_response(request_id: str, result) -> Dict:
    """Success response carrying the WCRT verdict.

    Built on :func:`repro.resultcache.result_payload` so the body (minus
    the caller-chosen ``id``) is byte-identical to what the persistent
    result cache stores — a cache hit and a cold compute therefore
    differ only in ``id`` and the ``cache`` marker.
    """
    return dict(result_payload(result), id=request_id)


def degraded_response(
    request_id: str,
    result,
    tier: str,
    soundness: str,
    tiers_tried,
) -> Dict:
    """An ``"ok"`` answer produced by a degraded ladder tier.

    The body is the normal :func:`ok_response` plus a typed ``degraded``
    marker; the marker keeps degraded answers out of the result cache and
    the warm-seed store (their bounds are sound but not the exact
    fingerprinted result) and lets clients and the chaos harness tell a
    weaker-but-sound verdict from an exact one.
    """
    body = ok_response(request_id, result)
    body["degraded"] = {
        "tier": tier,
        "soundness": soundness,
        "tiers_tried": list(tiers_tried),
    }
    return body


def shed_response(
    request_id: str,
    status: str,
    message: str,
    retry_after: Optional[float] = None,
) -> Dict:
    """Typed load-shedding response (``deadline-expired`` / ``overload-shed``).

    ``"shed": true`` is the machine-readable marker the overload-storm
    chaos scenario asserts on: no request may be dropped without it.
    """
    body = {
        "version": PROTOCOL_VERSION,
        "id": request_id,
        "status": status,
        "shed": True,
        "message": message,
    }
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body


def abort_response(request_id: str, abort: AnalysisAborted) -> Dict:
    """Typed partial result of a budget-exceeded or cancelled analysis."""
    partial = abort.partial
    return {
        "version": PROTOCOL_VERSION,
        "id": request_id,
        "status": "cancelled" if isinstance(abort, Cancelled) else "budget-exceeded",
        "message": str(abort),
        "iterations": abort.iterations,
        "elapsed_seconds": abort.elapsed,
        "partial_response_times": (
            {task.name: bound for task, bound in partial.response_times.items()}
            if partial is not None
            else {}
        ),
    }


def error_response(request_id: str, error: Exception) -> Dict:
    """Failure response naming the error class for typed client handling."""
    return {
        "version": PROTOCOL_VERSION,
        "id": request_id,
        "status": "error",
        "error": type(error).__name__,
        "message": str(error),
    }
