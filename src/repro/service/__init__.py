"""Long-running batch-analysis service (``python -m repro.service``).

A small, dependency-free daemon that accepts JSON analysis requests over
HTTP, executes them in a supervised worker pool with per-request deadline
budgets (see :mod:`repro.budget`), and degrades gracefully under every
failure mode the resilience layer knows about:

* request validation mapped onto the :class:`~repro.errors.ModelError` /
  :class:`~repro.errors.AnalysisError` taxonomy (HTTP 400),
* bounded admission with backpressure (HTTP 429 + ``Retry-After``),
* a circuit breaker around the worker pool that trips on repeated
  :class:`~repro.errors.WorkerCrashError` and recovers through half-open
  probes (HTTP 503 while open),
* ``/healthz`` / ``/readyz`` / ``/stats`` endpoints wired to
  :class:`~repro.perf.PerfCounters`,
* SIGTERM graceful drain that finishes or quarantines in-flight requests
  before exiting 0,
* end-to-end deadline propagation (``deadline_ms`` in the body or the
  ``X-Deadline-Ms`` header): each hop subtracts its elapsed time plus a
  safety margin, expired requests are shed with a typed 504 before they
  touch the pool, and admitted ones run under a deadline-derived budget,
* a graceful-degradation ladder (:mod:`repro.analysis.ladder`) behind
  ``degrade``/``deadline_ms``: exact -> baseline -> coarse, each tier on
  a slice of the request budget, plus a daemon-side brownout mode that
  answers from the coarse tier when the queue or breaker indicates
  overload, and priority classes (``interactive``/``batch``) shed
  lowest-first at admission,
* an optional persistent content-addressed result cache with warm-start
  seeds (:mod:`repro.resultcache`) and coalescing of identical
  concurrent requests onto one computation,
* a fingerprint-sharded, health-checked router
  (``python -m repro.service.router``) that spreads requests across
  several daemons and fails idempotent work over to surviving shards.

See ``docs/SERVICE.md`` for the protocol and operational guide,
``docs/CACHE.md`` for the durable cache and ``scripts/chaos_smoke.py``
for the fault-injection proof of the crash-safety claims.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.daemon import AnalysisService, ServiceConfig, serve
from repro.service.pool import AnalysisPool, service_worker
from repro.service.protocol import (
    AnalysisRequest,
    PRIORITIES,
    PROTOCOL_VERSION,
    degraded_response,
    error_response,
    parse_request,
    shed_response,
)
from repro.service.router import RouterConfig, ShardRouter, serve_router

__all__ = [
    "AnalysisPool",
    "AnalysisRequest",
    "AnalysisService",
    "CircuitBreaker",
    "PRIORITIES",
    "PROTOCOL_VERSION",
    "RouterConfig",
    "ServiceConfig",
    "ShardRouter",
    "degraded_response",
    "error_response",
    "parse_request",
    "shed_response",
    "serve",
    "serve_router",
    "service_worker",
]
