"""Long-running batch-analysis service (``python -m repro.service``).

A small, dependency-free daemon that accepts JSON analysis requests over
HTTP, executes them in a supervised worker pool with per-request deadline
budgets (see :mod:`repro.budget`), and degrades gracefully under every
failure mode the resilience layer knows about:

* request validation mapped onto the :class:`~repro.errors.ModelError` /
  :class:`~repro.errors.AnalysisError` taxonomy (HTTP 400),
* bounded admission with backpressure (HTTP 429 + ``Retry-After``),
* a circuit breaker around the worker pool that trips on repeated
  :class:`~repro.errors.WorkerCrashError` and recovers through half-open
  probes (HTTP 503 while open),
* ``/healthz`` / ``/readyz`` / ``/stats`` endpoints wired to
  :class:`~repro.perf.PerfCounters`,
* SIGTERM graceful drain that finishes or quarantines in-flight requests
  before exiting 0.

See ``docs/SERVICE.md`` for the protocol and operational guide.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.daemon import AnalysisService, ServiceConfig, serve
from repro.service.pool import AnalysisPool, service_worker
from repro.service.protocol import (
    AnalysisRequest,
    PROTOCOL_VERSION,
    error_response,
    parse_request,
)

__all__ = [
    "AnalysisPool",
    "AnalysisRequest",
    "AnalysisService",
    "CircuitBreaker",
    "PROTOCOL_VERSION",
    "ServiceConfig",
    "error_response",
    "parse_request",
    "serve",
    "service_worker",
]
