"""Long-running batch-analysis service (``python -m repro.service``).

A small, dependency-free daemon that accepts JSON analysis requests over
HTTP, executes them in a supervised worker pool with per-request deadline
budgets (see :mod:`repro.budget`), and degrades gracefully under every
failure mode the resilience layer knows about:

* request validation mapped onto the :class:`~repro.errors.ModelError` /
  :class:`~repro.errors.AnalysisError` taxonomy (HTTP 400),
* bounded admission with backpressure (HTTP 429 + ``Retry-After``),
* a circuit breaker around the worker pool that trips on repeated
  :class:`~repro.errors.WorkerCrashError` and recovers through half-open
  probes (HTTP 503 while open),
* ``/healthz`` / ``/readyz`` / ``/stats`` endpoints wired to
  :class:`~repro.perf.PerfCounters`,
* SIGTERM graceful drain that finishes or quarantines in-flight requests
  before exiting 0,
* an optional persistent content-addressed result cache with warm-start
  seeds (:mod:`repro.resultcache`) and coalescing of identical
  concurrent requests onto one computation,
* a fingerprint-sharded, health-checked router
  (``python -m repro.service.router``) that spreads requests across
  several daemons and fails idempotent work over to surviving shards.

See ``docs/SERVICE.md`` for the protocol and operational guide,
``docs/CACHE.md`` for the durable cache and ``scripts/chaos_smoke.py``
for the fault-injection proof of the crash-safety claims.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.daemon import AnalysisService, ServiceConfig, serve
from repro.service.pool import AnalysisPool, service_worker
from repro.service.protocol import (
    AnalysisRequest,
    PROTOCOL_VERSION,
    error_response,
    parse_request,
)
from repro.service.router import RouterConfig, ShardRouter, serve_router

__all__ = [
    "AnalysisPool",
    "AnalysisRequest",
    "AnalysisService",
    "CircuitBreaker",
    "PROTOCOL_VERSION",
    "RouterConfig",
    "ServiceConfig",
    "ShardRouter",
    "error_response",
    "parse_request",
    "serve",
    "serve_router",
    "service_worker",
]
