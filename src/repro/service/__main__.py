"""Command-line entry point: ``python -m repro.service``.

Starts the batch-analysis daemon (see :mod:`repro.service` and
``docs/SERVICE.md``)::

    python -m repro.service --port 8421 --workers 2 --default-budget 10

Exit codes follow :mod:`repro.exitcodes`: 0 after a clean drain, 2 for an
invalid command line.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import AnalysisError
from repro.exitcodes import EXIT_USAGE
from repro.service.daemon import ServiceConfig, serve


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Long-running batch analysis daemon for the cache "
        "persistence-aware bus contention analysis.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8421,
        help="TCP port (0 = let the OS pick; the chosen port is printed)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="analysis worker processes"
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=4,
        help="admission bound; further requests get 429 + Retry-After",
    )
    parser.add_argument(
        "--default-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline applied when a request carries none "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--default-watchdog",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog allowance for requests without any budget "
        "(default: wait forever)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive worker crashes that trip the circuit breaker",
    )
    parser.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="cool-down before the tripped breaker admits half-open probes",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a SIGTERM drain waits for in-flight requests",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="root of the persistent content-addressed result cache "
        "(default: no durable caching)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=4096,
        help="LRU entry cap of the result cache",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="byte budget of the result cache (default: unbounded)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable coalescing of identical concurrent requests",
    )
    parser.add_argument(
        "--deadline-safety-ms",
        type=float,
        default=25.0,
        metavar="MS",
        help="safety margin subtracted from a request's remaining "
        "deadline_ms on arrival",
    )
    parser.add_argument(
        "--min-budget",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="floor of the deadline-derived analysis budget for admitted "
        "requests",
    )
    parser.add_argument(
        "--brownout-in-flight",
        type=int,
        default=None,
        metavar="N",
        help="in-flight count at which brownout (cache + coarse tier "
        "only) engages (default: --max-in-flight)",
    )
    parser.add_argument(
        "--batch-max-in-flight",
        type=int,
        default=None,
        metavar="N",
        help="admission cap of batch-priority requests (default: half of "
        "--max-in-flight)",
    )
    parser.add_argument(
        "--retry-after-base",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="base of the jittered, load-derived Retry-After on 429",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_in_flight=args.max_in_flight,
            default_budget=args.default_budget,
            default_watchdog=args.default_watchdog,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_seconds=args.breaker_reset,
            drain_grace_seconds=args.drain_grace,
            cache_dir=args.cache_dir,
            cache_max_entries=args.cache_max_entries,
            cache_max_bytes=args.cache_max_bytes,
            coalesce=not args.no_coalesce,
            deadline_safety_ms=args.deadline_safety_ms,
            min_budget_seconds=args.min_budget,
            brownout_in_flight=args.brownout_in_flight,
            batch_max_in_flight=args.batch_max_in_flight,
            retry_after_base=args.retry_after_base,
        )
    except AnalysisError as error:
        print(f"repro-service: error: {error}", file=sys.stderr)
        return EXIT_USAGE
    return serve(config)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
