"""Per-arbiter total bus-access bounds :math:`BAT^x_i(t)` (Eq. 7-9).

Given the same-core bound :math:`BAS` and the remote-core bounds
:math:`BAO`, the total number of bus accesses that may delay one job of
:math:`\\tau_i` in a window of length ``t`` depends on the bus arbitration
policy:

* **FP** (Eq. 7): all same-or-higher priority accesses from every core,
  plus at most one blocking lower-priority access per access of the task's
  own demand stream.
* **RR** (Eq. 8): each remote core contributes at most ``s`` accesses per
  access of the analysed stream (slot bound) but never more than the demand
  it actually has.
* **TDMA** (Eq. 9): non-work-conserving — each own access may wait for the
  other :math:`(L-1)` cores' ``s`` slots regardless of actual demand.
* **PERFECT**: an idealised contention-free bus; accesses still cost
  ``d_mem`` but never queue.

The trailing ``+1`` of Eq. (7)-(9) accounts for the single in-service,
non-preemptable bus transaction of a same-core lower-priority task; the
paper drops it when the analysed task is the lowest-priority task on its
core (see the discussion below Eq. 12), which :func:`blocking_accesses`
reproduces.
"""

from __future__ import annotations

from repro.businterference.context import AnalysisContext
from repro.businterference.requests import bao, bao_low, bas
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy
from repro.model.task import Task


def blocking_accesses(ctx: AnalysisContext, task_i: Task) -> int:
    """The ``+1`` blocking term of Eq. (7)-(9).

    One access of a same-core lower-priority task may already occupy the
    (non-preemptable) bus when a job of ``task_i`` arrives; if no such task
    exists the term vanishes, as in the paper's worked example (Eq. 12).
    """
    return 1 if ctx.taskset.lp_on_core(task_i, task_i.core) else 0


def _remote_cores(ctx: AnalysisContext, task_i: Task):
    return ctx.remote_cores(task_i.core)


def _bat_fp(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Fixed-priority bus (Eq. 7)."""
    own = bas(ctx, task_i, t)
    higher = sum(bao(ctx, core, task_i, t) for core in _remote_cores(ctx, task_i))
    lower = sum(bao_low(ctx, core, task_i, t) for core in _remote_cores(ctx, task_i))
    return own + higher + blocking_accesses(ctx, task_i) + min(own, lower)


def _bat_rr(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Round-robin bus (Eq. 8)."""
    own = bas(ctx, task_i, t)
    slot_cap = ctx.platform.slot_size * own
    lowest = ctx.taskset.lowest_priority_task
    remote = 0
    for core in _remote_cores(ctx, task_i):
        demand = bao(ctx, core, lowest, t)
        remote += min(demand, slot_cap)
    return own + remote + blocking_accesses(ctx, task_i)


def _bat_tdma(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """TDMA bus (Eq. 9): cycle length ``L * s`` with ``L`` = core count.

    With ``ctx.tdma_slot_alignment`` every access is charged one extra
    slot, making the bound safe against window-interior request arrivals
    (see :class:`repro.analysis.config.AnalysisConfig`).
    """
    own = bas(ctx, task_i, t)
    wait_slots = (ctx.platform.num_cores - 1) * ctx.platform.slot_size
    if ctx.tdma_slot_alignment:
        wait_slots += 1
    return own + wait_slots * own + blocking_accesses(ctx, task_i)


def _bat_perfect(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Idealised contention-free bus: only the task's own core demand."""
    return bas(ctx, task_i, t)


def total_bus_accesses(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Dispatch :math:`BAT^x_i(t)` on the platform's bus policy."""
    policy = ctx.platform.bus_policy
    if policy is BusPolicy.FP:
        return _bat_fp(ctx, task_i, t)
    if policy is BusPolicy.RR:
        return _bat_rr(ctx, task_i, t)
    if policy is BusPolicy.TDMA:
        return _bat_tdma(ctx, task_i, t)
    if policy is BusPolicy.PERFECT:
        return _bat_perfect(ctx, task_i, t)
    raise AnalysisError(f"unsupported bus policy: {policy!r}")
