"""Per-arbiter total bus-access bounds :math:`BAT^x_i(t)` (Eq. 7-9).

Given the same-core bound :math:`BAS` and the remote-core bounds
:math:`BAO`, the total number of bus accesses that may delay one job of
:math:`\\tau_i` in a window of length ``t`` depends on the bus arbitration
policy:

* **FP** (Eq. 7): all same-or-higher priority accesses from every core,
  plus at most one blocking lower-priority access per access of the task's
  own demand stream.
* **RR** (Eq. 8): each remote core contributes at most ``s`` accesses per
  access of the analysed stream (slot bound) but never more than the demand
  it actually has.
* **TDMA** (Eq. 9): non-work-conserving — each own access may wait for the
  other :math:`(L-1)` cores' ``s`` slots regardless of actual demand.
* **PERFECT**: an idealised contention-free bus; accesses still cost
  ``d_mem`` but never queue.

The trailing ``+1`` of Eq. (7)-(9) accounts for the single in-service,
non-preemptable bus transaction of a same-core lower-priority task; the
paper drops it when the analysed task is the lowest-priority task on its
core (see the discussion below Eq. 12), which :func:`blocking_accesses`
reproduces.
"""

from __future__ import annotations

from repro.businterference.context import AnalysisContext
from repro.businterference.requests import (
    _bas_fast_b,
    _bas_fast_p,
    _bas_rows_fast,
    _w_rows_fast,
    _w_sum_fast_b,
    _w_sum_fast_p,
    bao,
    bao_low,
    bas,
)
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy
from repro.model.task import Task
from repro.persistence.demand import FAULTS


def blocking_accesses(ctx: AnalysisContext, task_i: Task) -> int:
    """The ``+1`` blocking term of Eq. (7)-(9).

    One access of a same-core lower-priority task may already occupy the
    (non-preemptable) bus when a job of ``task_i`` arrives; if no such task
    exists the term vanishes, as in the paper's worked example (Eq. 12).
    """
    return 1 if ctx.taskset.lp_on_core(task_i, task_i.core) else 0


def _remote_cores(ctx: AnalysisContext, task_i: Task):
    return ctx.remote_cores(task_i.core)


def _bat_fp(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Fixed-priority bus (Eq. 7)."""
    own = bas(ctx, task_i, t)
    higher = 0
    lower = 0
    for core in _remote_cores(ctx, task_i):
        higher += bao(ctx, core, task_i, t)
        lower += bao_low(ctx, core, task_i, t)
    return own + higher + blocking_accesses(ctx, task_i) + min(own, lower)


def _bat_rr(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Round-robin bus (Eq. 8)."""
    own = bas(ctx, task_i, t)
    slot_cap = ctx.platform.slot_size * own
    lowest = ctx.taskset.lowest_priority_task
    remote = 0
    for core in _remote_cores(ctx, task_i):
        demand = bao(ctx, core, lowest, t)
        remote += min(demand, slot_cap)
    return own + remote + blocking_accesses(ctx, task_i)


def _bat_tdma(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """TDMA bus (Eq. 9): cycle length ``L * s`` with ``L`` = core count.

    With ``ctx.tdma_slot_alignment`` every access is charged one extra
    slot, making the bound safe against window-interior request arrivals
    (see :class:`repro.analysis.config.AnalysisConfig`).
    """
    own = bas(ctx, task_i, t)
    wait_slots = (ctx.platform.num_cores - 1) * ctx.platform.slot_size
    if ctx.tdma_slot_alignment:
        wait_slots += 1
    return own + wait_slots * own + blocking_accesses(ctx, task_i)


def _bat_perfect(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Idealised contention-free bus: only the task's own core demand."""
    return bas(ctx, task_i, t)


# -- fused evaluation (array kernel) ----------------------------------------
#
# The per-term entry points above pay, for every inner fixed-point
# iteration, one function call + one memo probe + one epoch lookup per term
# — seven of each for the FP bus on a quad-core.  During an ascent the
# window length changes every iteration, so those probes are almost all
# misses and the bookkeeping is pure overhead.  (Measured on the fig2
# sweep the epoch-keyed caches hit essentially never on the default path:
# the outer loop revises some estimate between consecutive evaluations of
# the same window.)  The fused path therefore skips memoization entirely
# and evaluates a whole BAT with tight loops over a per-task plan of flat
# integer rows, specialised per persistence flavour so the hot loops carry
# no flag tests.  Flattening only reorders exact integer additions, so
# every value — and thus every analysis result — is bit-identical to the
# per-term path; the memo hit/miss counters stay zero on the fused path
# because no cache exists there (documented in docs/PERFORMANCE.md; the
# per-term memo subsystem remains fully active under
# ``array_kernel=False``).


def _bat_plan(ctx: AnalysisContext, task_i: Task) -> tuple:
    """Static evaluation plan of ``task_i``'s fused BAT.

    ``(md_i, bas_p, bas_b, flat_higher_p, flat_higher_b, flat_lower_p,
    flat_lower_b, per_core_rr_p, per_core_rr_b, blocking)`` — the ``_p``
    members are persistence-aware rows, the ``_b`` members baseline rows;
    unused members are ``()`` for policies that do not read them.  Pure
    function of the task set, the approach enums, the kernel flags and the
    platform, so plans are shared across contexts via ``TaskSet.derived``
    (the backing dict's key, see
    :class:`~repro.businterference.context.AnalysisContext`).  Tunables a
    caller may flip on a live context (persistence flags, TDMA slot
    alignment) are read at evaluation time, never baked into a plan.
    """
    plan = ctx._bat_plans.get(task_i.priority)
    if plan is None:
        policy = ctx.platform.bus_policy
        bas_p, bas_b = _bas_rows_fast(ctx, task_i)
        fh_p: tuple = ()
        fh_b: tuple = ()
        fl_p: tuple = ()
        fl_b: tuple = ()
        rr_p: tuple = ()
        rr_b: tuple = ()
        if policy is BusPolicy.FP:
            # One pass over the whole task set instead of six per-core
            # ``_w_rows_fast`` builds: the flat row tables end up ordered by
            # task-set iteration order rather than grouped per remote core,
            # which only reorders exact integer additions in the fused sums.
            core_i = task_i.core
            pri_i = task_i.priority
            d_mem = ctx.platform.d_mem
            slot_of = ctx._slot_of
            gamma_of = ctx.crpd.gamma
            evictions = ctx.cpro.eviction_count
            higher_p, higher_b, lower_p, lower_b = [], [], [], []
            for task_l in ctx.taskset:
                if task_l.core == core_i:
                    continue
                gamma = gamma_of(task_i, task_l)
                period = int(task_l.period)
                job_demand = task_l.md + gamma
                jdd = job_demand * d_mem
                slot = slot_of[task_l.priority]
                row_p = (
                    slot,
                    gamma,
                    period,
                    task_l.md,
                    task_l.md_r,
                    len(task_l.pcbs),
                    evictions(task_l, task_i),
                    job_demand,
                    jdd,
                )
                row_b = (slot, period, job_demand, jdd)
                if task_l.priority <= pri_i:
                    higher_p.append(row_p)
                    higher_b.append(row_b)
                else:
                    lower_p.append(row_p)
                    lower_b.append(row_b)
            fh_p = tuple(higher_p)
            fh_b = tuple(higher_b)
            fl_p = tuple(lower_p)
            fl_b = tuple(lower_b)
        elif policy is BusPolicy.RR:
            lowest = ctx.taskset.lowest_priority_task
            pairs = tuple(
                _w_rows_fast(ctx, lowest, core, lower=False)
                for core in ctx.remote_cores(task_i.core)
            )
            rr_p = tuple(pair[0] for pair in pairs)
            rr_b = tuple(pair[1] for pair in pairs)
        blocking = blocking_accesses(ctx, task_i)
        plan = (task_i.md, bas_p, bas_b, fh_p, fh_b, fl_p, fl_b, rr_p, rr_b, blocking)
        ctx._bat_plans[task_i.priority] = plan
    return plan


def make_bat(ctx: AnalysisContext, task_i: Task):
    """Specialised ``bat(t)`` evaluator for one task's fixed point.

    Hoists everything a :math:`BAT^x_i(t)` evaluation needs besides the
    window length — the fused plan, the policy dispatch, the persistence
    flavour, ``d_mem`` and the estimate slot list — out of the per-
    iteration path, so the inner fixed point pays one closure call per
    iteration instead of re-dispatching policy and flags every time.
    Tunables are bound at *creation* time: the WCRT loops create a fresh
    evaluator per task, so flag flips between analyses are honoured, and
    callers must pass ``t >= 0`` (the ascent never goes negative; the
    guarded entry point is :func:`total_bus_accesses`).  Falls back to a
    plain :func:`total_bus_accesses` wrapper when the fused kernel is off
    or the policy has no fused form, so values are always identical.
    """
    policy = ctx.platform.bus_policy
    if not ctx.fused or not (
        policy is BusPolicy.FP
        or policy is BusPolicy.RR
        or policy is BusPolicy.TDMA
        or policy is BusPolicy.PERFECT
    ):
        return lambda t: total_bus_accesses(ctx, task_i, t)
    plan = _bat_plan(ctx, task_i)
    persistence = ctx.persistence
    drop_pcb = FAULTS.drop_pcb_term
    md_i = plan[0]
    bas_rows = plan[1] if persistence else plan[2]
    blocking = plan[9]
    est = ctx._est
    d_mem = ctx.platform.d_mem
    if policy is BusPolicy.PERFECT:
        if persistence:
            return lambda t: _bas_fast_p(bas_rows, t, md_i, drop_pcb)
        return lambda t: _bas_fast_b(bas_rows, t, md_i)
    if policy is BusPolicy.TDMA:
        wait_slots = (ctx.platform.num_cores - 1) * ctx.platform.slot_size
        if ctx.tdma_slot_alignment:
            wait_slots += 1
        # own + wait_slots * own == own * (1 + wait_slots), exactly.
        factor = 1 + wait_slots
        if persistence:
            return (
                lambda t: _bas_fast_p(bas_rows, t, md_i, drop_pcb) * factor
                + blocking
            )
        return lambda t: _bas_fast_b(bas_rows, t, md_i) * factor + blocking
    if policy is BusPolicy.FP:
        if persistence:
            higher_rows = plan[3]
            if ctx.persistence_in_low:
                lower_rows = plan[5]

                def bat(t: int) -> int:
                    own = _bas_fast_p(bas_rows, t, md_i, drop_pcb)
                    lower = _w_sum_fast_p(est, lower_rows, t, d_mem, drop_pcb)
                    return (
                        own
                        + _w_sum_fast_p(est, higher_rows, t, d_mem, drop_pcb)
                        + blocking
                        + (own if own < lower else lower)
                    )

                return bat
            lower_rows = plan[6]

            def bat(t: int) -> int:
                own = _bas_fast_p(bas_rows, t, md_i, drop_pcb)
                lower = _w_sum_fast_b(est, lower_rows, t, d_mem)
                return (
                    own
                    + _w_sum_fast_p(est, higher_rows, t, d_mem, drop_pcb)
                    + blocking
                    + (own if own < lower else lower)
                )

            return bat
        higher_rows = plan[4]
        lower_rows = plan[6]

        def bat(t: int) -> int:
            own = _bas_fast_b(bas_rows, t, md_i)
            lower = _w_sum_fast_b(est, lower_rows, t, d_mem)
            return (
                own
                + _w_sum_fast_b(est, higher_rows, t, d_mem)
                + blocking
                + (own if own < lower else lower)
            )

        return bat
    # RR
    slot_size = ctx.platform.slot_size
    if persistence:
        per_core = plan[7]

        def bat(t: int) -> int:
            own = _bas_fast_p(bas_rows, t, md_i, drop_pcb)
            cap = slot_size * own
            remote = 0
            for rows in per_core:
                demand = _w_sum_fast_p(est, rows, t, d_mem, drop_pcb)
                remote += demand if demand < cap else cap
            return own + remote + blocking

        return bat
    per_core = plan[8]

    def bat(t: int) -> int:
        own = _bas_fast_b(bas_rows, t, md_i)
        cap = slot_size * own
        remote = 0
        for rows in per_core:
            demand = _w_sum_fast_b(est, rows, t, d_mem)
            remote += demand if demand < cap else cap
        return own + remote + blocking

    return bat


def _bat_fused(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """One fused :math:`BAT^x_i(t)` evaluation over flat integer rows.

    Live tunables (persistence flags, ``tdma_slot_alignment``) select the
    specialised row tables / wait terms at evaluation time, so flipping
    them on a live context takes effect immediately, exactly as on the
    per-term path.
    """
    policy = ctx.platform.bus_policy
    persistence = ctx.persistence
    drop_pcb = FAULTS.drop_pcb_term
    plan = _bat_plan(ctx, task_i)
    md_i = plan[0]
    if persistence:
        own = _bas_fast_p(plan[1], t, md_i, drop_pcb)
    else:
        own = _bas_fast_b(plan[2], t, md_i)
    if policy is BusPolicy.PERFECT:
        return own
    if policy is BusPolicy.TDMA:
        wait_slots = (ctx.platform.num_cores - 1) * ctx.platform.slot_size
        if ctx.tdma_slot_alignment:
            wait_slots += 1
        return own + wait_slots * own + plan[9]
    est = ctx._est
    d_mem = ctx.platform.d_mem
    if policy is BusPolicy.FP:
        if persistence:
            higher = _w_sum_fast_p(est, plan[3], t, d_mem, drop_pcb)
        else:
            higher = _w_sum_fast_b(est, plan[4], t, d_mem)
        if persistence and ctx.persistence_in_low:
            lower = _w_sum_fast_p(est, plan[5], t, d_mem, drop_pcb)
        else:
            lower = _w_sum_fast_b(est, plan[6], t, d_mem)
        return own + higher + plan[9] + min(own, lower)
    # RR
    slot_cap = ctx.platform.slot_size * own
    remote = 0
    per_core = plan[7] if persistence else plan[8]
    if persistence:
        for rows in per_core:
            demand = _w_sum_fast_p(est, rows, t, d_mem, drop_pcb)
            remote += demand if demand < slot_cap else slot_cap
    else:
        for rows in per_core:
            demand = _w_sum_fast_b(est, rows, t, d_mem)
            remote += demand if demand < slot_cap else slot_cap
    return own + remote + plan[9]


def total_bus_accesses(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Dispatch :math:`BAT^x_i(t)` on the platform's bus policy."""
    policy = ctx.platform.bus_policy
    if ctx.fused and t >= 0:
        if (
            policy is BusPolicy.FP
            or policy is BusPolicy.RR
            or policy is BusPolicy.TDMA
            or policy is BusPolicy.PERFECT
        ):
            return _bat_fused(ctx, task_i, t)
    if policy is BusPolicy.FP:
        return _bat_fp(ctx, task_i, t)
    if policy is BusPolicy.RR:
        return _bat_rr(ctx, task_i, t)
    if policy is BusPolicy.TDMA:
        return _bat_tdma(ctx, task_i, t)
    if policy is BusPolicy.PERFECT:
        return _bat_perfect(ctx, task_i, t)
    raise AnalysisError(f"unsupported bus policy: {policy!r}")
