"""Bus-access request bounds: Eq. (1), (3)-(6) and Lemmas 1-2 (Eq. 16-18).

Two families of bounds are implemented:

* :func:`bas` — bus accesses generated **on the analysed task's own core**
  by the task itself and its same-core higher-priority tasks within a window
  of length ``t``:  Eq. (1) (baseline) or Lemma 1 / Eq. (16)
  (persistence aware).

* :func:`bao` — bus accesses generated **on a remote core** by tasks of a
  given priority level or higher within a window of length ``t``:  Eq. (3)
  (baseline) or Lemma 2 / Eq. (17)-(18) (persistence aware).
  :func:`bao_low` is the lower-priority variant needed by the FP bus
  (Eq. 7).

All functions return *numbers of bus accesses*; multiply by ``d_mem`` for
time.  Window lengths and all task parameters are integers (cycles /
request counts) so every bound is exact — no floating-point ceil/floor
pitfalls.
"""

from __future__ import annotations

from repro.businterference.context import AnalysisContext
from repro.crpd.approaches import CrpdApproach
from repro.crpd.multiset import ecb_union_multiset_window
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.persistence.demand import multi_job_demand


def _ceil_div(numerator: int, denominator: int) -> int:
    """Exact ceiling division for (possibly negative) integers."""
    return -((-numerator) // denominator)


def jobs_in_window(t: int, period: int) -> int:
    """:math:`E_j(t) = \\lceil t / T_j \\rceil` — releases in a window.

    The maximum number of jobs a sporadic task with minimum inter-arrival
    time ``period`` can release inside a half-open window of length ``t``.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    if period <= 0:
        raise AnalysisError(f"period must be positive, got {period}")
    return _ceil_div(t, period)


# ---------------------------------------------------------------------------
# Same-core bound: BAS (Eq. 1) and persistence-aware B^AS (Lemma 1, Eq. 16)
# ---------------------------------------------------------------------------


def bas(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Bus accesses from ``task_i``'s core that delay one job of ``task_i``.

    Covers one job of ``task_i`` plus every job of its same-core
    higher-priority tasks released in a window of length ``t``, including
    CRPD reloads.  Persistence-aware (Eq. 16) when ``ctx.persistence`` is
    set, otherwise the baseline Eq. (1); the persistence-aware value never
    exceeds the baseline thanks to the per-task ``min``.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    multiset_crpd = ctx.crpd.approach is CrpdApproach.ECB_UNION_MULTISET
    total = task_i.md
    for task_j in ctx.taskset.hp_on_core(task_i, task_i.core):
        n_jobs = jobs_in_window(t, int(task_j.period))
        isolated = n_jobs * task_j.md
        if ctx.persistence:
            persistent = multi_job_demand(task_j, n_jobs) + ctx.cpro.rho_window(
                task_j, task_i, n_jobs, t
            )
            demand = min(isolated, persistent)
        else:
            demand = isolated
        if multiset_crpd:
            crpd = ecb_union_multiset_window(
                ctx.taskset, task_i, task_j, t, ctx.response_time
            )
        else:
            crpd = n_jobs * ctx.crpd.gamma(task_i, task_j)
        total += demand + crpd
    return total


# ---------------------------------------------------------------------------
# Remote-core bound: BAO (Eq. 3-6) and persistence-aware B^AO (Lemma 2)
# ---------------------------------------------------------------------------


def full_jobs_in_window(
    ctx: AnalysisContext, task_k: Task, task_l: Task, t: int
) -> int:
    """:math:`N^y_{k,l}(t)` of Eq. (6) — fully-executed remote jobs.

    Upper bound on the number of jobs of remote task ``task_l`` that both
    start and finish inside a window of length ``t``, assuming the first job
    finishes as late as possible (just before its WCRT :math:`R_l`) and
    later jobs run as early as possible.  Clamped at zero for short windows.
    """
    gamma = ctx.crpd.gamma(task_k, task_l)
    r_l = ctx.response_time(task_l)
    numerator = t + r_l - (task_l.md + gamma) * ctx.platform.d_mem
    if numerator < 0:
        return 0
    return numerator // int(task_l.period)


def carried_out_accesses(
    ctx: AnalysisContext, task_k: Task, task_l: Task, t: int, n_full: int
) -> int:
    """:math:`W^y_{k,l,cout}(t)` of Eq. (5) — carry-out job accesses.

    Accesses of the final, partially-overlapping job of ``task_l``: bounded
    both by how much of the job fits in the remainder of the window (first
    term) and by the job's total demand including CRPD (second term).
    """
    gamma = ctx.crpd.gamma(task_k, task_l)
    demand = task_l.md + gamma
    r_l = ctx.response_time(task_l)
    d_mem = ctx.platform.d_mem
    remainder = t + r_l - demand * d_mem - n_full * int(task_l.period)
    if remainder <= 0:
        return 0
    return min(_ceil_div(remainder, d_mem), demand)


def _w(
    ctx: AnalysisContext,
    task_k: Task,
    task_l: Task,
    t: int,
    persistence: bool,
) -> int:
    """:math:`W` (Eq. 4) or :math:`\\hat{W}` (Eq. 18) plus carry-out (Eq. 5)."""
    n_full = full_jobs_in_window(ctx, task_k, task_l, t)
    gamma = ctx.crpd.gamma(task_k, task_l)
    isolated = n_full * task_l.md
    if persistence:
        persistent = multi_job_demand(task_l, n_full) + ctx.cpro.rho_window(
            task_l, task_k, n_full, t, carry_in=True
        )
        demand = min(isolated, persistent)
    else:
        demand = isolated
    body = demand + n_full * gamma
    return body + carried_out_accesses(ctx, task_k, task_l, t, n_full)


def bao(ctx: AnalysisContext, core_y: int, task_k: Task, t: int) -> int:
    """Remote-core accesses of priority ``task_k`` or higher (Eq. 3/17).

    Total bus accesses generated in a window of length ``t`` by the tasks of
    core ``core_y`` whose priority is at least that of ``task_k``.
    Persistence-aware (Lemma 2) when ``ctx.persistence`` is set.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    return sum(
        _w(ctx, task_k, task_l, t, ctx.persistence)
        for task_l in ctx.taskset.hep_on_core(task_k, core_y)
    )


def bao_low(ctx: AnalysisContext, core_y: int, task_k: Task, t: int) -> int:
    """Remote-core accesses of priority lower than ``task_k`` (Eq. 7).

    Needed by the FP bus: lower-priority accesses can each block at most one
    higher-priority access.  The paper keeps this term persistence oblivious
    (plain :math:`W`); set ``ctx.persistence_in_low`` to apply the — equally
    sound, slightly tighter — persistence-aware :math:`\\hat{W}` instead.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    persistence = ctx.persistence and ctx.persistence_in_low
    return sum(
        _w(ctx, task_k, task_l, t, persistence)
        for task_l in ctx.taskset.lp_on_core(task_k, core_y)
    )
