"""Bus-access request bounds: Eq. (1), (3)-(6) and Lemmas 1-2 (Eq. 16-18).

Two families of bounds are implemented:

* :func:`bas` — bus accesses generated **on the analysed task's own core**
  by the task itself and its same-core higher-priority tasks within a window
  of length ``t``:  Eq. (1) (baseline) or Lemma 1 / Eq. (16)
  (persistence aware).

* :func:`bao` — bus accesses generated **on a remote core** by tasks of a
  given priority level or higher within a window of length ``t``:  Eq. (3)
  (baseline) or Lemma 2 / Eq. (17)-(18) (persistence aware).
  :func:`bao_low` is the lower-priority variant needed by the FP bus
  (Eq. 7).

All functions return *numbers of bus accesses*; multiply by ``d_mem`` for
time.  Window lengths and all task parameters are integers (cycles /
request counts) so every bound is exact — no floating-point ceil/floor
pitfalls.

Memoization: within one run of the outer loop of Sec. IV the response-time
estimates a remote-core term reads are frozen, so :func:`bao`,
:func:`bao_low` (each a fused sum of the per-pair :math:`W` terms over one
remote core) and the window-level multiset CRPD term are cached on
``(inputs, epoch-of-the-core-they-read)`` — see
:class:`~repro.businterference.context.AnalysisContext`.  A cache hit
replays a computation with identical inputs, so results are bit-identical
to the un-memoized reference path (``ctx.memoize = False``).
"""

from __future__ import annotations

from typing import Tuple

from repro.businterference.context import AnalysisContext
from repro.crpd.approaches import CrpdApproach
from repro.errors import AnalysisError
from repro.model.task import Task
from repro.persistence.demand import FAULTS, multi_job_demand


def _ceil_div(numerator: int, denominator: int) -> int:
    """Exact ceiling division for (possibly negative) integers."""
    return -((-numerator) // denominator)


def jobs_in_window(t: int, period: int) -> int:
    """:math:`E_j(t) = \\lceil t / T_j \\rceil` — releases in a window.

    The maximum number of jobs a sporadic task with minimum inter-arrival
    time ``period`` can release inside a half-open window of length ``t``.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    if period <= 0:
        raise AnalysisError(f"period must be positive, got {period}")
    return _ceil_div(t, period)


# ---------------------------------------------------------------------------
# Same-core bound: BAS (Eq. 1) and persistence-aware B^AS (Lemma 1, Eq. 16)
# ---------------------------------------------------------------------------


def crpd_multiset_window(ctx: AnalysisContext, task_i: Task, task_j: Task, t: int) -> int:
    """Window-level multiset CRPD term of :math:`BAS`, memoized per epoch.

    The term reads the response-time estimates of the affected tasks on
    ``task_j``'s core, so cached values are keyed by that core's epoch.
    """
    if not ctx.memoize:
        return ctx.crpd.multiset_window(
            task_i, task_j, t, ctx.response_time, budget=ctx.budget
        )
    key = (task_i.priority, task_j.priority, t)
    epoch = ctx.core_epoch(task_j.core)
    cached = ctx._crpd_window_cache.get(key)
    if cached is not None and cached[0] == epoch:
        ctx.perf.crpd_window_hits += 1
        return cached[1]
    ctx.perf.crpd_window_misses += 1
    value = ctx.crpd.multiset_window(
        task_i, task_j, t, ctx.response_time, budget=ctx.budget
    )
    ctx._crpd_window_cache[key] = (epoch, value)
    return value


def _bas_rows(ctx: AnalysisContext, task_i: Task) -> tuple:
    """Prefetched static parameters of ``task_i``'s same-core BAS loop.

    One row per same-core higher-priority task ``task_j``:
    ``(task_j, period, md, md_r, |PCB|, gamma(i, j), evictable_pcbs(j, i))``.
    Every entry is constant for the lifetime of the context, so the BAS
    evaluation in the fixed point reduces to integer arithmetic over rows —
    the closed-form demand below mirrors
    :func:`repro.persistence.demand.multi_job_demand_from_params`.  The
    ``gamma`` / ``evictable`` entries come from whichever cache-set kernel
    (bitmask or ``frozenset`` reference) the context's calculators run, so
    the backing store is keyed by the kernel flags (see
    :class:`~repro.businterference.context.AnalysisContext`).
    """
    rows = ctx._bas_rows.get(task_i.priority)
    if rows is None:
        rows = tuple(
            (
                task_j,
                int(task_j.period),
                task_j.md,
                task_j.md_r,
                len(task_j.pcbs),
                ctx.crpd.gamma(task_i, task_j),
                ctx.cpro.eviction_count(task_j, task_i),
            )
            for task_j in ctx.taskset.hp_on_core(task_i, task_i.core)
        )
        ctx._bas_rows[task_i.priority] = rows
    return rows


def _bas_rows_fast(ctx: AnalysisContext, task_i: Task) -> Tuple[tuple, tuple]:
    """Integer-only forms of :func:`_bas_rows` for the fused evaluator.

    Returns ``(persistence_rows, baseline_rows)``: the persistence-aware
    loop reads ``(period, md, md_r, |PCB|, gamma, evictable)`` per row,
    the baseline loop only ``(period, md + gamma)`` — same values as
    :func:`_bas_rows` minus the ``Task`` object and with the per-row
    constants the respective closed form actually touches.
    """
    rows = ctx._bas_rows_fast.get(task_i.priority)
    if rows is None:
        # Built directly from the calculators (the same sources
        # :func:`_bas_rows` reads) rather than via the legacy table, so the
        # fused path never materialises the ``Task``-laden rows it does not
        # need.  Values are identical by construction.
        gamma_of = ctx.crpd.gamma
        evictions = ctx.cpro.eviction_count
        rows_p = []
        rows_b = []
        for task_j in ctx.taskset.hp_on_core(task_i, task_i.core):
            gamma = gamma_of(task_i, task_j)
            period = int(task_j.period)
            md = task_j.md
            rows_p.append(
                (
                    period,
                    md,
                    task_j.md_r,
                    len(task_j.pcbs),
                    gamma,
                    evictions(task_j, task_i),
                )
            )
            rows_b.append((period, md + gamma))
        rows = (tuple(rows_p), tuple(rows_b))
        ctx._bas_rows_fast[task_i.priority] = rows
    return rows


def _bas_fast_p(rows: tuple, t: int, md_i: int, drop_pcb: bool) -> int:
    """Fused persistence-aware :func:`bas` body (fast-demand only).

    Row-for-row the same arithmetic as the ``fast`` branch of :func:`bas`;
    exact integer operations make the two evaluation orders literally
    identical, which the differential tests and oracles pin down.
    """
    total = md_i
    for period, md, md_r, pcbs, gamma, evictable in rows:
        n_jobs = -((-t) // period)
        isolated = n_jobs * md
        persistent = n_jobs * md_r + (0 if drop_pcb else pcbs)
        if persistent > isolated:
            persistent = isolated
        if n_jobs > 1:
            persistent += (n_jobs - 1) * evictable
        total += (persistent if persistent < isolated else isolated) + n_jobs * gamma
    return total


def _bas_fast_b(rows: tuple, t: int, md_i: int) -> int:
    """Fused baseline :func:`bas` body: ``md_i + sum ceil(t/T) * (md + gamma)``."""
    total = md_i
    for period, mdg in rows:
        total += -((-t) // period) * mdg
    return total


def bas(ctx: AnalysisContext, task_i: Task, t: int) -> int:
    """Bus accesses from ``task_i``'s core that delay one job of ``task_i``.

    Covers one job of ``task_i`` plus every job of its same-core
    higher-priority tasks released in a window of length ``t``, including
    CRPD reloads.  Persistence-aware (Eq. 16) when ``ctx.persistence`` is
    set, otherwise the baseline Eq. (1); the persistence-aware value never
    exceeds the baseline thanks to the per-task ``min``.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    if ctx.fused:
        rows_p, rows_b = _bas_rows_fast(ctx, task_i)
        if ctx.persistence:
            return _bas_fast_p(rows_p, t, task_i.md, FAULTS.drop_pcb_term)
        return _bas_fast_b(rows_b, t, task_i.md)
    multiset_crpd = ctx.crpd.approach is CrpdApproach.ECB_UNION_MULTISET
    persistence = ctx.persistence
    fast = ctx.fast_demand
    drop_pcb = FAULTS.drop_pcb_term
    total = task_i.md
    for task_j, period, md, md_r, pcbs, gamma, evictable in _bas_rows(ctx, task_i):
        n_jobs = -((-t) // period)
        isolated = n_jobs * md
        if persistence:
            if fast:
                # multi_job_demand + rho in closed form (Eq. 10 + Eq. 14).
                persistent = min(
                    isolated, n_jobs * md_r + (0 if drop_pcb else pcbs)
                )
                if n_jobs > 1:
                    persistent += (n_jobs - 1) * evictable
            else:
                persistent = multi_job_demand(task_j, n_jobs) + ctx.cpro.rho_window(
                    task_j, task_i, n_jobs, t, budget=ctx.budget
                )
            demand = persistent if persistent < isolated else isolated
        else:
            demand = isolated
        if multiset_crpd:
            crpd = crpd_multiset_window(ctx, task_i, task_j, t)
        else:
            crpd = n_jobs * gamma
        total += demand + crpd
    return total


# ---------------------------------------------------------------------------
# Remote-core bound: BAO (Eq. 3-6) and persistence-aware B^AO (Lemma 2)
# ---------------------------------------------------------------------------


def full_jobs_in_window(
    ctx: AnalysisContext, task_k: Task, task_l: Task, t: int
) -> int:
    """:math:`N^y_{k,l}(t)` of Eq. (6) — fully-executed remote jobs.

    Upper bound on the number of jobs of remote task ``task_l`` that both
    start and finish inside a window of length ``t``, assuming the first job
    finishes as late as possible (just before its WCRT :math:`R_l`) and
    later jobs run as early as possible.  Clamped at zero for short windows.
    """
    gamma = ctx.crpd.gamma(task_k, task_l)
    r_l = ctx.response_time(task_l)
    numerator = t + r_l - (task_l.md + gamma) * ctx.platform.d_mem
    if numerator < 0:
        return 0
    return numerator // int(task_l.period)


def carried_out_accesses(
    ctx: AnalysisContext, task_k: Task, task_l: Task, t: int, n_full: int
) -> int:
    """:math:`W^y_{k,l,cout}(t)` of Eq. (5) — carry-out job accesses.

    Accesses of the final, partially-overlapping job of ``task_l``: bounded
    both by how much of the job fits in the remainder of the window (first
    term) and by the job's total demand including CRPD (second term).
    """
    gamma = ctx.crpd.gamma(task_k, task_l)
    demand = task_l.md + gamma
    r_l = ctx.response_time(task_l)
    d_mem = ctx.platform.d_mem
    remainder = t + r_l - demand * d_mem - n_full * int(task_l.period)
    if remainder <= 0:
        return 0
    return min(_ceil_div(remainder, d_mem), demand)


def _w_rows(ctx: AnalysisContext, task_k: Task, core_y: int, lower: bool) -> tuple:
    """Prefetched static parameters of one remote-core :math:`W` sum.

    One row per task ``task_l`` on ``core_y`` with priority at least
    (``lower=False``) or below (``lower=True``) ``task_k``'s:
    ``(task_l, gamma(k, l), period, md, md_r, |PCB|, evictable_pcbs(l, k),
    md + gamma, isolated_wcrt)``.  The last entry is the estimate the outer
    loop starts every task from, so the hot loop can resolve :math:`R_l`
    with a plain dict probe.  Rows are pure functions of the task set, the
    approach enums, the cache-set kernel flags and ``d_mem``, so they are
    shared across contexts via :meth:`~repro.model.task.TaskSet.derived`
    (one table per kernel — see the ``bitset-identity`` oracle).
    """
    key = (core_y, task_k.priority, lower)
    rows = ctx._w_rows.get(key)
    if rows is None:
        members = (
            ctx.taskset.lp_on_core(task_k, core_y)
            if lower
            else ctx.taskset.hep_on_core(task_k, core_y)
        )
        d_mem = ctx.platform.d_mem
        rows = tuple(
            (
                task_l,
                gamma := ctx.crpd.gamma(task_k, task_l),
                int(task_l.period),
                task_l.md,
                task_l.md_r,
                len(task_l.pcbs),
                ctx.cpro.eviction_count(task_l, task_k),
                task_l.md + gamma,
                int(task_l.pd + task_l.md * d_mem),
            )
            for task_l in members
        )
        ctx._w_rows[key] = rows
    return rows


def _w_sum(
    ctx: AnalysisContext,
    task_k: Task,
    rows: tuple,
    t: int,
    persistence: bool,
) -> int:
    """Fused evaluation of :math:`\\sum_l W` over one remote core.

    Each row is Eq. (4)/(18) plus carry-out (Eq. 5) — semantically
    ``full_jobs_in_window`` + demand + ``carried_out_accesses`` — evaluated
    in a single pass over the prefetched parameters of :func:`_w_rows`.
    """
    d_mem = ctx.platform.d_mem
    fast = ctx.fast_demand
    drop_pcb = FAULTS.drop_pcb_term
    estimates = ctx.response_times
    total = 0
    for task_l, gamma, period_l, md_l, md_r_l, pcbs_l, evictable, job_demand, iso in rows:
        r_l = estimates.get(task_l)
        if r_l is None:
            r_l = iso
        numerator = t + r_l - job_demand * d_mem
        if numerator < 0:
            continue
        n_full = numerator // period_l
        isolated = n_full * md_l
        if persistence:
            if fast:
                # multi_job_demand + rho in closed form (Eq. 10 + Eq. 14).
                persistent = n_full * md_r_l + (0 if drop_pcb else pcbs_l)
                if persistent > isolated:
                    persistent = isolated
                if n_full > 1:
                    persistent += (n_full - 1) * evictable
            else:
                persistent = multi_job_demand(task_l, n_full) + ctx.cpro.rho_window(
                    task_l, task_k, n_full, t, carry_in=True, budget=ctx.budget
                )
            demand = persistent if persistent < isolated else isolated
        else:
            demand = isolated
        total += demand + n_full * gamma
        remainder = numerator - n_full * period_l
        if remainder > 0:
            carry_out = -((-remainder) // d_mem)
            total += carry_out if carry_out < job_demand else job_demand
    return total


def _w_rows_fast(
    ctx: AnalysisContext, task_k: Task, core_y: int, lower: bool
) -> Tuple[tuple, tuple]:
    """Integer-only forms of :func:`_w_rows` for the fused evaluator.

    Returns ``(persistence_rows, baseline_rows)``.  Both carry ``slot`` —
    the index of the member task in the context's estimate list, resolving
    to the same value the dict probe of :func:`_w_sum` would (including
    the isolated-WCET fallback) — and the folded per-row constants
    ``job_demand = md + gamma`` and ``job_demand * d_mem``.  The
    persistence rows additionally carry the closed-form demand parameters
    ``(md, md_r, |PCB|, evictable)``; the baseline rows only ``md + gamma``
    once more as the per-full-job charge.
    """
    key = (core_y, task_k.priority, lower)
    rows = ctx._w_rows_fast.get(key)
    if rows is None:
        # Built directly from the calculators (the same sources
        # :func:`_w_rows` reads) rather than via the legacy table, so the
        # fused path never materialises the ``Task``-laden rows it does not
        # need.  Values are identical by construction.
        members = (
            ctx.taskset.lp_on_core(task_k, core_y)
            if lower
            else ctx.taskset.hep_on_core(task_k, core_y)
        )
        d_mem = ctx.platform.d_mem
        slot_of = ctx._slot_of
        gamma_of = ctx.crpd.gamma
        evictions = ctx.cpro.eviction_count
        rows_p = []
        rows_b = []
        for task_l in members:
            gamma = gamma_of(task_k, task_l)
            period = int(task_l.period)
            job_demand = task_l.md + gamma
            jdd = job_demand * d_mem
            slot = slot_of[task_l.priority]
            rows_p.append(
                (
                    slot,
                    gamma,
                    period,
                    task_l.md,
                    task_l.md_r,
                    len(task_l.pcbs),
                    evictions(task_l, task_k),
                    job_demand,
                    jdd,
                )
            )
            rows_b.append((slot, period, job_demand, jdd))
        rows = (tuple(rows_p), tuple(rows_b))
        ctx._w_rows_fast[key] = rows
    return rows


def _w_sum_fast_p(est: list, rows: tuple, t: int, d_mem: int, drop_pcb: bool) -> int:
    """Fused persistence-aware :func:`_w_sum` body (fast-demand only).

    Same arithmetic, row order and integer operations as the ``fast``
    branch of :func:`_w_sum`; the only differences are mechanical — the
    estimate comes from a slot list instead of a ``Task``-keyed dict and
    ``job_demand * d_mem`` is a precomputed row constant — so values are
    bit-identical by construction.
    """
    total = 0
    for slot, gamma, period, md, md_r, pcbs, evictable, jd, jdd in rows:
        numerator = t + est[slot] - jdd
        if numerator < 0:
            continue
        n_full = numerator // period
        isolated = n_full * md
        persistent = n_full * md_r + (0 if drop_pcb else pcbs)
        if persistent > isolated:
            persistent = isolated
        if n_full > 1:
            persistent += (n_full - 1) * evictable
        total += (persistent if persistent < isolated else isolated) + n_full * gamma
        remainder = numerator - n_full * period
        if remainder > 0:
            carry_out = -((-remainder) // d_mem)
            total += carry_out if carry_out < jd else jd
    return total


def _w_sum_fast_b(est: list, rows: tuple, t: int, d_mem: int) -> int:
    """Fused baseline :func:`_w_sum` body.

    The baseline per-full-job charge is ``md + gamma = job_demand``, so
    the row needs only the window parameters.
    """
    total = 0
    for slot, period, jd, jdd in rows:
        numerator = t + est[slot] - jdd
        if numerator < 0:
            continue
        n_full = numerator // period
        total += n_full * jd
        remainder = numerator - n_full * period
        if remainder > 0:
            carry_out = -((-remainder) // d_mem)
            total += carry_out if carry_out < jd else jd
    return total


def bao(ctx: AnalysisContext, core_y: int, task_k: Task, t: int) -> int:
    """Remote-core accesses of priority ``task_k`` or higher (Eq. 3/17).

    Total bus accesses generated in a window of length ``t`` by the tasks of
    core ``core_y`` whose priority is at least that of ``task_k``.
    Persistence-aware (Lemma 2) when ``ctx.persistence`` is set.  Memoized
    per ``(core, priority, t)`` and the epoch of ``core_y`` — the sum only
    reads estimates of tasks on that core.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    if not ctx.memoize:
        rows = _w_rows(ctx, task_k, core_y, lower=False)
        return _w_sum(ctx, task_k, rows, t, ctx.persistence)
    key = (core_y, task_k.priority, t)
    epoch = ctx.core_epoch(core_y)
    cached = ctx._bao_cache.get(key)
    if cached is not None and cached[0] == epoch:
        ctx.perf.bao_hits += 1
        return cached[1]
    ctx.perf.bao_misses += 1
    if ctx.fused:
        rows_p, rows_b = _w_rows_fast(ctx, task_k, core_y, lower=False)
        if ctx.persistence:
            value = _w_sum_fast_p(
                ctx._est, rows_p, t, ctx.platform.d_mem, FAULTS.drop_pcb_term
            )
        else:
            value = _w_sum_fast_b(ctx._est, rows_b, t, ctx.platform.d_mem)
    else:
        rows = _w_rows(ctx, task_k, core_y, lower=False)
        value = _w_sum(ctx, task_k, rows, t, ctx.persistence)
    ctx._bao_cache[key] = (epoch, value)
    return value


def bao_low(ctx: AnalysisContext, core_y: int, task_k: Task, t: int) -> int:
    """Remote-core accesses of priority lower than ``task_k`` (Eq. 7).

    Needed by the FP bus: lower-priority accesses can each block at most one
    higher-priority access.  The paper keeps this term persistence oblivious
    (plain :math:`W`); set ``ctx.persistence_in_low`` to apply the — equally
    sound, slightly tighter — persistence-aware :math:`\\hat{W}` instead.
    Memoized like :func:`bao`.
    """
    if t < 0:
        raise AnalysisError(f"window length must be non-negative, got {t}")
    persistence = ctx.persistence and ctx.persistence_in_low
    if not ctx.memoize:
        rows = _w_rows(ctx, task_k, core_y, lower=True)
        return _w_sum(ctx, task_k, rows, t, persistence)
    key = (core_y, task_k.priority, t)
    epoch = ctx.core_epoch(core_y)
    cached = ctx._bao_low_cache.get(key)
    if cached is not None and cached[0] == epoch:
        ctx.perf.bao_low_hits += 1
        return cached[1]
    ctx.perf.bao_low_misses += 1
    if ctx.fused:
        rows_p, rows_b = _w_rows_fast(ctx, task_k, core_y, lower=True)
        if persistence:
            value = _w_sum_fast_p(
                ctx._est, rows_p, t, ctx.platform.d_mem, FAULTS.drop_pcb_term
            )
        else:
            value = _w_sum_fast_b(ctx._est, rows_b, t, ctx.platform.d_mem)
    else:
        rows = _w_rows(ctx, task_k, core_y, lower=True)
        value = _w_sum(ctx, task_k, rows, t, persistence)
    ctx._bao_low_cache[key] = (epoch, value)
    return value
