"""Shared state threaded through the bus-interference equations.

The interference bounds of the paper are parameterised by quantities that are
fixed for a given analysis run (task set, platform, CRPD/CPRO calculators,
whether cache persistence is exploited) plus the current worst-case response
time estimates of all tasks (Eq. 5/6 need :math:`R_l`, which the outer loop
of Sec. IV refines iteratively).  :class:`AnalysisContext` bundles them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crpd.approaches import CrpdApproach, CrpdCalculator
from repro.errors import AnalysisError
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import CproApproach, CproCalculator


@dataclass
class AnalysisContext:
    """Everything the interference equations need besides the window length.

    Attributes:
        taskset: the task set under analysis.
        platform: the multicore platform (supplies ``d_mem``, core count,
            bus policy and slot size).
        persistence: when ``True`` the persistence-aware bounds of Lemmas 1
            and 2 are used; when ``False`` the baseline bounds of Davis et
            al. (Eq. 1 and 3).
        crpd: memoising CRPD calculator (:math:`\\gamma` of Eq. 2).
        cpro: memoising CPRO calculator (:math:`\\hat{\\rho}` of Eq. 14).
        response_times: current WCRT estimate of every task, refined by the
            outer fixed-point loop.  Tasks missing from the mapping fall back
            to their isolated WCET, the value the outer loop starts from.
        persistence_in_low: also apply the persistence-aware :math:`\\hat{W}`
            to the lower-priority other-core term :math:`BAO^y_{i,low}` of
            the FP bus (Eq. 7).  The paper leaves that term persistence
            oblivious; enabling this is a sound tightening kept off by
            default for fidelity.
        tdma_slot_alignment: charge one extra TDMA slot of waiting per
            access (see :class:`repro.analysis.config.AnalysisConfig`).
    """

    taskset: TaskSet
    platform: Platform
    persistence: bool = True
    crpd: Optional[CrpdCalculator] = None
    cpro: Optional[CproCalculator] = None
    response_times: Dict[Task, int] = field(default_factory=dict)
    persistence_in_low: bool = False
    tdma_slot_alignment: bool = False

    def __post_init__(self) -> None:
        if self.crpd is None:
            self.crpd = CrpdCalculator(self.taskset, CrpdApproach.ECB_UNION)
        if self.cpro is None:
            self.cpro = CproCalculator(self.taskset, CproApproach.UNION)

    def response_time(self, task: Task) -> int:
        """Current WCRT estimate of ``task`` (isolated WCET if not yet set)."""
        estimate = self.response_times.get(task)
        if estimate is None:
            return int(task.pd + task.md * self.platform.d_mem)
        return estimate

    def set_response_time(self, task: Task, value: int) -> None:
        """Record a refined WCRT estimate for ``task``."""
        if value < 0:
            raise AnalysisError(
                f"response time of {task.name!r} must be non-negative, got {value}"
            )
        self.response_times[task] = value
