"""Shared state threaded through the bus-interference equations.

The interference bounds of the paper are parameterised by quantities that are
fixed for a given analysis run (task set, platform, CRPD/CPRO calculators,
whether cache persistence is exploited) plus the current worst-case response
time estimates of all tasks (Eq. 5/6 need :math:`R_l`, which the outer loop
of Sec. IV refines iteratively).  :class:`AnalysisContext` bundles them.

Epoch-keyed memoization
-----------------------

The remote-core terms :math:`W`, :math:`BAO` and :math:`BAO_{low}` depend,
besides the window length ``t``, only on the response-time estimates of the
tasks on *one* remote core — estimates that are frozen while a single
task's inner fixed point runs and change only when the outer loop records a
refined value.  :class:`AnalysisContext` therefore keeps one *epoch*
counter per core (plus a global one), bumped exactly when a task on that
core gets a new estimate, and caches each term keyed by its inputs plus
the epoch of the core it reads.  A cache hit is by construction a
recomputation with identical inputs, so memoized results are bit-identical
to the naive evaluation — the differential test in
``tests/test_differential.py`` pins this down.  Set ``memoize=False`` (via
``AnalysisConfig(memoization=False)``) to force the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.budget import Budget
from repro.crpd.approaches import CrpdApproach, CrpdCalculator
from repro.errors import AnalysisError
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet
from repro.perf import PerfCounters
from repro.persistence.cpro import CproApproach, CproCalculator


@dataclass
class AnalysisContext:
    """Everything the interference equations need besides the window length.

    Attributes:
        taskset: the task set under analysis.
        platform: the multicore platform (supplies ``d_mem``, core count,
            bus policy and slot size).
        persistence: when ``True`` the persistence-aware bounds of Lemmas 1
            and 2 are used; when ``False`` the baseline bounds of Davis et
            al. (Eq. 1 and 3).
        crpd: memoising CRPD calculator (:math:`\\gamma` of Eq. 2).
        cpro: memoising CPRO calculator (:math:`\\hat{\\rho}` of Eq. 14).
        response_times: current WCRT estimate of every task, refined by the
            outer fixed-point loop.  Tasks missing from the mapping fall back
            to their isolated WCET, the value the outer loop starts from.
        persistence_in_low: also apply the persistence-aware :math:`\\hat{W}`
            to the lower-priority other-core term :math:`BAO^y_{i,low}` of
            the FP bus (Eq. 7).  The paper leaves that term persistence
            oblivious; enabling this is a sound tightening kept off by
            default for fidelity.
        tdma_slot_alignment: charge one extra TDMA slot of waiting per
            access (see :class:`repro.analysis.config.AnalysisConfig`).
        memoize: cache the window-level interference terms keyed by their
            inputs plus the epoch of the core whose estimates they read.
            Results are bit-identical either way; disabling selects the
            reference path used by the differential correctness test.
        array_kernel: allow the fused tight-loop evaluator for the bus
            terms (see ``_w_sum_fast_p``/``_w_sum_fast_b`` in
            :mod:`repro.businterference.requests` and ``_bat_fused`` in
            :mod:`repro.businterference.arbiters`): a whole BAT evaluation
            becomes one pass over flat integer rows with response-time
            estimates resolved through a slot list instead of a
            ``Task``-keyed dict probe, and no per-term memo caches are
            consulted (they essentially never hit on this path, so the
            memo hit/miss counters read zero under the fused evaluator).
            Engages only where the closed forms apply (``fast_demand`` and
            a window-oblivious CRPD approach) and only when ``memoize`` is
            also set, so the ``memoize=False`` reference stays the
            untouched legacy evaluation.  Computed values are bit-identical
            either way.
        perf: counters recording iteration counts and memo hits/misses.
        budget: optional :class:`~repro.budget.Budget` ticked at every
            inner fixed-point iteration (and checked inside the expensive
            window folds), so an over-budget or cancelled analysis aborts
            cooperatively.  ``None`` — the default — removes every check;
            a present budget never alters any computed value.
    """

    taskset: TaskSet
    platform: Platform
    persistence: bool = True
    crpd: Optional[CrpdCalculator] = None
    cpro: Optional[CproCalculator] = None
    response_times: Dict[Task, int] = field(default_factory=dict)
    persistence_in_low: bool = False
    tdma_slot_alignment: bool = False
    memoize: bool = True
    array_kernel: bool = True
    perf: PerfCounters = field(default_factory=PerfCounters)
    budget: Optional[Budget] = None

    #: Global estimate-revision counter ("epoch"): incremented every time
    #: any task's response-time estimate actually changes.
    epoch: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.crpd is None:
            self.crpd = CrpdCalculator.shared(self.taskset, CrpdApproach.ECB_UNION)
        if self.cpro is None:
            self.cpro = CproCalculator.shared(self.taskset, CproApproach.UNION)
        # Per-core epoch counters: cache keys embed the epoch of the core a
        # term reads, so revising one core's estimate leaves cached terms
        # about the other cores valid.
        self._core_epoch: Dict[int, int] = {
            core: 0 for core in self.platform.cores
        }
        self._remote_cores: Dict[int, Tuple[int, ...]] = {
            core: tuple(c for c in self.platform.cores if c != core)
            for core in self.platform.cores
        }
        # Memo caches of the window-level interference terms.  Values store
        # the epoch they were computed at; a mismatch is treated as a miss.
        self._bao_cache: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        self._bao_low_cache: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        self._crpd_window_cache: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        # Static parameter tables (see repro.businterference.requests):
        # everything a BAS / W evaluation needs besides the window length and
        # the current response-time estimates.  Pure functions of the task
        # set, the two approach enums and ``d_mem``, so they are shared
        # across every context analysing the same task set (kept warm
        # between runs and across sweep variants).  The kernel flags are
        # part of the key: rows built from the bitmask kernel must never be
        # reused by the reference path (or vice versa), else the
        # ``bitset-identity`` oracle would compare a value against itself.
        approaches = (
            self.crpd.approach,
            self.crpd.bitset,
            self.cpro.approach,
            self.cpro.bitset,
        )
        self._bas_rows: Dict[int, tuple] = self.taskset.derived(
            ("bas-rows",) + approaches, dict
        )
        self._w_rows: Dict[Tuple[int, int, bool], tuple] = self.taskset.derived(
            ("w-rows",) + approaches + (self.platform.d_mem,), dict
        )
        self._hp_rows: Dict[int, tuple] = self.taskset.derived("hp-rows", dict)
        # With a window-oblivious CPRO approach the per-pair demand terms
        # reduce to closed-form arithmetic over the prefetched parameters.
        self.fast_demand: bool = self.cpro.approach is not CproApproach.MULTISET
        # With *both* approaches window oblivious, every same-core term of
        # Eq. (19) is a pure function of static parameters and the window
        # length: a task's right-hand side then depends only on its own
        # estimate and the estimates of other cores.  The multiset variants
        # break this — their window terms read response-time estimates of
        # same-core tasks (and of the analysed task itself) — so the outer
        # loop's remote-epoch convergence shortcut must not engage there.
        self.window_oblivious: bool = (
            self.fast_demand
            and self.crpd.approach is not CrpdApproach.ECB_UNION_MULTISET
        )
        # Fused tight-loop evaluation of the window terms: estimates live in
        # a list indexed by a per-task-set slot (the task's position in
        # iteration order), so the hot row loops replace the Task-keyed
        # dict probe with a plain list subscript.  The slot list mirrors
        # ``response_times`` exactly — same values, same isolated-WCET
        # fallback — and is maintained by :meth:`set_response_time`.
        self.fused: bool = (
            self.memoize and self.array_kernel and self.window_oblivious
        )
        self._slot_of: Dict[int, int] = self.taskset.derived(
            "est-slots",
            lambda: {t.priority: i for i, t in enumerate(self.taskset)},
        )
        d_mem = self.platform.d_mem
        self._est = [int(t.pd + t.md * d_mem) for t in self.taskset]
        self._w_rows_fast: Dict[Tuple[int, int, bool], tuple] = (
            self.taskset.derived(
                ("w-rows-fast",) + approaches + (self.platform.d_mem,), dict
            )
        )
        self._bas_rows_fast: Dict[int, tuple] = self.taskset.derived(
            ("bas-rows-fast",) + approaches, dict
        )
        # Per-task fused BAT plans (see repro.businterference.arbiters):
        # everything one total-bus-accesses evaluation needs, flattened into
        # integer rows.  Keyed by the full platform (policy, d_mem, slot
        # size, core count) on top of the approach/kernel flags; tunables
        # read live at evaluation time (persistence flags, TDMA alignment)
        # are deliberately *not* baked into plans.
        self._bat_plans: Dict[int, tuple] = self.taskset.derived(
            ("bat-plans",) + approaches + (self.platform,), dict
        )
        # Per-task specialised BAT evaluators (``make_bat`` closures), built
        # once per context: they close over this context's estimate list and
        # bind the tunables at creation time, so unlike the plans they must
        # not outlive the context.
        self._bat_fns: Dict[int, object] = {}

    # -- response-time estimates --------------------------------------------

    def response_time(self, task: Task) -> int:
        """Current WCRT estimate of ``task`` (isolated WCET if not yet set)."""
        estimate = self.response_times.get(task)
        if estimate is None:
            return int(task.pd + task.md * self.platform.d_mem)
        return estimate

    def set_response_time(self, task: Task, value: int) -> None:
        """Record a refined WCRT estimate for ``task``.

        Bumps the epoch of the task's core (and the global epoch) when the
        estimate actually changes, invalidating exactly the cached terms
        that could have read the old value.
        """
        if value < 0:
            raise AnalysisError(
                f"response time of {task.name!r} must be non-negative, got {value}"
            )
        if self.response_times.get(task) != value:
            self.epoch += 1
            core_epoch = self._core_epoch
            core_epoch[task.core] = core_epoch.get(task.core, 0) + 1
        self.response_times[task] = value
        slot = self._slot_of.get(task.priority)
        if slot is not None:
            self._est[slot] = value

    def core_epoch(self, core: int) -> int:
        """Estimate-revision counter of ``core`` (cache-key ingredient)."""
        return self._core_epoch.get(core, 0)

    def remote_cores(self, core: int) -> Tuple[int, ...]:
        """All platform cores except ``core`` (precomputed)."""
        cores = self._remote_cores.get(core)
        if cores is None:
            cores = tuple(c for c in self.platform.cores if c != core)
            self._remote_cores[core] = cores
        return cores
