"""Memory bus interference bounds (Eq. 1, 3-9 and Lemmas 1-2)."""

from repro.businterference.context import AnalysisContext
from repro.businterference.requests import (
    bao,
    bao_low,
    bas,
    carried_out_accesses,
    full_jobs_in_window,
    jobs_in_window,
)
from repro.businterference.arbiters import (
    blocking_accesses,
    total_bus_accesses,
)

__all__ = [
    "AnalysisContext",
    "bao",
    "bao_low",
    "bas",
    "carried_out_accesses",
    "full_jobs_in_window",
    "jobs_in_window",
    "blocking_accesses",
    "total_bus_accesses",
]
