"""Synthetic program models (structured CFG IR + Mälardalen models)."""

from repro.program.cfg import (
    Alt,
    Block,
    Loop,
    Node,
    Program,
    Seq,
    worst_case_work,
)
from repro.program.malardalen import (
    ALL_MODELS,
    benchmark_names,
    benchmark_program,
    build_benchmark,
    published_names,
    reference_geometry,
)
from repro.program.trace import TraceStep, worst_case_trace

__all__ = [
    "Alt",
    "Block",
    "Loop",
    "Node",
    "Program",
    "Seq",
    "worst_case_work",
    "ALL_MODELS",
    "benchmark_names",
    "benchmark_program",
    "build_benchmark",
    "published_names",
    "reference_geometry",
    "TraceStep",
    "worst_case_trace",
]
