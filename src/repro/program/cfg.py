"""Structured control-flow representation of synthetic benchmark programs.

The paper extracts per-task cache parameters (``PD``, ``MD``, ``MDr``,
``ECB``, ``UCB``, ``PCB``) from the Mälardalen C benchmarks with the Heptane
static WCET analyser.  Heptane is unavailable here, so we model each
benchmark as a small *structured* program over which the same quantities can
be computed exactly for any direct-mapped cache geometry
(:mod:`repro.cacheanalysis`).

The IR is deliberately structured (no arbitrary gotos): a program is a tree
of four node kinds —

* :class:`Block` — a straight-line run of instructions occupying a
  contiguous address range, with an optional compute-cycle weight and an
  optional count of *uncached* memory requests (modelling accesses that
  always reach main memory, e.g. data traffic routed over the analysed bus
  in the original extraction).
* :class:`Seq` — sequential composition.
* :class:`Loop` — a loop with a static iteration bound.
* :class:`Alt` — a multi-way branch (if/else, switch).

Structured form keeps the worst-case-path and abstract cache semantics
compositional, which is what makes the parameter extraction exact and fast.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Iterator, Tuple

from repro.errors import ProgramError
from repro.model.platform import CacheGeometry

#: Default size of one instruction in bytes (32-bit RISC encoding).
INSTRUCTION_SIZE = 4


class Node:
    """Base class of all program IR nodes."""

    def iter_blocks(self) -> Iterator["Block"]:
        """Yield every :class:`Block` in the subtree (syntactic order)."""
        raise NotImplementedError

    def scaled(self, factor: float) -> "Node":
        """Copy of the subtree with loop bounds scaled by ``factor``.

        Used to build reduced-size program variants that the discrete-event
        simulator can execute quickly; bounds never drop below 1.
        """
        raise NotImplementedError

    def relocated(self, offset: int) -> "Node":
        """Copy of the subtree with all addresses shifted by ``offset`` bytes.

        Models loading the program at a different base address: distinct
        tasks occupy distinct memory regions, while their cache-set
        footprints shift modulo the cache size.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Block(Node):
    """A straight-line sequence of instructions.

    Attributes:
        start: byte address of the first instruction.
        n_instructions: number of instructions executed by one pass.
        work: compute cycles consumed by one pass assuming all cache hits;
            defaults to one cycle per instruction.
        uncached: main-memory requests issued per pass that bypass the
            instruction cache (always misses, e.g. modelled data traffic).
    """

    start: int
    n_instructions: int
    work: int = -1
    uncached: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ProgramError(f"block start address must be >= 0, got {self.start}")
        if self.n_instructions <= 0:
            raise ProgramError(
                f"blocks must contain at least one instruction, "
                f"got {self.n_instructions}"
            )
        if self.work < 0:
            object.__setattr__(self, "work", self.n_instructions)
        if self.uncached < 0:
            raise ProgramError(f"uncached count must be >= 0, got {self.uncached}")

    @property
    def end(self) -> int:
        """Byte address one past the last instruction."""
        return self.start + self.n_instructions * INSTRUCTION_SIZE

    def memory_blocks(self, geometry: CacheGeometry) -> Tuple[int, ...]:
        """Distinct memory blocks covered, in execution order."""
        first = self.start // geometry.block_size
        last = (self.end - 1) // geometry.block_size
        return tuple(range(first, last + 1))

    def iter_blocks(self) -> Iterator["Block"]:
        yield self

    def scaled(self, factor: float) -> "Block":
        return self

    def relocated(self, offset: int) -> "Block":
        return Block(
            start=self.start + offset,
            n_instructions=self.n_instructions,
            work=self.work,
            uncached=self.uncached,
        )


@dataclass(frozen=True)
class Seq(Node):
    """Sequential composition of program fragments."""

    parts: Tuple[Node, ...]

    def __init__(self, *parts: Node):
        if not parts:
            raise ProgramError("a Seq needs at least one part")
        flattened = []
        for part in parts:
            if isinstance(part, Seq):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        object.__setattr__(self, "parts", tuple(flattened))

    def iter_blocks(self) -> Iterator[Block]:
        for part in self.parts:
            yield from part.iter_blocks()

    def scaled(self, factor: float) -> "Seq":
        return Seq(*(part.scaled(factor) for part in self.parts))

    def relocated(self, offset: int) -> "Seq":
        return Seq(*(part.relocated(offset) for part in self.parts))


@dataclass(frozen=True)
class Loop(Node):
    """A loop executing its body at most ``bound`` times."""

    body: Node
    bound: int

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ProgramError(f"loop bound must be >= 1, got {self.bound}")

    def iter_blocks(self) -> Iterator[Block]:
        yield from self.body.iter_blocks()

    def scaled(self, factor: float) -> "Loop":
        new_bound = max(1, int(round(self.bound * factor)))
        return Loop(body=self.body.scaled(factor), bound=new_bound)

    def relocated(self, offset: int) -> "Loop":
        return Loop(body=self.body.relocated(offset), bound=self.bound)


@dataclass(frozen=True)
class Alt(Node):
    """A multi-way branch; exactly one choice executes per pass."""

    choices: Tuple[Node, ...]

    def __init__(self, *choices: Node):
        if len(choices) < 2:
            raise ProgramError("an Alt needs at least two choices")
        object.__setattr__(self, "choices", tuple(choices))

    def iter_blocks(self) -> Iterator[Block]:
        for choice in self.choices:
            yield from choice.iter_blocks()

    def scaled(self, factor: float) -> "Alt":
        return Alt(*(choice.scaled(factor) for choice in self.choices))

    def relocated(self, offset: int) -> "Alt":
        return Alt(*(choice.relocated(offset) for choice in self.choices))


@dataclass(frozen=True)
class Program:
    """A named synthetic program.

    Attributes:
        name: benchmark name (e.g. ``"bsort100"``).
        root: the program body.
        description: free-form provenance note (what the model imitates).
    """

    name: str
    root: Node
    description: str = ""

    def iter_blocks(self) -> Iterator[Block]:
        """All straight-line blocks of the program."""
        return self.root.iter_blocks()

    def memory_blocks(self, geometry: CacheGeometry) -> FrozenSet[int]:
        """Every memory block the program may fetch, over all paths."""
        blocks = set()
        for block in self.iter_blocks():
            blocks.update(block.memory_blocks(geometry))
        return frozenset(blocks)

    def footprint_bytes(self) -> int:
        """Span of the instruction address range used by the program."""
        starts = [b.start for b in self.iter_blocks()]
        ends = [b.end for b in self.iter_blocks()]
        return max(ends) - min(starts)

    def scaled(self, factor: float) -> "Program":
        """Program with loop bounds scaled by ``factor`` (min bound 1)."""
        if factor <= 0:
            raise ProgramError(f"scale factor must be positive, got {factor}")
        return replace(self, root=self.root.scaled(factor))

    def relocated(self, offset: int) -> "Program":
        """Program loaded ``offset`` bytes higher in memory."""
        if offset < 0:
            raise ProgramError(f"relocation offset must be >= 0, got {offset}")
        return replace(self, root=self.root.relocated(offset))


def worst_case_work(node: Node) -> int:
    """Compute cycles of the longest path, assuming every access hits.

    This is the ``PD`` of the paper's task model: pure processing demand,
    excluding all main-memory time.
    """
    if isinstance(node, Block):
        return node.work
    if isinstance(node, Seq):
        return sum(worst_case_work(part) for part in node.parts)
    if isinstance(node, Loop):
        return node.bound * worst_case_work(node.body)
    if isinstance(node, Alt):
        return max(worst_case_work(choice) for choice in node.choices)
    raise ProgramError(f"unknown node type: {type(node).__name__}")
