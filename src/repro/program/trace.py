"""Concrete worst-case execution traces of synthetic programs.

The discrete-event simulator (:mod:`repro.sim`) executes *jobs* as a
sequence of trace steps: do some compute work, then perform one memory
access (an instruction fetch that may hit in the core's live cache, or an
uncached request that always goes to the bus).  This module lowers a
structured :class:`~repro.program.cfg.Program` into such a step sequence,
following the same worst-demand branch policy as the static extraction so
that the simulated job never demands more than the analysed ``MD``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.cacheanalysis.state import DirectMappedCache
from repro.errors import ProgramError
from repro.model.platform import CacheGeometry
from repro.program.cfg import Alt, Block, Loop, Node, Program, Seq


@dataclass(frozen=True)
class TraceStep:
    """One unit of job progress: ``work`` cycles, then one optional access.

    Attributes:
        work: compute cycles executed before the access.
        block: memory block fetched through the cache, or ``None`` for a
            step that performs no cached access.
        uncached: when ``True`` the step ends with a request that bypasses
            the cache (always a bus access); ``block`` is ``None`` then.
    """

    work: int
    block: Optional[int] = None
    uncached: bool = False

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ProgramError(f"step work must be >= 0, got {self.work}")
        if self.uncached and self.block is not None:
            raise ProgramError("uncached steps carry no memory block")


def _block_steps(block: Block, geometry: CacheGeometry) -> Iterator[TraceStep]:
    memory_blocks = block.memory_blocks(geometry)
    n_units = len(memory_blocks) + block.uncached
    base, extra = divmod(block.work, n_units)
    unit = 0
    for memory_block in memory_blocks:
        yield TraceStep(work=base + (1 if unit < extra else 0), block=memory_block)
        unit += 1
    for _ in range(block.uncached):
        yield TraceStep(work=base + (1 if unit < extra else 0), uncached=True)
        unit += 1


class _TraceBuilder:
    def __init__(self, geometry: CacheGeometry, max_steps: int):
        self.geometry = geometry
        self.max_steps = max_steps
        self.steps: List[TraceStep] = []
        self.state = DirectMappedCache(geometry)

    def emit(self, node: Node) -> None:
        if isinstance(node, Block):
            for step in _block_steps(node, self.geometry):
                self.steps.append(step)
                if step.block is not None:
                    self.state.access(step.block)
            if len(self.steps) > self.max_steps:
                raise ProgramError(
                    f"trace exceeds {self.max_steps} steps; "
                    f"use Program.scaled() to shrink loop bounds"
                )
            return
        if isinstance(node, Seq):
            for part in node.parts:
                self.emit(part)
            return
        if isinstance(node, Loop):
            for _ in range(node.bound):
                self.emit(node.body)
            return
        if isinstance(node, Alt):
            # Greedy worst-demand branch from the *current* concrete state,
            # mirroring the static extraction's branch policy.  Imported
            # lazily: extraction depends on the program IR module, so a
            # top-level import would be circular.
            from repro.cacheanalysis.extraction import _simulate

            demands = []
            for choice in node.choices:
                _, tally = _simulate(choice, self.state)
                demands.append(tally.demand)
            worst = demands.index(max(demands))
            self.emit(node.choices[worst])
            return
        raise ProgramError(f"unknown node type: {type(node).__name__}")


def worst_case_trace(
    program: Program,
    geometry: CacheGeometry,
    max_steps: int = 1_000_000,
) -> List[TraceStep]:
    """Lower ``program`` to a concrete worst-demand trace.

    Loops are fully unrolled (the returned list has one step per memory
    access), so simulator workloads should use programs with modest loop
    bounds — see :meth:`repro.program.cfg.Program.scaled`.
    """
    builder = _TraceBuilder(geometry, max_steps)
    builder.emit(program.root)
    return builder.steps
