"""Synthetic CFG models of the Mälardalen WCET benchmarks.

The paper extracts task parameters from the Mälardalen benchmark suite with
the Heptane static analyser on a 256-set, 32-byte-line direct-mapped
instruction cache.  Neither Heptane nor the exact compiled binaries are
available here, so each benchmark is modelled as a small structured program
whose *extracted* parameters (via :mod:`repro.cacheanalysis`) reproduce the
published footprint exactly — ``|ECB|``, ``|PCB|``, ``|UCB|`` and ``PD`` at
the reference geometry — and the memory demand ``MD``/``MDr`` as closely as
the theory permits (the models are self-consistent by construction:
``MD - MDr = |PCB|``, which the published table, extracted with a richer
micro-architectural model, does not always satisfy).

Model template
--------------
Every benchmark is assembled from four kinds of cache behaviour, matching
how the real programs use an instruction cache:

* ``pu`` *hot sets* — loop-resident code: persistent (uniquely mapped) and
  useful (re-used every iteration).
* ``p_only`` *cold sets* — init/error-handling code executed once:
  persistent but never re-used within a job.
* ``u_conf`` *conflicting hot sets* — two code regions a cache line apart
  by exactly the reference cache size: re-used (useful) but periodically
  evicted by their partner, hence not persistent.
* ``shadow`` *conflicting cold sets* — two regions, each executed once:
  neither useful nor persistent.

plus *uncached* accesses modelling memory traffic that always reaches the
bus.  Conflicting regions are laid out ``REFERENCE_SETS`` blocks apart, so
re-extracting at a larger cache naturally separates them (more PCBs, lower
``MD``) and a smaller cache folds even the hot sets together — exactly the
behaviour the paper's cache-size sweep (Fig. 3c) relies on.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ProgramError
from repro.model.platform import CacheGeometry
from repro.program.cfg import Alt, Block, Loop, Program, Seq

#: Reference number of cache sets the models are calibrated against
#: (the paper's default platform: 256 sets x 32-byte lines).
REFERENCE_SETS = 256

#: Reference line size in bytes.
REFERENCE_BLOCK_SIZE = 32

#: Instructions per cache line at the reference geometry (32 B / 4 B).
_INSTR_PER_LINE = REFERENCE_BLOCK_SIZE // 4


def _region_block(first_line: int, n_lines: int, uncached: int = 0) -> Block:
    """A straight-line region covering ``n_lines`` consecutive cache lines."""
    return Block(
        start=first_line * REFERENCE_BLOCK_SIZE,
        n_instructions=n_lines * _INSTR_PER_LINE,
        uncached=uncached,
    )


def build_benchmark(
    name: str,
    *,
    pd: int,
    pu: int,
    p_only: int = 0,
    u_conf: int = 0,
    shadow: int = 0,
    main_iters: int = 4,
    conf_iters: int = 1,
    conf_inner: int = 3,
    uncached_once: int = 0,
    uncached_loop: int = 0,
    branchy: bool = False,
    description: str = "",
) -> Program:
    """Assemble a benchmark model from the template knobs.

    At the reference geometry the extracted parameters are, by construction:

    * ``|ECB| = pu + p_only + u_conf + shadow``
    * ``|PCB| = pu + p_only``
    * ``|UCB| = pu + u_conf``
    * ``MD  = pu + p_only + 2*shadow + 2*u_conf*conf_iters + U`` with
      ``U = uncached_once + uncached_loop*main_iters``
    * ``MDr = MD - |PCB|``
    * ``PD = pd`` (a prologue work pad absorbs the difference between the
      target and the structural instruction count).
    """
    if pu + p_only + u_conf + shadow == 0:
        raise ProgramError(f"{name}: the model needs at least one cache set")
    if pu + p_only + u_conf + shadow > REFERENCE_SETS:
        raise ProgramError(
            f"{name}: footprint exceeds the {REFERENCE_SETS}-set reference cache"
        )
    if pu == 0 and main_iters > 1 and uncached_loop > 0:
        raise ProgramError(f"{name}: uncached_loop needs a hot region (pu > 0)")

    cursor = 0
    pu_first, cursor = cursor, cursor + pu
    p_only_first, cursor = cursor, cursor + p_only
    conf_first, cursor = cursor, cursor + u_conf
    shadow_first, cursor = cursor, cursor + shadow

    parts = []

    # Entry block: one line of the first populated region, carrying the
    # one-off uncached traffic and the PD calibration pad.  Accessing that
    # line once ahead of its region does not change any extracted count.
    entry_line = pu_first if pu else (conf_first if u_conf else shadow_first)
    if pu == 0 and p_only and not u_conf and not shadow:
        entry_line = p_only_first
    entry = Block(
        start=entry_line * REFERENCE_BLOCK_SIZE,
        n_instructions=_INSTR_PER_LINE,
        uncached=uncached_once,
    )
    parts.append(entry)

    if p_only:
        parts.append(_region_block(p_only_first, p_only))

    if shadow:
        parts.append(_region_block(shadow_first, shadow))
        parts.append(_region_block(shadow_first + REFERENCE_SETS, shadow))

    if u_conf:
        conflict = Loop(
            body=Seq(
                Loop(body=_region_block(conf_first, u_conf), bound=conf_inner),
                _region_block(conf_first + REFERENCE_SETS, u_conf),
            ),
            bound=conf_iters,
        )
        if branchy:
            # A state-machine style branch: the heavy path thrashes the
            # conflicting regions, the light path re-runs resident hot code.
            light = (
                _region_block(pu_first, pu)
                if pu
                else Loop(body=_region_block(conf_first, u_conf), bound=1)
            )
            parts.append(Alt(conflict, light))
        else:
            parts.append(conflict)

    if pu:
        parts.append(
            Loop(
                body=_region_block(pu_first, pu, uncached=uncached_loop),
                bound=main_iters,
            )
        )

    root = Seq(*parts)
    structural_pd = _structural_work(root)
    if structural_pd > pd:
        # The model executes more instructions than the target PD allows
        # (heavily re-executed conflict regions): compress the per-pass
        # work of every block so the structural total lands below the
        # target, then pad the difference back onto the entry block.
        scale = pd / structural_pd
        parts = [_scale_work(part, scale) for part in parts]
        entry = parts[0]
        root = Seq(*parts)
        structural_pd = _structural_work(root)
    pad = pd - structural_pd
    if pad > 0:
        entry = Block(
            start=entry.start,
            n_instructions=entry.n_instructions,
            work=entry.work + pad,
            uncached=entry.uncached,
        )
        parts[0] = entry
        root = Seq(*parts)
    return Program(name=name, root=root, description=description)


def _scale_work(node, scale: float):
    """Copy of ``node`` with every block's per-pass work scaled down."""
    if isinstance(node, Block):
        return Block(
            start=node.start,
            n_instructions=node.n_instructions,
            work=max(0, int(node.work * scale)),
            uncached=node.uncached,
        )
    if isinstance(node, Seq):
        return Seq(*(_scale_work(part, scale) for part in node.parts))
    if isinstance(node, Loop):
        return Loop(body=_scale_work(node.body, scale), bound=node.bound)
    if isinstance(node, Alt):
        return Alt(*(_scale_work(choice, scale) for choice in node.choices))
    raise ProgramError(f"unknown node type: {type(node).__name__}")


def _structural_work(root) -> int:
    from repro.program.cfg import worst_case_work

    return worst_case_work(root)


# ---------------------------------------------------------------------------
# The benchmark suite
# ---------------------------------------------------------------------------

#: Models of the six benchmarks whose parameters Table I publishes.
#: Calibration targets (|ECB|, |PCB|, |UCB|, PD) match the table exactly.
_PUBLISHED_MODELS: Tuple[Program, ...] = (
    build_benchmark(
        "lcdnum",
        pd=984,
        pu=20,
        main_iters=4,
        uncached_once=124,
        branchy=False,
        description="LCD digit driver: tiny hot loop, fully persistent",
    ),
    build_benchmark(
        "bsort100",
        pd=710289,
        pu=18,
        p_only=2,
        main_iters=50,
        uncached_loop=179,
        uncached_once=20,
        description="bubble sort: tiny code, dominated by uncached data traffic",
    ),
    build_benchmark(
        "ludcmp",
        pd=27036,
        pu=98,
        main_iters=20,
        uncached_once=763,
        description="LU decomposition: mid-size fully persistent kernel",
    ),
    build_benchmark(
        "fdct",
        pd=6550,
        pu=22,
        u_conf=36,
        shadow=48,
        main_iters=5,
        conf_inner=3,
        conf_iters=7,
        description="forward DCT: small hot core plus conflicting helpers",
    ),
    build_benchmark(
        "nsichneu",
        pd=22009,
        pu=0,
        u_conf=256,
        main_iters=1,
        conf_iters=28,
        conf_inner=2,
        description="Petri-net simulator: code far exceeding the cache, zero PCBs",
    ),
    build_benchmark(
        "statemate",
        pd=10586,
        pu=36,
        u_conf=220,
        main_iters=4,
        conf_iters=4,
        conf_inner=2,
        branchy=True,
        description="statechart code: small persistent core, thrashing branches",
    ),
)

#: Models of nineteen further Mälardalen benchmarks (the paper uses the whole
#: suite; the remaining rows of its parameter table appear only in the
#: authors' RTSS 2017 paper).  These are reconstructions spanning the same
#: diversity; their dataset rows are *extracted from the models*, so they
#: are self-consistent by construction.
_RECONSTRUCTED_MODELS: Tuple[Program, ...] = (
    build_benchmark(
        "bs",
        pd=6000,
        pu=10,
        p_only=2,
        main_iters=4,
        uncached_once=118,
        description="binary search over 15 entries (reconstruction)",
    ),
    build_benchmark(
        "fibcall",
        pd=12000,
        pu=8,
        main_iters=10,
        description="iterative Fibonacci (reconstruction)",
    ),
    build_benchmark(
        "insertsort",
        pd=6573,
        pu=14,
        p_only=1,
        main_iters=8,
        uncached_loop=40,
        uncached_once=60,
        description="insertion sort on 10 elements (reconstruction)",
    ),
    build_benchmark(
        "crc",
        pd=36159,
        pu=40,
        p_only=5,
        main_iters=12,
        uncached_loop=40,
        uncached_once=90,
        description="CRC over a 1 KiB message (reconstruction)",
    ),
    build_benchmark(
        "matmult",
        pd=200436,
        pu=40,
        p_only=2,
        main_iters=16,
        uncached_loop=190,
        uncached_once=40,
        description="20x20 integer matrix multiply (reconstruction)",
    ),
    build_benchmark(
        "jfdctint",
        pd=50000,
        pu=30,
        u_conf=30,
        shadow=30,
        main_iters=4,
        conf_inner=3,
        conf_iters=24,
        description="integer JPEG DCT (reconstruction)",
    ),
    build_benchmark(
        "ns",
        pd=10436,
        pu=24,
        p_only=2,
        main_iters=6,
        uncached_loop=90,
        description="nested-loop array search (reconstruction)",
    ),
    build_benchmark(
        "cnt",
        pd=9000,
        pu=22,
        p_only=3,
        main_iters=5,
        uncached_loop=40,
        description="matrix counting kernel (reconstruction)",
    ),
    build_benchmark(
        "expint",
        pd=6000,
        pu=12,
        p_only=4,
        main_iters=6,
        uncached_loop=40,
        description="series expansion of the exponential integral (reconstruction)",
    ),
    build_benchmark(
        "fir",
        pd=14000,
        pu=18,
        main_iters=10,
        uncached_loop=30,
        description="finite impulse response filter (reconstruction)",
    ),
    build_benchmark(
        "janne_complex",
        pd=2500,
        pu=10,
        main_iters=3,
        uncached_once=50,
        description="nested-loop control example (reconstruction)",
    ),
    build_benchmark(
        "qurt",
        pd=9000,
        pu=28,
        p_only=2,
        main_iters=4,
        uncached_once=170,
        description="quadratic root computation (reconstruction)",
    ),
    build_benchmark(
        "sqrt",
        pd=1500,
        pu=14,
        main_iters=5,
        uncached_once=46,
        description="Newton square root (reconstruction)",
    ),
    build_benchmark(
        "select",
        pd=5000,
        pu=20,
        p_only=2,
        main_iters=8,
        uncached_loop=25,
        description="quickselect of the k-th element (reconstruction)",
    ),
    build_benchmark(
        "ud",
        pd=20000,
        pu=70,
        p_only=8,
        main_iters=5,
        uncached_once=222,
        description="LU-based linear equation solver (reconstruction)",
    ),
    build_benchmark(
        "duff",
        pd=7000,
        pu=16,
        u_conf=20,
        shadow=8,
        main_iters=3,
        conf_iters=5,
        conf_inner=2,
        description="Duff's device copy loop (reconstruction)",
    ),
    build_benchmark(
        "edn",
        pd=30000,
        pu=50,
        u_conf=30,
        main_iters=6,
        conf_iters=10,
        conf_inner=4,
        description="vector/matrix DSP kernels (reconstruction)",
    ),
    build_benchmark(
        "compress",
        pd=10000,
        pu=30,
        p_only=6,
        shadow=20,
        main_iters=6,
        uncached_loop=35,
        description="data compression kernel (reconstruction)",
    ),
    build_benchmark(
        "minver",
        pd=60000,
        pu=60,
        u_conf=40,
        shadow=14,
        main_iters=3,
        conf_inner=2,
        conf_iters=15,
        uncached_once=10,
        description="3x3 matrix inversion (reconstruction)",
    ),
)

ALL_MODELS: Tuple[Program, ...] = _PUBLISHED_MODELS + _RECONSTRUCTED_MODELS

_BY_NAME: Dict[str, Program] = {program.name: program for program in ALL_MODELS}


def benchmark_program(name: str) -> Program:
    """Look up one benchmark model by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ProgramError(
            f"unknown benchmark {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def benchmark_names() -> Tuple[str, ...]:
    """Names of all modelled benchmarks, published ones first."""
    return tuple(program.name for program in ALL_MODELS)


def published_names() -> Tuple[str, ...]:
    """Benchmarks whose parameters appear verbatim in the paper's Table I."""
    return tuple(program.name for program in _PUBLISHED_MODELS)


def reference_geometry() -> CacheGeometry:
    """The geometry the models are calibrated against (256 x 32 B)."""
    return CacheGeometry(
        num_sets=REFERENCE_SETS, block_size=REFERENCE_BLOCK_SIZE
    )
