"""Deadline budgets and cooperative cancellation for long-running analyses.

The WCRT fixed point of Eq. (19) is monotone but its iteration count is
unbounded in practice: a wildly over-utilised task set can spend enormous
numbers of inner iterations before any estimate crosses a deadline.  Before
this module the only defence was the sweep supervisor's *chunk-level* hang
watchdog — a blunt instrument that kills a whole worker process and
bisects its chunk.  :class:`Budget` adds the in-process layer real servers
have: every iteration boundary of the analysis kernel *ticks* the budget,
and an over-budget or cancelled analysis aborts right there with a typed
:class:`~repro.errors.BudgetExceeded` / :class:`~repro.errors.Cancelled`
carrying the partial estimates instead of hanging until the watchdog fires.

Design constraints, in order:

1. **Bit-identical completions.**  A budget check must never perturb an
   analysis that finishes: ticks only count and compare, they never feed
   back into any computed value.  The differential grid in
   ``tests/test_differential.py`` pins this down with an effectively
   infinite budget threaded through the whole kernel.
2. **Deterministic abort points.**  The iteration ceiling counts *inner
   fixed-point iterations* — a quantity that is itself bit-identical
   across the memoization/bitset/warm-start kernel variants — so a ceiling
   abort happens at the same boundary on every machine and every rerun.
   Wall-clock deadlines are inherently nondeterministic; tests make them
   deterministic by injecting a fake ``clock``.
3. **Cheap enough to leave on.**  A tick is an integer increment and one
   comparison; the (comparatively expensive) clock read happens only every
   ``wall_check_stride`` ticks.

Abort consistency: an aborted analysis leaves all shared state (derived
interference tables, calculator caches, warm-start seeds) exactly as
sound for the next run as a cold start — the shared tables are pure
functions of the immutable task set, per-run memo caches die with the
run's context, and warm-start seeds are only recorded after a fully
*successful* schedulable analysis.  ``tests/test_budget.py`` asserts the
rerun-after-abort is bit-identical to a cold run at every possible abort
boundary.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import AnalysisError, BudgetExceeded, Cancelled

#: Ticks between wall-clock reads.  32 keeps the deadline detection latency
#: far below any sensible budget (an inner iteration is microseconds) while
#: making the common tick a pure integer operation.
DEFAULT_WALL_CHECK_STRIDE = 32


class CancelToken:
    """Cooperative cancellation flag, safe to share across threads.

    The requesting side calls :meth:`cancel`; the analysis side observes it
    at the next budget tick and aborts with
    :class:`~repro.errors.Cancelled`.  Built on :class:`threading.Event`
    so a service thread can cancel an analysis running in another thread
    (in-process mode) without locks of its own.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


class Budget:
    """Wall-clock + iteration ceiling for one analysis, checked at ticks.

    Parameters:
        wall_seconds: wall-clock allowance, measured from :meth:`start`
            (``None`` = unlimited).
        max_iterations: ceiling on the number of :meth:`tick` calls
            (``None`` = unlimited).  Deterministic: the analysis kernel
            ticks once per inner fixed-point iteration, a count that is
            identical across kernel variants and reruns.
        token: optional :class:`CancelToken` observed at every check.
        clock: monotonic time source; injectable so tests drive wall-clock
            deadlines deterministically.
        wall_check_stride: ticks between wall-clock reads (>= 1).  1 reads
            the clock on every tick (tests); the default keeps the hot
            path clock-free.

    A budget is single-use state, not configuration: construct one per
    analysis (or per request) and pass it down.  :meth:`start` arms the
    wall-clock deadline and is idempotent, so nested layers may all call
    it; the first call wins.
    """

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
        token: Optional[CancelToken] = None,
        clock: Callable[[], float] = time.monotonic,
        wall_check_stride: int = DEFAULT_WALL_CHECK_STRIDE,
    ) -> None:
        if wall_seconds is not None and not wall_seconds > 0:
            raise AnalysisError(
                f"budget wall_seconds must be positive, got {wall_seconds}"
            )
        if max_iterations is not None and max_iterations <= 0:
            raise AnalysisError(
                f"budget max_iterations must be positive, got {max_iterations}"
            )
        if wall_check_stride < 1:
            raise AnalysisError(
                f"wall_check_stride must be >= 1, got {wall_check_stride}"
            )
        self.wall_seconds = wall_seconds
        self.max_iterations = max_iterations
        self.token = token
        self._clock = clock
        self._stride = wall_check_stride
        #: Ticks consumed so far (inner iterations, simulator events, ...).
        self.iterations = 0
        self._checks_until_clock = 0
        self._started_at: Optional[float] = None
        #: Parent budget this one was sliced from (see :meth:`child`).
        #: Child ticks charge the parent too, so a slice can never spend
        #: resources the enclosing request does not have.
        self._parent: Optional["Budget"] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the wall-clock deadline (idempotent; returns ``self``)."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has been called."""
        return self._started_at is not None

    def child(
        self, fraction: float, min_seconds: Optional[float] = None
    ) -> "Budget":
        """Slice off a child budget covering ``fraction`` of what is left.

        The degradation ladder (:mod:`repro.analysis.ladder`) gives each
        tier a slice of the request's remaining budget so an expensive
        tier cannot starve the cheaper fallbacks behind it.  Guarantees:

        * A child can never exceed its parent: its wall allowance is
          capped at the parent's *remaining* seconds (``min_seconds``, a
          floor for admitted-but-nearly-expired requests, is likewise
          capped), its iteration ceiling at the parent's remaining ticks,
          and every child tick also charges the parent — so the parent's
          own limits fire inside the child the moment they are reached.
        * The cancel token, clock and stride are shared, so cancellation
          and injected test clocks behave identically at every depth.
        * An unlimited parent dimension stays unlimited in the child.

        The child is returned already started (its wall deadline is
        anchored at the slice point).  Raises
        :class:`~repro.errors.BudgetExceeded` when the parent is already
        exhausted — there is nothing left to slice.
        """
        if not 0 < fraction <= 1:
            raise AnalysisError(
                f"child fraction must be in (0, 1], got {fraction}"
            )
        self.start()
        remaining = self.remaining()
        wall: Optional[float] = None
        if remaining is not None:
            if remaining <= 0:
                raise BudgetExceeded(
                    f"cannot slice a child budget: parent exhausted its "
                    f"{self.wall_seconds}s wall-clock allowance"
                )
            wall = remaining * fraction
            if min_seconds is not None:
                wall = max(wall, min(min_seconds, remaining))
        ceiling: Optional[int] = None
        if self.max_iterations is not None:
            left = self.max_iterations - self.iterations
            if left <= 0:
                raise BudgetExceeded(
                    f"cannot slice a child budget: parent exhausted its "
                    f"iteration ceiling of {self.max_iterations}"
                )
            ceiling = max(1, int(left * fraction))
        child = Budget(
            wall_seconds=wall,
            max_iterations=ceiling,
            token=self.token,
            clock=self._clock,
            wall_check_stride=self._stride,
        )
        child._parent = self
        return child.start()

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    def remaining(self) -> Optional[float]:
        """Wall-clock seconds left, or ``None`` for an unlimited budget."""
        if self.wall_seconds is None:
            return None
        return max(0.0, self.wall_seconds - self.elapsed())

    # -- checks -------------------------------------------------------------

    def tick(self, count: int = 1) -> None:
        """Charge ``count`` iterations and abort if any limit is hit.

        Called at iteration boundaries of the analysis kernel.  Raises
        :class:`~repro.errors.Cancelled` when the token fired,
        :class:`~repro.errors.BudgetExceeded` when the iteration ceiling
        or (every ``wall_check_stride`` ticks) the wall-clock deadline is
        exceeded.  Never mutates anything an analysis result depends on.
        """
        if self._parent is not None:
            self._parent.tick(count)
        self.iterations += count
        if (
            self.max_iterations is not None
            and self.iterations > self.max_iterations
        ):
            raise BudgetExceeded(
                f"analysis exceeded its iteration ceiling of "
                f"{self.max_iterations} (at iteration {self.iterations})"
            )
        self._checks_until_clock -= 1
        if self._checks_until_clock <= 0:
            self._checks_until_clock = self._stride
            self.check()

    def check(self) -> None:
        """Abort on cancellation or wall-clock overrun, without charging.

        The no-increment variant used by coarser-grained layers (the
        decomposition, the CPRO/CRPD window folds) where iteration counts
        would not be comparable across kernel variants.
        """
        if self._parent is not None:
            self._parent.check()
        token = self.token
        if token is not None and token.cancelled:
            raise Cancelled(
                f"analysis cancelled after {self.iterations} iteration(s)"
            )
        if self.wall_seconds is not None and self._started_at is not None:
            elapsed = self._clock() - self._started_at
            if elapsed > self.wall_seconds:
                raise BudgetExceeded(
                    f"analysis exceeded its {self.wall_seconds}s wall-clock "
                    f"budget after {elapsed:.3f}s "
                    f"({self.iterations} iteration(s))"
                )
