"""Lightweight performance counters for the analysis kernel.

The WCRT analysis is the hot path of every experiment sweep; this module
gives it observable internals so performance work can be measured instead
of guessed.  :class:`PerfCounters` tracks

* how hard the fixed point worked (``analyses``, ``outer_iterations``,
  ``inner_iterations``),
* how well the epoch-keyed memoization performed (per-term cache hits and
  misses for the ``bao`` / ``bao_low`` / multiset-CRPD window terms; the
  per-pair :math:`W` terms are fused into the ``bao`` sums),
* how often the warm-started fixed point and the bitmask cache-set kernel
  engaged (``warm_starts``, ``warm_start_iterations_saved``,
  ``bitset_table_builds``),
* how much cross-analysis work the sweep layer avoided: batch-compiled
  task sets and vectorised popcount batches (``batch_analyses``,
  ``array_kernel_batches``), accepted adjacent-point/-variant warm starts
  and the outer rounds they skipped (``adjacent_warm_starts``,
  ``adjacent_warm_start_iterations_saved``), and analyses skipped via the
  variant dominance ordering (``dominance_skips``), and
* per-phase wall-clock time (task-set ``generation`` vs ``analysis``).

Counters are plain integers so the bookkeeping stays cheap enough to leave
enabled unconditionally inside the kernel.  Worker processes of a parallel
sweep each accumulate their own :class:`PerfCounters` and the parent
process :meth:`~PerfCounters.merge`\\ s them; the CLI's ``--profile`` flag
aggregates into the module-level :func:`global_counters` and renders a
report after each experiment.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, Iterator, Optional, Tuple


@dataclass
class PerfCounters:
    """Counters describing one or more :func:`analyze_taskset` runs."""

    analyses: int = 0
    outer_iterations: int = 0
    inner_iterations: int = 0
    bao_hits: int = 0
    bao_misses: int = 0
    bao_low_hits: int = 0
    bao_low_misses: int = 0
    crpd_window_hits: int = 0
    crpd_window_misses: int = 0
    #: Analyses seeded from a previously converged response-time map (same
    #: task set, platform and config) instead of the cold isolated WCETs.
    warm_starts: int = 0
    #: Outer rounds skipped by warm starts: the recorded cold run's
    #: ``outer_iterations`` minus the single re-verification round.
    warm_start_iterations_saved: int = 0
    #: Analyses seeded from an *adjacent* converged map — a neighbouring
    #: sweep point's sample, the previous probe of a sensitivity bisection,
    #: or a dominating analysis variant of the same task set — accepted
    #: after re-verification (see ``WarmHint`` in :mod:`repro.analysis.wcrt`).
    adjacent_warm_starts: int = 0
    #: Outer rounds skipped by accepted adjacent warm starts: the donor's
    #: recorded round count minus the rounds the hinted run executed.
    adjacent_warm_start_iterations_saved: int = 0
    #: Interference-table constructions (one per task set on first use of
    #: the bitmask kernel; reused across runs through ``TaskSet.derived``).
    bitset_table_builds: int = 0
    #: Task sets whose per-pair CRPD/CPRO tables were batch-compiled by the
    #: :class:`~repro.model.interference.BatchInterferenceTable` kernel.
    batch_analyses: int = 0
    #: Batch compilations whose popcounts ran on the vectorised numpy
    #: backend (<= 64-set platforms with the optional ``fast`` extra).
    array_kernel_batches: int = 0
    #: Analyses skipped entirely because a dominating variant of the same
    #: task set already failed with a genuine deadline miss (see
    #: :mod:`repro.experiments.runner`).
    dominance_skips: int = 0
    #: Cold fixed-point batches executed by the lockstep multi-sample
    #: engine (:mod:`repro.analysis.lockstep`) — one per group of lanes
    #: iterated together as structure-of-arrays state.
    lockstep_batches: int = 0
    #: Lanes retired from a lockstep batch, whatever the exit: converged
    #: schedulable, deadline miss, budget abort or a per-lane error.
    lane_retirements: int = 0
    #: Task sets served from the worker-resident state plane
    #: (:mod:`repro.experiments.stateplane`) with their compiled
    #: interference tables, batch-prefill markers and warm seeds intact.
    resident_table_hits: int = 0
    #: State-plane lookups that had to generate (and compile) fresh state.
    resident_table_misses: int = 0
    #: Queued multi-item chunks split in two by the supervisor's
    #: work-stealing scheduler so idle workers could pick up the half.
    chunks_stolen: int = 0
    #: Batches that requested the vectorised array/lockstep kernels while
    #: numpy (the optional ``.[fast]`` extra) was not importable — the
    #: bit-identical pure-Python fallback ran instead (a one-time warning
    #: accompanies the first occurrence; see
    #: :func:`repro.model.interference.note_array_kernel_unavailable`).
    array_kernel_unavailable: int = 0
    #: Analyses aborted cooperatively by a budget or cancel token (see
    #: :mod:`repro.budget`) instead of running to a verdict.
    budget_aborts: int = 0
    #: Requests served from the persistent content-addressed result cache
    #: (:mod:`repro.resultcache`) without running any analysis.
    result_cache_hits: int = 0
    #: Cache lookups that found no (valid) entry, including entries
    #: quarantined at read time.
    result_cache_misses: int = 0
    #: Completed results written into the persistent cache.
    result_cache_stores: int = 0
    #: Entries dropped by the LRU / byte-budget eviction policy.
    result_cache_evictions: int = 0
    #: Corrupt cache/seed files moved aside by the tolerant loader
    #: (truncated JSON, checksum mismatches, empty files, foreign tags).
    result_cache_quarantines: int = 0
    #: Warm-start seeds loaded from the persisted seed store and offered
    #: to an analysis (each is strictly re-verified before use).
    warm_seed_hits: int = 0
    #: Converged schedulable maps persisted into the warm-seed store.
    warm_seed_stores: int = 0
    #: Requests that joined an identical in-flight computation instead of
    #: running their own analysis (see the service daemon's coalescing).
    coalesced_requests: int = 0
    #: Requests shed before running any analysis: expired on arrival,
    #: or dropped at admission by the priority-class overload policy.
    shed_requests: int = 0
    #: Responses produced by a degraded ladder tier (baseline or coarse)
    #: instead of the exact configuration — including brownout answers.
    degraded_responses: int = 0
    #: Ladder tier executions, one per attempted tier (exact, baseline
    #: and coarse all count; see :mod:`repro.analysis.ladder`).
    ladder_tier_runs: int = 0
    #: Requests rejected because their propagated deadline had already
    #: expired on arrival (service side) or before a retry (router side).
    deadline_expired_rejects: int = 0
    #: Hedge requests the router issued for idempotent analyses after the
    #: measured-p95 delay elapsed without a primary response.
    hedges_sent: int = 0
    #: Hedged forwards where the hedge answered before the primary.
    hedges_won: int = 0
    #: Requests the shard router forwarded to a backend successfully.
    router_forwards: int = 0
    #: Forward attempts retried after a dead, not-ready or timed-out shard.
    router_retries: int = 0
    #: Requests that succeeded on a non-primary shard after failover.
    router_failovers: int = 0
    verify_cases: int = 0
    verify_shrink_steps: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Per-oracle evaluation counts of the soundness fuzzer (repro.verify).
    oracle_checks: Dict[str, int] = field(default_factory=dict)
    #: Per-oracle violation counts (non-empty only when a bug was found).
    oracle_violations: Dict[str, int] = field(default_factory=dict)

    _INT_FIELDS: ClassVar[Tuple[str, ...]] = ()  # filled in after the class body

    # -- aggregate views ----------------------------------------------------

    @property
    def memo_hits(self) -> int:
        """Total cache hits across every memoized interference term."""
        return self.bao_hits + self.bao_low_hits + self.crpd_window_hits

    @property
    def memo_misses(self) -> int:
        """Total cache misses across every memoized interference term."""
        return self.bao_misses + self.bao_low_misses + self.crpd_window_misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of memoized-term lookups served from cache (0 if none)."""
        lookups = self.memo_hits + self.memo_misses
        return self.memo_hits / lookups if lookups else 0.0

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter and drop the recorded phase timings."""
        for name in self._INT_FIELDS:
            setattr(self, name, 0)
        self.phase_seconds.clear()
        self.oracle_checks.clear()
        self.oracle_violations.clear()

    def merge(self, other: "PerfCounters") -> None:
        """Accumulate ``other``'s counters into this instance."""
        for name in self._INT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        for mapping in ("oracle_checks", "oracle_violations"):
            mine = getattr(self, mapping)
            for oracle, count in getattr(other, mapping).items():
                mine[oracle] = mine.get(oracle, 0) + count

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the enclosed block into ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    # -- reporting ----------------------------------------------------------

    def render(self) -> str:
        """Human-readable profile report (the CLI's ``--profile`` output)."""
        lines = ["Performance profile:"]
        lines.append(
            f"  analyses          {self.analyses:>12d}   "
            f"outer iterations {self.outer_iterations:>10d}   "
            f"inner iterations {self.inner_iterations:>10d}"
        )
        terms = (
            ("bao", self.bao_hits, self.bao_misses),
            ("bao_low", self.bao_low_hits, self.bao_low_misses),
            ("crpd-window", self.crpd_window_hits, self.crpd_window_misses),
        )
        for label, hits, misses in terms:
            lookups = hits + misses
            ratio = hits / lookups if lookups else 0.0
            lines.append(
                f"  memo {label:<12} hits {hits:>10d}   misses {misses:>10d}   "
                f"hit ratio {100 * ratio:5.1f}%"
            )
        lines.append(
            f"  memo total        hits {self.memo_hits:>10d}   "
            f"misses {self.memo_misses:>10d}   "
            f"hit ratio {100 * self.hit_ratio:5.1f}%"
        )
        if self.warm_starts or self.bitset_table_builds:
            lines.append(
                f"  warm starts       {self.warm_starts:>12d}   "
                f"outer rounds saved {self.warm_start_iterations_saved:>8d}   "
                f"bitset tables {self.bitset_table_builds:>6d}"
            )
        if self.adjacent_warm_starts or self.dominance_skips:
            lines.append(
                f"  adjacent warm     {self.adjacent_warm_starts:>12d}   "
                f"outer rounds saved {self.adjacent_warm_start_iterations_saved:>8d}   "
                f"dominance skips {self.dominance_skips:>4d}"
            )
        if self.batch_analyses:
            lines.append(
                f"  batched tasksets  {self.batch_analyses:>12d}   "
                f"array batches    {self.array_kernel_batches:>10d}"
            )
        if self.lockstep_batches:
            lines.append(
                f"  lockstep batches  {self.lockstep_batches:>12d}   "
                f"lane retirements {self.lane_retirements:>10d}"
            )
        if self.resident_table_hits or self.resident_table_misses:
            lookups = self.resident_table_hits + self.resident_table_misses
            ratio = self.resident_table_hits / lookups if lookups else 0.0
            lines.append(
                f"  resident plane    hits {self.resident_table_hits:>10d}   "
                f"misses {self.resident_table_misses:>10d}   "
                f"hit ratio {100 * ratio:5.1f}%"
            )
        if self.chunks_stolen:
            lines.append(f"  chunks stolen     {self.chunks_stolen:>12d}")
        if self.array_kernel_unavailable:
            lines.append(
                f"  array kernel unavailable (no numpy) "
                f"{self.array_kernel_unavailable:>10d}"
            )
        if self.budget_aborts:
            lines.append(f"  budget aborts     {self.budget_aborts:>12d}")
        if (
            self.result_cache_hits
            or self.result_cache_misses
            or self.result_cache_stores
        ):
            lookups = self.result_cache_hits + self.result_cache_misses
            ratio = self.result_cache_hits / lookups if lookups else 0.0
            lines.append(
                f"  result cache      hits {self.result_cache_hits:>10d}   "
                f"misses {self.result_cache_misses:>10d}   "
                f"hit ratio {100 * ratio:5.1f}%"
            )
            lines.append(
                f"  result cache      stores {self.result_cache_stores:>8d}   "
                f"evictions {self.result_cache_evictions:>7d}   "
                f"quarantines {self.result_cache_quarantines:>4d}"
            )
        if self.warm_seed_hits or self.warm_seed_stores:
            lines.append(
                f"  warm seeds        loads {self.warm_seed_hits:>9d}   "
                f"stores {self.warm_seed_stores:>10d}"
            )
        if self.coalesced_requests:
            lines.append(
                f"  coalesced         {self.coalesced_requests:>12d}"
            )
        if self.shed_requests or self.deadline_expired_rejects:
            lines.append(
                f"  shed requests     {self.shed_requests:>12d}   "
                f"deadline expired {self.deadline_expired_rejects:>10d}"
            )
        if self.degraded_responses or self.ladder_tier_runs:
            lines.append(
                f"  degraded answers  {self.degraded_responses:>12d}   "
                f"ladder tier runs {self.ladder_tier_runs:>10d}"
            )
        if self.hedges_sent:
            lines.append(
                f"  hedges sent       {self.hedges_sent:>12d}   "
                f"hedges won       {self.hedges_won:>10d}"
            )
        if self.router_forwards or self.router_retries:
            lines.append(
                f"  router forwards   {self.router_forwards:>12d}   "
                f"retries {self.router_retries:>9d}   "
                f"failovers {self.router_failovers:>7d}"
            )
        if self.verify_cases:
            lines.append(
                f"  verify cases      {self.verify_cases:>12d}   "
                f"shrink steps     {self.verify_shrink_steps:>10d}"
            )
        for oracle in sorted(self.oracle_checks):
            violations = self.oracle_violations.get(oracle, 0)
            lines.append(
                f"  oracle {oracle:<20} checks {self.oracle_checks[oracle]:>8d}   "
                f"violations {violations:>6d}"
            )
        for phase in sorted(self.phase_seconds):
            lines.append(f"  phase {phase:<12} {self.phase_seconds[phase]:10.3f} s")
        return "\n".join(lines)


PerfCounters._INT_FIELDS = tuple(
    f.name for f in fields(PerfCounters) if f.type == "int"
)


_GLOBAL = PerfCounters()


def global_counters() -> PerfCounters:
    """Process-wide aggregate used by the CLI's ``--profile`` reporting."""
    return _GLOBAL


def reset_global_counters() -> None:
    """Zero the process-wide aggregate (called before each experiment)."""
    _GLOBAL.reset()


def merge_global(counters: Optional[PerfCounters]) -> None:
    """Merge ``counters`` (if any) into the process-wide aggregate."""
    if counters is not None:
        _GLOBAL.merge(counters)
