"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """An entity of the system model (task, task set, platform) is invalid."""


class AnalysisError(ReproError):
    """A schedulability analysis was configured or invoked incorrectly."""


class ConvergenceError(AnalysisError):
    """A fixed-point iteration exceeded its iteration budget.

    The WCRT recurrence of Eq. (19) is monotone, so failing to converge within
    the configured bound almost always means the task set is wildly
    over-utilised; the analyses treat that as "unschedulable" rather than
    raising, and this error is reserved for misconfiguration (e.g. a zero
    iteration limit).
    """


class AnalysisAborted(AnalysisError):
    """An analysis stopped cooperatively at an iteration boundary.

    Base class of :class:`BudgetExceeded` and :class:`Cancelled`.  The
    abort is *typed data*, not a crash: :attr:`partial` carries the
    estimates reached so far (a ``WcrtResult`` with
    ``schedulable=False`` when the abort happened inside the WCRT kernel,
    ``None`` for aborts in budget-only layers such as the simulator),
    :attr:`iterations` the budget ticks spent and :attr:`elapsed` the
    wall-clock seconds consumed.  All shared caches (derived interference
    tables, calculator caches, warm-start seeds) are left in a state where
    a rerun is bit-identical to a cold run — see :mod:`repro.budget`.
    """

    def __init__(self, message: str = "") -> None:
        super().__init__(message)
        #: Partial ``WcrtResult`` reached when the abort fired (if any).
        self.partial = None
        #: Budget ticks consumed when the abort fired.
        self.iterations = 0
        #: Wall-clock seconds consumed when the abort fired.
        self.elapsed = 0.0


class BudgetExceeded(AnalysisAborted):
    """The analysis ran out of its wall-clock or iteration budget."""


class Cancelled(AnalysisAborted):
    """The analysis observed its :class:`~repro.budget.CancelToken`."""


class ProgramError(ReproError):
    """A synthetic program model (CFG) is structurally invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class GenerationError(ReproError):
    """Random task-set generation received unsatisfiable parameters."""


class ExecutionError(ReproError):
    """The resilient sweep-execution layer failed outside of the analysis.

    Base class for errors of :mod:`repro.experiments.supervisor` and
    :mod:`repro.experiments.journal`: worker-pool management, checkpoint
    journals and interrupt handling.  Per-sample *analysis* failures are
    not raised at all — they are quarantined as
    :class:`repro.experiments.supervisor.SampleFailure` records.
    """


class WorkerCrashError(ExecutionError):
    """A worker process died abruptly (segfault, ``os._exit``, OOM kill).

    The supervisor recovers by respawning the pool and bisecting the failed
    chunk; this error only reaches the caller when recovery itself is
    impossible (e.g. the pool cannot be respawned).
    """


class ChunkTimeoutError(ExecutionError):
    """A worker chunk exceeded its per-chunk wall-clock budget (hang)."""


class JournalError(ExecutionError):
    """A run journal is malformed or belongs to a different sweep."""


class CacheError(ExecutionError):
    """The persistent result cache was misused by a caller.

    Raised only for programmer errors (malformed fingerprints, invalid
    store configuration).  *Corrupt entries never raise*: the
    corruption-tolerant loader of :mod:`repro.resultcache` quarantines
    them and reports a miss, so on-disk damage degrades throughput, not
    availability.
    """


class SweepInterrupted(ExecutionError):
    """The sweep was stopped by SIGINT/SIGTERM after flushing its journal.

    Carries a human-readable hint on how to resume; the CLI turns it into a
    clean non-zero exit instead of a traceback.
    """
