"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """An entity of the system model (task, task set, platform) is invalid."""


class AnalysisError(ReproError):
    """A schedulability analysis was configured or invoked incorrectly."""


class ConvergenceError(AnalysisError):
    """A fixed-point iteration exceeded its iteration budget.

    The WCRT recurrence of Eq. (19) is monotone, so failing to converge within
    the configured bound almost always means the task set is wildly
    over-utilised; the analyses treat that as "unschedulable" rather than
    raising, and this error is reserved for misconfiguration (e.g. a zero
    iteration limit).
    """


class ProgramError(ReproError):
    """A synthetic program model (CFG) is structurally invalid."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class GenerationError(ReproError):
    """Random task-set generation received unsatisfiable parameters."""
