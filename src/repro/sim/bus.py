"""Cycle-granular memory bus arbiters for the simulator.

One bus transaction occupies the bus for ``d_mem`` cycles and is never
preempted once started.  The arbiter decides which pending request is
served when the bus becomes available:

* :class:`FixedPriorityArbiter` — requests inherit the priority of the
  issuing task; ties broken by arrival time (work conserving).
* :class:`RoundRobinArbiter` — a token rotates over the cores; the token
  holder may issue up to ``slot_size`` consecutive transactions, and empty
  cores are skipped immediately (work conserving).
* :class:`TdmaArbiter` — time is divided into slots of ``d_mem`` cycles;
  core ``c`` owns slots ``c*s .. (c+1)*s - 1`` of every cycle of
  ``m*s`` slots and may only *start* a transaction inside its own window
  with enough of the window left to finish it (non-work conserving: the
  bus idles through unowned or unused slots).

The perfect bus needs no arbiter: the engine services such requests
immediately and in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.model.platform import Platform


@dataclass(order=True)
class BusRequest:
    """One outstanding memory transaction.

    Ordering is (priority, arrival, sequence) so that a heap of requests
    pops the highest-priority, oldest request first.
    """

    priority: int
    arrival: int
    sequence: int
    core: int = field(compare=False)
    payload: object = field(compare=False, default=None)


class BusArbiter:
    """Common queueing behaviour; subclasses implement selection."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self._pending: List[BusRequest] = []

    def enqueue(self, request: BusRequest) -> None:
        """Add a request to the pending pool."""
        self._pending.append(request)

    @property
    def has_pending(self) -> bool:
        """Whether any request is waiting."""
        return bool(self._pending)

    def select(self, now: int) -> Optional[Tuple[BusRequest, int]]:
        """Pick the next request and its start time (``>= now``).

        Returns ``None`` when nothing is pending.  Must only be called when
        the bus is free.  The returned request is removed from the pool.
        """
        raise NotImplementedError


class FixedPriorityArbiter(BusArbiter):
    """Highest task priority first, FIFO among equals (Eq. 7 counterpart)."""

    def select(self, now: int) -> Optional[Tuple[BusRequest, int]]:
        if not self._pending:
            return None
        best = min(self._pending)
        self._pending.remove(best)
        return best, now


class RoundRobinArbiter(BusArbiter):
    """Rotating token with ``slot_size`` transactions per visit (Eq. 8)."""

    def __init__(self, platform: Platform):
        super().__init__(platform)
        self._token = 0
        self._served = 0

    def _pending_on(self, core: int) -> Optional[BusRequest]:
        candidates = [r for r in self._pending if r.core == core]
        if not candidates:
            return None
        return min(candidates, key=lambda r: (r.arrival, r.sequence))

    def select(self, now: int) -> Optional[Tuple[BusRequest, int]]:
        if not self._pending:
            return None
        for _ in range(self.platform.num_cores + 1):
            if self._served < self.platform.slot_size:
                request = self._pending_on(self._token)
                if request is not None:
                    self._served += 1
                    self._pending.remove(request)
                    return request, now
            self._token = (self._token + 1) % self.platform.num_cores
            self._served = 0
        raise SimulationError("round-robin arbiter failed to find a request")


class TdmaArbiter(BusArbiter):
    """Static slot table; transactions start inside the owner's window.

    A transaction may start at any instant of its core's window and, once
    started, runs to completion even if it overruns into the next window
    (transactions are not preemptable).  This matches the accounting of
    Eq. (9): each access waits at most the other cores' ``(L-1) * s`` slots
    for its window, with the trailing ``+1`` absorbing one in-service
    overrun.
    """

    def earliest_start(self, core: int, now: int) -> int:
        """First instant ``>= now`` inside a window owned by ``core``."""
        window = self.platform.slot_size * self.platform.d_mem
        cycle = self.platform.num_cores * window
        window_start = core * window
        offset = now % cycle
        candidate_cycle_base = now - offset
        for base in (candidate_cycle_base, candidate_cycle_base + cycle):
            start = base + window_start
            if now <= start:
                return start
            if start <= now < start + window:
                return now
        raise SimulationError("TDMA slot search failed")  # pragma: no cover

    def select(self, now: int) -> Optional[Tuple[BusRequest, int]]:
        if not self._pending:
            return None
        best = None
        best_key = None
        for request in self._pending:
            start = self.earliest_start(request.core, now)
            key = (start, request.priority, request.arrival, request.sequence)
            if best_key is None or key < best_key:
                best, best_key = request, key
        self._pending.remove(best)
        return best, best_key[0]


def make_arbiter(platform: Platform) -> Optional[BusArbiter]:
    """Instantiate the arbiter matching ``platform.bus_policy``.

    Returns ``None`` for the perfect bus (requests are served in parallel
    without arbitration).
    """
    from repro.model.platform import BusPolicy

    if platform.bus_policy is BusPolicy.FP:
        return FixedPriorityArbiter(platform)
    if platform.bus_policy is BusPolicy.RR:
        return RoundRobinArbiter(platform)
    if platform.bus_policy is BusPolicy.TDMA:
        return TdmaArbiter(platform)
    if platform.bus_policy is BusPolicy.PERFECT:
        return None
    raise SimulationError(f"unsupported bus policy {platform.bus_policy!r}")
