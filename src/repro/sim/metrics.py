"""Result collection for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.model.task import Task


@dataclass
class JobRecord:
    """Observed behaviour of one simulated job."""

    release: int
    finish: Optional[int] = None
    bus_accesses: int = 0
    cache_hits: int = 0

    @property
    def response_time(self) -> Optional[int]:
        """Finish minus release, or ``None`` for an unfinished job."""
        if self.finish is None:
            return None
        return self.finish - self.release


@dataclass
class TaskStats:
    """Aggregated observations for one task."""

    task: Task
    jobs: List[JobRecord] = field(default_factory=list)

    @property
    def completed_jobs(self) -> List[JobRecord]:
        """Jobs that finished inside the simulation horizon."""
        return [j for j in self.jobs if j.finish is not None]

    @property
    def max_response_time(self) -> Optional[int]:
        """Largest observed response time, or ``None`` if nothing finished."""
        responses = [j.response_time for j in self.completed_jobs]
        return max(responses) if responses else None

    @property
    def deadline_misses(self) -> int:
        """Completed jobs that exceeded the deadline plus unfinished jobs
        whose deadline lies within the horizon are counted by the engine;
        here only completed overruns are visible."""
        return sum(
            1
            for j in self.completed_jobs
            if j.response_time > self.task.deadline
        )

    @property
    def total_bus_accesses(self) -> int:
        """Bus transactions issued across all jobs."""
        return sum(j.bus_accesses for j in self.jobs)

    @property
    def max_job_bus_accesses(self) -> int:
        """Largest per-job bus transaction count."""
        return max((j.bus_accesses for j in self.jobs), default=0)


@dataclass
class BusWaitStats:
    """Queueing statistics of one core's bus transactions."""

    count: int = 0
    total_wait: int = 0
    max_wait: int = 0

    def record(self, wait: int) -> None:
        """Fold one transaction's waiting time into the statistics."""
        self.count += 1
        self.total_wait += wait
        if wait > self.max_wait:
            self.max_wait = wait

    @property
    def mean_wait(self) -> float:
        """Average cycles a transaction waited before service."""
        return self.total_wait / self.count if self.count else 0.0


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    horizon: int
    stats: Dict[Task, TaskStats]
    bus_busy: int = 0
    bus_waits: Dict[int, BusWaitStats] = field(default_factory=dict)

    def of(self, task: Task) -> TaskStats:
        """Stats of one task."""
        return self.stats[task]

    @property
    def any_deadline_miss(self) -> bool:
        """Whether any completed job overran its deadline."""
        return any(s.deadline_misses for s in self.stats.values())

    @property
    def bus_utilization(self) -> float:
        """Fraction of the horizon the bus spent serving transactions."""
        return self.bus_busy / self.horizon if self.horizon else 0.0
