"""Simulation workloads: tasks bound to executable traces.

The analytical side of the library treats a task as a bag of numbers
(``PD``, ``MD``, ...).  The simulator needs something executable: a
sequence of :class:`~repro.program.trace.TraceStep` (compute for a while,
then fetch a memory block through the cache or issue an uncached request).
A :class:`SimWorkload` pairs every task of a task set with such a trace,
normally lowered from the task's synthetic benchmark program.

Releases are sporadic: job ``k+1`` arrives at least one period after job
``k``, plus an optional random inter-arrival slack — the worst case
(pure periodic) is ``jitter = 0``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet
from repro.program.cfg import Program
from repro.program.trace import TraceStep, worst_case_trace


@dataclass(frozen=True)
class SimWorkload:
    """A task set plus one executable trace per task."""

    taskset: TaskSet
    traces: Mapping[Task, Tuple[TraceStep, ...]]

    def __post_init__(self) -> None:
        for task in self.taskset:
            if task not in self.traces:
                raise SimulationError(f"no trace bound to task {task.name!r}")
            if not self.traces[task]:
                raise SimulationError(f"empty trace for task {task.name!r}")

    def trace_of(self, task: Task) -> Tuple[TraceStep, ...]:
        """The executable trace of ``task``."""
        return self.traces[task]


def workload_from_programs(
    taskset: TaskSet,
    platform: Platform,
    programs: Mapping[Task, Program],
    max_steps: int = 1_000_000,
) -> SimWorkload:
    """Lower each task's program to a trace at the platform's geometry."""
    traces: Dict[Task, Tuple[TraceStep, ...]] = {}
    for task in taskset:
        if task not in programs:
            raise SimulationError(f"no program bound to task {task.name!r}")
        steps = worst_case_trace(programs[task], platform.cache, max_steps)
        traces[task] = tuple(steps)
    return SimWorkload(taskset=taskset, traces=traces)


@dataclass
class ReleasePlan:
    """Precomputed job release instants for one simulation run."""

    releases: Dict[Task, List[int]] = field(default_factory=dict)

    def of(self, task: Task) -> List[int]:
        """Release instants of ``task``, ascending."""
        return self.releases[task]


def periodic_releases(
    taskset: TaskSet,
    duration: int,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> ReleasePlan:
    """Sporadic release plan over ``[0, duration)``.

    With ``jitter = 0`` every task releases synchronously at time 0 and
    strictly periodically afterwards — the classical critical-instant
    scenario.  A positive ``jitter`` stretches each inter-arrival time by a
    uniform random fraction up to ``jitter`` of the period (still legal for
    sporadic tasks, whose periods are only minimum inter-arrival times).
    """
    if duration <= 0:
        raise SimulationError(f"duration must be positive, got {duration}")
    if jitter < 0:
        raise SimulationError(f"jitter must be non-negative, got {jitter}")
    if jitter > 0 and rng is None:
        raise SimulationError("a random source is required for jittered releases")
    plan = ReleasePlan()
    for task in taskset:
        instants: List[int] = []
        time = 0
        while time < duration:
            instants.append(time)
            gap = int(task.period)
            if jitter > 0:
                gap += int(rng.random() * jitter * task.period)
            time += max(gap, 1)
        plan.releases[task] = instants
    return plan
