"""Discrete-event multicore simulator (validation substrate)."""

from repro.sim.bus import (
    BusArbiter,
    BusRequest,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    make_arbiter,
)
from repro.sim.engine import MulticoreSimulator, simulate
from repro.sim.scenario import Scenario, ScenarioSpec, build_scenario
from repro.sim.validation import CampaignResult, ScenarioReport, run_campaign
from repro.sim.metrics import BusWaitStats, JobRecord, SimulationResult, TaskStats
from repro.sim.workload import (
    ReleasePlan,
    SimWorkload,
    periodic_releases,
    workload_from_programs,
)

__all__ = [
    "BusArbiter",
    "BusRequest",
    "FixedPriorityArbiter",
    "RoundRobinArbiter",
    "TdmaArbiter",
    "make_arbiter",
    "MulticoreSimulator",
    "Scenario",
    "ScenarioSpec",
    "build_scenario",
    "CampaignResult",
    "ScenarioReport",
    "run_campaign",
    "simulate",
    "BusWaitStats",
    "JobRecord",
    "SimulationResult",
    "TaskStats",
    "ReleasePlan",
    "SimWorkload",
    "periodic_releases",
    "workload_from_programs",
]
