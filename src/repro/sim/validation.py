"""Randomised analysis-versus-simulation validation campaigns.

Bundles the pattern used throughout the integration tests into a reusable
tool: generate random scenarios whose task parameters are extracted from
the very programs the simulator executes, analyse them, simulate them, and
check that no observed response time exceeds its analytical bound.

A campaign is the library's strongest internal consistency check — it
exercises the program models, the static cache analysis, the CRPD/CPRO
bounds, all four bus arbiters on both sides (analytical and simulated),
and the WCRT fixed point in one go.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import analyze_taskset
from repro.errors import SimulationError
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.program.malardalen import benchmark_names
from repro.sim.engine import simulate
from repro.sim.scenario import ScenarioSpec, build_scenario
from repro.sim.workload import workload_from_programs

#: Benchmarks whose scaled traces stay short enough for quick simulation.
_LIGHT_BENCHMARKS = (
    "lcdnum",
    "bs",
    "cnt",
    "fibcall",
    "insertsort",
    "ns",
    "sqrt",
    "janne_complex",
)


@dataclass
class ScenarioReport:
    """Outcome of one scenario of a campaign."""

    policy: BusPolicy
    schedulable: bool
    checked_tasks: int = 0
    violations: List[str] = field(default_factory=list)
    min_slack: float = 1.0

    @property
    def passed(self) -> bool:
        """No observed response time exceeded its bound."""
        return not self.violations


@dataclass
class CampaignResult:
    """Aggregate outcome of a validation campaign."""

    reports: List[ScenarioReport] = field(default_factory=list)

    @property
    def scenarios(self) -> int:
        """Number of scenarios that were analysed and simulated."""
        return len(self.reports)

    @property
    def violations(self) -> List[str]:
        """All bound violations across the campaign (empty = success)."""
        return [v for report in self.reports for v in report.violations]

    @property
    def passed(self) -> bool:
        """Whether every scenario respected its analytical bounds."""
        return not self.violations

    @property
    def min_slack(self) -> float:
        """Tightest relative margin (bound - observed) / bound seen."""
        return min((r.min_slack for r in self.reports), default=1.0)


def run_campaign(
    scenarios: int = 10,
    seed: int = 0,
    policies: Sequence[BusPolicy] = (
        BusPolicy.FP,
        BusPolicy.RR,
        BusPolicy.TDMA,
        BusPolicy.PERFECT,
    ),
    hyperperiods: int = 12,
    jitter: float = 0.0,
    benchmarks: Optional[Sequence[str]] = None,
    rng: Optional[random.Random] = None,
) -> CampaignResult:
    """Run ``scenarios`` random analysis-vs-simulation checks.

    Each scenario draws 3-5 light benchmarks, places them on two cores with
    random period factors and memory layout gaps, rotates through the given
    bus policies, and simulates ``hyperperiods`` times the largest period.
    Unschedulable scenarios are skipped (the analysis makes no promise to
    validate there).

    All randomness flows through one explicit :class:`random.Random` —
    ``rng`` when given (``seed`` is then ignored), else a fresh
    ``random.Random(seed)``.  The module-level :mod:`random` state is never
    touched, so campaigns are reproducible (same seed, same reports) and
    safe to run concurrently, e.g. under the parallel sweep engine.
    """
    if scenarios <= 0:
        raise SimulationError(f"scenarios must be positive, got {scenarios}")
    pool = tuple(benchmarks) if benchmarks else _LIGHT_BENCHMARKS
    unknown = set(pool) - set(benchmark_names())
    if unknown:
        raise SimulationError(f"unknown benchmarks: {sorted(unknown)}")
    result = CampaignResult()
    if rng is None:
        rng = random.Random(seed)
    config = AnalysisConfig(persistence=True, tdma_slot_alignment=True)
    for index in range(scenarios):
        policy = policies[index % len(policies)]
        names = list(pool)
        rng.shuffle(names)
        specs = [
            ScenarioSpec(
                name,
                core=position % 2,
                period_factor=rng.randint(5, 12),
            )
            for position, name in enumerate(names[: rng.randint(3, 5)])
        ]
        platform = Platform(
            num_cores=2,
            cache=CacheGeometry(num_sets=256),
            d_mem=10,
            bus_policy=policy,
            slot_size=2,
        )
        scenario = build_scenario(specs, platform, rng=rng)
        analysis = analyze_taskset(scenario.taskset, platform, config)
        report = ScenarioReport(policy=policy, schedulable=analysis.schedulable)
        if analysis.schedulable:
            workload = workload_from_programs(
                scenario.taskset, platform, scenario.programs
            )
            duration = int(max(t.period for t in scenario.taskset)) * hyperperiods
            observed = simulate(
                workload,
                platform,
                duration=duration,
                jitter=jitter,
                rng=rng if jitter > 0 else None,
            )
            for task in scenario.taskset:
                stats = observed.of(task)
                bound = analysis.response_time(task)
                peak = stats.max_response_time
                if peak is None:
                    continue
                report.checked_tasks += 1
                slack = (bound - peak) / bound if bound else 0.0
                report.min_slack = min(report.min_slack, slack)
                if peak > bound:
                    report.violations.append(
                        f"{policy.value}:{task.name}: observed {peak} "
                        f"> bound {bound}"
                    )
                # MD bounds an unpreempted job's accesses; preempted jobs
                # also reload evicted blocks (charged to CRPD, not MD), so
                # the check only applies where no same-core preemption is
                # possible.  Found by the repro.verify fuzzer.
                preemptible = any(
                    other.core == task.core and other.priority < task.priority
                    for other in scenario.taskset
                )
                if (
                    not preemptible
                    and stats.max_job_bus_accesses > task.md
                ):
                    report.violations.append(
                        f"{policy.value}:{task.name}: accesses "
                        f"{stats.max_job_bus_accesses} > MD {task.md}"
                    )
        result.reports.append(report)
    return result
