"""Ready-made analysis-plus-simulation scenarios.

Bridges the analytical and the executable worlds: pick benchmarks, place
them on cores, and get back a :class:`~repro.model.task.TaskSet` whose
parameters were *extracted from the very programs the simulator runs* —
so analytical bounds and simulated behaviour are exactly comparable.

Each program is relocated to its own address region (as a linker would),
which makes inter-task cache conflicts a function of the cache geometry
rather than an artefact of every model starting at address zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cacheanalysis.extraction import extract_parameters
from repro.errors import SimulationError
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet, assign_deadline_monotonic_priorities
from repro.program.cfg import Program
from repro.program.malardalen import benchmark_program


@dataclass(frozen=True)
class ScenarioSpec:
    """One task of a scenario: benchmark, core and timing knobs."""

    benchmark: str
    core: int
    period_factor: float = 6.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.period_factor < 1.0:
            raise SimulationError(
                f"{self.benchmark}: period_factor must be >= 1 "
                f"(constrained deadlines), got {self.period_factor}"
            )
        if self.scale <= 0:
            raise SimulationError(
                f"{self.benchmark}: scale must be positive, got {self.scale}"
            )


@dataclass(frozen=True)
class Scenario:
    """A task set paired with the programs its parameters came from."""

    taskset: TaskSet
    programs: Dict[Task, Program]
    platform: Platform


def build_scenario(
    specs: Sequence[ScenarioSpec],
    platform: Platform,
    rng: Optional[random.Random] = None,
) -> Scenario:
    """Materialise a scenario.

    Programs are laid out back to back in memory (each aligned to a cache
    line), scaled as requested, analysed at the platform's cache geometry,
    and turned into tasks with ``T = D = period_factor * isolated WCET``
    and deadline-monotonic priorities.  Passing an ``rng`` adds a random
    line-aligned gap between consecutive programs, which varies the
    cache-set overlap patterns between runs.
    """
    if not specs:
        raise SimulationError("a scenario needs at least one task")
    line = platform.cache.block_size
    offset = 0
    tasks: List[Task] = []
    programs: List[Program] = []
    for index, spec in enumerate(specs):
        program = benchmark_program(spec.benchmark)
        if spec.scale != 1.0:
            program = program.scaled(spec.scale)
        program = program.relocated(offset)
        span_end = max(block.end for block in program.iter_blocks())
        gap = rng.randrange(16) * line if rng is not None else 0
        offset = ((span_end + line - 1) // line) * line + gap
        params = extract_parameters(program, platform.cache)
        wcet = params.pd + params.md * platform.d_mem
        period = int(round(spec.period_factor * wcet))
        tasks.append(
            Task(
                name=f"{spec.benchmark}#{index}",
                period=period,
                deadline=period,
                priority=index,
                core=spec.core,
                **params.as_task_kwargs(),
            )
        )
        programs.append(program)
    ordered = assign_deadline_monotonic_priorities(tasks)
    by_name = {task.name: program for task, program in zip(tasks, programs)}
    taskset = TaskSet(ordered)
    return Scenario(
        taskset=taskset,
        programs={task: by_name[task.name] for task in taskset},
        platform=platform,
    )
