"""Discrete-event multicore simulator.

Executes a :class:`~repro.sim.workload.SimWorkload` on a
:class:`~repro.model.platform.Platform`: per-core fixed-priority preemptive
scheduling, private direct-mapped instruction caches whose content persists
across jobs (so cache persistence, CRPD and CPRO all *emerge* rather than
being modelled), and a shared memory bus under FP/RR/TDMA/perfect
arbitration.

Core semantics (in-order, timing-compositional):

* the highest-priority ready job runs; preemption happens at work-cycle
  granularity;
* a job that misses in the cache (or issues an uncached request) stalls its
  core until the bus transaction completes — an outstanding fetch is never
  aborted, so a newly released higher-priority job waits for it (this is
  exactly the single blocking access the analysis charges via the ``+1``
  term of Eq. 7-9);
* a completed fetch installs the block in the core's cache, after which the
  scheduler re-dispatches (the resumed job competes with anything released
  during the stall).

The simulator is the library's validation oracle: observed response times
must never exceed the analytical WCRT bounds (see the integration tests).
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.budget import Budget
from repro.errors import SimulationError
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task
from repro.program.trace import TraceStep
from repro.sim.bus import BusRequest, make_arbiter
from repro.sim.metrics import BusWaitStats, JobRecord, SimulationResult, TaskStats
from repro.sim.workload import ReleasePlan, SimWorkload, periodic_releases
from repro.cacheanalysis.state import DirectMappedCache

_RELEASE = 0
_STEP = 1
_BUS_DONE = 2
_BUS_TRY = 3


@dataclass
class _Job:
    task: Task
    release: int
    steps: Tuple[TraceStep, ...]
    sequence: int
    record: JobRecord
    index: int = 0
    work_left: int = 0

    def __post_init__(self) -> None:
        self.work_left = self.steps[0].work if self.steps else 0

    @property
    def sort_key(self) -> Tuple[int, int, int]:
        return (self.task.priority, self.release, self.sequence)

    @property
    def done(self) -> bool:
        return self.index >= len(self.steps)

    def current_step(self) -> TraceStep:
        return self.steps[self.index]

    def advance(self) -> None:
        """Move past the current step's access."""
        self.index += 1
        if not self.done:
            self.work_left = self.steps[self.index].work


@dataclass
class _Core:
    identifier: int
    cache: DirectMappedCache
    ready: List[Tuple[Tuple[int, int, int], "_Job"]] = field(default_factory=list)
    running: Optional[_Job] = None
    running_until: int = 0
    stalled: Optional[_Job] = None
    version: int = 0

    def push_ready(self, job: _Job) -> None:
        heapq.heappush(self.ready, (job.sort_key, job))

    def pop_ready(self) -> Optional[_Job]:
        if not self.ready:
            return None
        return heapq.heappop(self.ready)[1]

    def peek_priority(self) -> Optional[int]:
        if not self.ready:
            return None
        return self.ready[0][0][0]


class MulticoreSimulator:
    """One simulation run; construct, :meth:`run`, inspect the result."""

    def __init__(
        self,
        workload: SimWorkload,
        platform: Platform,
        releases: Optional[ReleasePlan] = None,
        duration: int = 1_000_000,
        horizon: Optional[int] = None,
        budget: Optional[Budget] = None,
    ):
        self.workload = workload
        self.platform = platform
        self.duration = duration
        #: Optional :class:`~repro.budget.Budget`, ticked once per event:
        #: an over-budget or cancelled simulation aborts between events
        #: with the typed error instead of running to its horizon.
        self.budget = budget
        self.horizon = horizon if horizon is not None else 4 * duration
        self._releases = releases or periodic_releases(workload.taskset, duration)
        self._events: List[Tuple[int, int, int, object]] = []
        self._sequence = itertools.count()
        self._cores = {
            core: _Core(core, DirectMappedCache(platform.cache))
            for core in platform.cores
        }
        self._arbiter = make_arbiter(platform)
        self._bus_busy_until = 0
        self._bus_epoch = 0
        self._reserved: Optional[Tuple[BusRequest, int]] = None
        self._bus_busy_total = 0
        self._stats = {
            task: TaskStats(task=task) for task in workload.taskset
        }
        self._wait_stats = {core: BusWaitStats() for core in platform.cores}
        self._job_counter = itertools.count()

    # -- event plumbing ------------------------------------------------------

    def _schedule(self, time: int, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time, next(self._sequence), kind, payload))

    # -- public API ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the run and return collected statistics."""
        for task in self.workload.taskset:
            trace = self.workload.trace_of(task)
            for release in self._releases.of(task):
                record = JobRecord(release=release)
                self._stats[task].jobs.append(record)
                job = _Job(
                    task=task,
                    release=release,
                    steps=trace,
                    sequence=next(self._job_counter),
                    record=record,
                )
                self._schedule(release, _RELEASE, job)
        budget = self.budget
        if budget is not None:
            budget.start()
        while self._events:
            if budget is not None:
                budget.tick()
            time, _, kind, payload = heapq.heappop(self._events)
            if time > self.horizon:
                break
            if kind == _RELEASE:
                self._on_release(time, payload)
            elif kind == _STEP:
                self._on_step(time, payload)
            elif kind == _BUS_DONE:
                self._on_bus_done(time, payload)
            elif kind == _BUS_TRY:
                self._on_bus_try(time, payload)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind}")
        return SimulationResult(
            horizon=self.horizon,
            stats=self._stats,
            bus_busy=self._bus_busy_total,
            bus_waits=self._wait_stats,
        )

    # -- core scheduling -----------------------------------------------------

    def _on_release(self, time: int, job: _Job) -> None:
        core = self._cores[job.task.core]
        core.push_ready(job)
        self._activate(core, time)

    def _activate(self, core: _Core, time: int) -> None:
        """(Re)dispatch the highest-priority ready job if allowed."""
        if core.stalled is not None:
            return  # the core is blocked on an outstanding fetch
        if core.running is not None:
            next_priority = core.peek_priority()
            if next_priority is None or next_priority >= core.running.task.priority:
                return
            # Preempt: bank the remaining work of the running job.
            preempted = core.running
            preempted.work_left = core.running_until - time
            core.running = None
            core.version += 1
            core.push_ready(preempted)
        job = core.pop_ready()
        if job is None:
            return
        self._run_job(core, job, time)

    def _run_job(self, core: _Core, job: _Job, time: int) -> None:
        """Advance ``job`` through work segments and cache hits inline."""
        while True:
            if job.done:
                self._complete(core, job, time)
                job = core.pop_ready()
                if job is None:
                    core.running = None
                    return
                continue
            if job.work_left > 0:
                core.running = job
                core.running_until = time + job.work_left
                core.version += 1
                self._schedule(core.running_until, _STEP, (core.identifier, core.version))
                return
            step = job.current_step()
            if step.uncached:
                self._issue(core, job, cached_block=None, time=time)
                return
            if step.block is None:
                job.advance()
                continue
            if core.cache.lookup(step.block):
                job.record.cache_hits += 1
                job.advance()
                continue
            # Miss: the block is only installed once the fetch completes.
            self._issue(core, job, cached_block=step.block, time=time)
            return

    def _on_step(self, time: int, payload: Tuple[int, int]) -> None:
        core_id, version = payload
        core = self._cores[core_id]
        if version != core.version or core.running is None:
            return  # stale event (preemption or stall happened meanwhile)
        job = core.running
        job.work_left = 0
        self._run_job(core, job, time)

    def _complete(self, core: _Core, job: _Job, time: int) -> None:
        job.record.finish = time
        core.running = None
        core.version += 1

    # -- bus handling ----------------------------------------------------------

    def _issue(
        self, core: _Core, job: _Job, cached_block: Optional[int], time: int
    ) -> None:
        job.record.bus_accesses += 1
        core.running = None
        core.version += 1
        core.stalled = job
        request = BusRequest(
            priority=job.task.priority,
            arrival=time,
            sequence=next(self._sequence),
            core=core.identifier,
            payload=(job, cached_block),
        )
        if self.platform.bus_policy is BusPolicy.PERFECT:
            self._bus_busy_total += self.platform.d_mem
            self._wait_stats[core.identifier].record(0)
            self._schedule(time + self.platform.d_mem, _BUS_DONE, request)
            return
        self._arbiter.enqueue(request)
        self._reconsider_bus(time)

    def _reconsider_bus(self, time: int) -> None:
        """Re-evaluate the grant decision while the bus is free."""
        if self._bus_busy_until > time:
            return
        if self._reserved is not None:
            # Put the tentatively granted request back; a newcomer may now
            # be eligible earlier (TDMA slots).
            request, _ = self._reserved
            self._arbiter.enqueue(request)
            self._reserved = None
        selection = self._arbiter.select(time)
        if selection is None:
            return
        request, start = selection
        if start < time:  # pragma: no cover - defensive
            raise SimulationError("arbiter granted a start in the past")
        self._reserved = (request, start)
        self._bus_epoch += 1
        self._schedule(start, _BUS_TRY, self._bus_epoch)

    def _on_bus_try(self, time: int, epoch: int) -> None:
        if epoch != self._bus_epoch or self._reserved is None:
            return
        if self._bus_busy_until > time:  # pragma: no cover - defensive
            return
        request, start = self._reserved
        if start != time:  # pragma: no cover - defensive
            return
        self._reserved = None
        self._wait_stats[request.core].record(time - request.arrival)
        self._bus_busy_until = time + self.platform.d_mem
        self._bus_busy_total += self.platform.d_mem
        self._schedule(self._bus_busy_until, _BUS_DONE, request)

    def _on_bus_done(self, time: int, request: BusRequest) -> None:
        job, cached_block = request.payload
        core = self._cores[request.core]
        if core.stalled is not job:  # pragma: no cover - defensive
            raise SimulationError("bus completion for a job that is not stalled")
        core.stalled = None
        if cached_block is not None:
            core.cache.access(cached_block)
        job.advance()
        if job.done:
            job.record.finish = time
        else:
            core.push_ready(job)
        self._activate(core, time)
        if self.platform.bus_policy is not BusPolicy.PERFECT:
            self._reconsider_bus(time)


def simulate(
    workload: SimWorkload,
    platform: Platform,
    duration: int = 1_000_000,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
    horizon: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> SimulationResult:
    """Convenience wrapper: build releases, run one simulation."""
    releases = periodic_releases(workload.taskset, duration, jitter, rng)
    simulator = MulticoreSimulator(
        workload,
        platform,
        releases=releases,
        duration=duration,
        horizon=horizon,
        budget=budget,
    )
    return simulator.run()
