"""Persistent, content-addressed cache of analysis results.

The WCRT bounds are *deterministic* functions of the analysed
``(task set, platform, config)`` triple: every kernel variant
(memoization, bitmasks, batching, warm starts) is pinned bit-identical by
the differential oracles, and a completed budgeted run equals an
uncapped one.  That determinism makes durable memoization sound — the
same canonical-JSON fingerprinting the sweep journal relies on for
bit-identical ``--resume`` (see :mod:`repro.experiments.journal`) keys a
persistent result cache shared by the service daemon and the sweep
runner:

* :func:`request_fingerprint` hashes the canonical JSON of the task set,
  the platform and the *outcome-determining* analysis knobs.  Invisible
  optimisation knobs (``memoization``, ``bitset_kernel``,
  ``array_kernel``, ``warm_start``) and iteration ceilings are excluded,
  exactly as the journal excludes execution parameters: an entry computed
  under any kernel serves every kernel.
* :class:`ResultCache` stores one JSON file per fingerprint under
  ``entries/``, written via :func:`repro.atomicio.atomic_write_text`
  (tmp + fsync + rename) so a crash mid-write can never leave a partial
  entry at the final path.  Every entry carries a SHA-256 checksum of its
  payload; the loader *quarantines* (moves aside) and skips anything
  corrupt — truncated JSON, flipped bits, empty files, foreign
  fingerprints — instead of failing the daemon.  An in-memory LRU index
  (seeded from file mtimes, refreshed via ``os.utime`` on hit so recency
  survives restarts) enforces ``max_entries`` / ``max_bytes`` eviction.
* :class:`WarmSeedStore` persists the converged response-time map of
  schedulable results (keyed by task priority, the representation
  :class:`~repro.analysis.wcrt.WarmHint` verifies strictly before
  trusting), so a restarted daemon keeps the warm-start path: the first
  recompute after a restart is seeded from disk and re-verified, never
  blindly believed.

Only completed results are cacheable.  ``budget-exceeded`` / ``cancelled``
partials are *rejected at the store layer* (:meth:`ResultCache.put`
refuses any payload whose status is not ``"ok"``), so an aborted request
can never poison the cache — the caller-side discipline is backed by an
enforced invariant.

Fault injection (TEST ONLY): when the environment variable
:data:`CHAOS_FAULT_ENV` is ``"kill-mid-write"``, the next store leaves a
torn ``*.chaos.tmp`` dropping next to the target and kills the process —
``scripts/chaos_smoke.py`` uses this to prove that a kill mid-write
leaves a loadable cache (the committed entries are untouched and the
dropping is swept on the next :meth:`~ResultCache.scan`).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Optional, Union

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import WarmHint, WcrtResult
from repro.atomicio import atomic_write_text
from repro.errors import CacheError, ModelError
from repro.model.platform import Platform
from repro.model.task import TaskSet
from repro.perf import PerfCounters
from repro.serialization import canonical_json, platform_to_dict, task_to_dict

PathLike = Union[str, Path]

#: Format tag of a result-cache entry file.
CACHE_TAG = "repro-result-cache-entry"

#: Format tag of a warm-seed entry file.
SEED_TAG = "repro-warm-seed"

#: Format tag of the fingerprinted request description.
REQUEST_TAG = "repro-analysis-request"

#: Current on-disk entry format version.
CACHE_VERSION = 1

#: Environment variable carrying the injectable chaos fault (TEST ONLY).
CHAOS_FAULT_ENV = "REPRO_CHAOS_FAULT"

#: Exit status of the injected kill-mid-write fault (mirrors SIGKILL).
CHAOS_KILL_STATUS = 137

#: AnalysisConfig fields that determine analysis *outcomes*.  The
#: invisible-optimisation knobs and the iteration ceilings are excluded
#: from fingerprints — see the module docstring.
FINGERPRINT_CONFIG_FIELDS = (
    "persistence",
    "persistence_in_low",
    "tdma_slot_alignment",
    "crpd_approach",
    "cpro_approach",
)

_FINGERPRINT_RE = re.compile(r"[0-9a-f]{64}")

#: How many leading hex digits fan entries out into subdirectories.
_FANOUT_DIGITS = 2


# -- fingerprinting -----------------------------------------------------------


def request_description(
    taskset: TaskSet, platform: Platform, config: AnalysisConfig
) -> Dict:
    """The plain-JSON document a request fingerprint is computed over."""
    return {
        "format": REQUEST_TAG,
        "version": CACHE_VERSION,
        "platform": platform_to_dict(platform),
        "tasks": [task_to_dict(task) for task in taskset],
        "config": {
            name: getattr(
                getattr(config, name), "value", getattr(config, name)
            )
            for name in FINGERPRINT_CONFIG_FIELDS
        },
    }


def request_fingerprint(
    taskset: TaskSet, platform: Platform, config: AnalysisConfig
) -> str:
    """Hex SHA-256 identifying one analysis request's outcome.

    Two requests share a fingerprint exactly when the analysis bounds are
    guaranteed bit-identical, so a cached result may serve either.
    """
    text = canonical_json(request_description(taskset, platform, config))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- payload conversion -------------------------------------------------------


def result_payload(result: WcrtResult) -> Dict:
    """The cacheable plain-JSON form of a completed analysis result.

    This is exactly the service's ``"ok"`` response body minus the
    caller-chosen ``id`` (see :func:`repro.service.protocol.ok_response`,
    which builds on this function), so entries written by the sweep
    runner serve service requests byte-for-byte and vice versa.
    """
    return {
        "version": CACHE_VERSION,
        "status": "ok",
        "schedulable": result.schedulable,
        "outer_iterations": result.outer_iterations,
        "failed_task": result.failed_task.name if result.failed_task else None,
        "response_times": {
            task.name: bound for task, bound in result.response_times.items()
        },
    }


def result_from_payload(taskset: TaskSet, payload: Dict) -> WcrtResult:
    """Rebuild a :class:`~repro.analysis.wcrt.WcrtResult` from a payload.

    Task objects are resolved by name against ``taskset`` (names are
    unique within a serialised task set, and the fingerprint guarantees
    the entry was computed for this exact task set).  Raises
    :class:`~repro.errors.ModelError` on any mismatch so callers can fall
    back to a recompute.
    """
    tasks = {task.name: task for task in taskset}
    try:
        response_times = {
            tasks[name]: int(bound)
            for name, bound in payload["response_times"].items()
        }
        failed_name = payload["failed_task"]
        return WcrtResult(
            schedulable=bool(payload["schedulable"]),
            response_times=response_times,
            failed_task=tasks[failed_name] if failed_name else None,
            outer_iterations=int(payload["outer_iterations"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ModelError(
            f"cached payload does not match the task set: {error!r}"
        ) from error


def seed_payload(result: WcrtResult) -> Optional[Dict]:
    """Warm-seed payload of a *schedulable* result (else ``None``).

    Response times are keyed by task priority — the representation
    :class:`~repro.analysis.wcrt.WarmHint` carries — because priorities
    are unique per task set and survive task-object identity changes.
    Unschedulable maps are never stored: they are partially-refined, not
    converged, and could never pass the hint's strict ``f(r) == r``
    verification.
    """
    if not result.schedulable:
        return None
    return {
        "response_times": {
            str(task.priority): int(bound)
            for task, bound in result.response_times.items()
        },
        "outer_iterations": int(result.outer_iterations),
    }


def seed_payload_from_response(taskset: TaskSet, body: Dict) -> Optional[Dict]:
    """Warm-seed payload from a service ``"ok"`` response body.

    The body keys response times by task *name*; ``taskset`` (the parsed
    request) supplies the name-to-priority mapping.  Returns ``None`` for
    unschedulable verdicts or any body that does not line up with the
    task set.
    """
    if not body.get("schedulable"):
        return None
    response_times = body.get("response_times")
    if not isinstance(response_times, dict):
        return None
    try:
        return {
            "response_times": {
                str(task.priority): int(response_times[task.name])
                for task in taskset
            },
            "outer_iterations": int(body.get("outer_iterations", 0)),
        }
    except (KeyError, TypeError, ValueError):
        return None


def hint_from_seed(payload: Dict) -> WarmHint:
    """Build the :class:`~repro.analysis.wcrt.WarmHint` of a stored seed.

    The hint is *offered*, never trusted: the analysis re-verifies it
    with one strict outer round and falls back to a cold run on any
    mismatch, so a stale or corrupt seed can cost at most one wasted
    round.  Raises :class:`~repro.errors.ModelError` on malformed seeds.
    """
    try:
        return WarmHint(
            response_times={
                int(priority): int(bound)
                for priority, bound in payload["response_times"].items()
            },
            outer_iterations=int(payload.get("outer_iterations", 0)),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ModelError(f"malformed warm seed: {error!r}") from error


# -- fault injection (TEST ONLY) ----------------------------------------------


def _chaos_kill_mid_write(path: Path, text: str) -> None:
    """Injected crash: leave a torn tmp dropping, then die like SIGKILL.

    TEST ONLY — armed by ``CHAOS_FAULT_ENV=kill-mid-write``.  The torn
    file deliberately uses the ``.tmp`` suffix the scanner sweeps, and
    the *committed* entry path is never touched, mirroring exactly what a
    real kill between ``write`` and ``os.replace`` leaves behind.
    """
    if os.environ.get(CHAOS_FAULT_ENV) != "kill-mid-write":
        return
    dropping = path.with_name(path.name + ".chaos.tmp")
    dropping.parent.mkdir(parents=True, exist_ok=True)
    with open(dropping, "w", encoding="utf-8") as handle:
        handle.write(text[: max(1, len(text) // 2)])
    os._exit(CHAOS_KILL_STATUS)


class _BadEntry(Exception):
    """Internal: an entry file failed validation (reason in ``args[0]``)."""


@dataclass
class _IndexEntry:
    path: Path
    size: int


class _JsonStore:
    """Shared machinery of the checksummed, quarantining JSON stores.

    Thread-safe (one re-entrant lock per store).  Multiple *processes*
    may safely share a store directory: every write is atomic, identical
    fingerprints produce identical bytes, and readers treat a file that
    vanished under them (evicted by a sibling) as a plain miss.
    """

    def __init__(
        self,
        root: PathLike,
        tag: str,
        counters: Dict[str, str],
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
        validate_payload: Optional[Callable[[Dict], bool]] = None,
    ) -> None:
        if max_entries < 1:
            raise CacheError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise CacheError(
                f"max_bytes must be >= 1 (or None for unbounded), "
                f"got {max_bytes}"
            )
        self.root = Path(root)
        self.tag = tag
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.entries_dir = self.root / "entries"
        self.quarantine_dir = self.root / "quarantine"
        self._counters = counters
        self._perf = perf
        self._validate_payload = validate_payload
        self._lock = threading.RLock()
        #: fingerprint -> entry, ordered least- to most-recently used.
        self._index: "OrderedDict[str, _IndexEntry]" = OrderedDict()
        #: Files quarantined since this store was opened.
        self.quarantined_files = 0
        self.scan()

    # -- counters ------------------------------------------------------------

    def _count(self, event: str, perf: Optional[PerfCounters] = None) -> None:
        name = self._counters.get(event)
        if name is None:
            return
        targets = []
        if self._perf is not None:
            targets.append(self._perf)
        if perf is not None and perf is not self._perf:
            targets.append(perf)
        for target in targets:
            setattr(target, name, getattr(target, name) + 1)

    # -- layout --------------------------------------------------------------

    def _path_for(self, fingerprint: str) -> Path:
        return (
            self.entries_dir
            / fingerprint[:_FANOUT_DIGITS]
            / f"{fingerprint}.json"
        )

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> str:
        if not (
            isinstance(fingerprint, str)
            and _FINGERPRINT_RE.fullmatch(fingerprint)
        ):
            raise CacheError(
                f"fingerprint must be 64 lowercase hex digits, "
                f"got {fingerprint!r}"
            )
        return fingerprint

    # -- scanning and validation ---------------------------------------------

    def scan(self) -> None:
        """(Re)build the index from disk, sweeping droppings and corruption.

        Leftover ``*.tmp`` files (a kill between write and rename) are
        deleted; every committed entry is fully validated and corrupt
        ones are quarantined.  The LRU order is seeded from file mtimes,
        which :meth:`get` refreshes on every hit, so recency survives
        restarts.
        """
        with self._lock:
            self._index.clear()
            self.entries_dir.mkdir(parents=True, exist_ok=True)
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            found = []
            for path in sorted(self.entries_dir.rglob("*")):
                if not path.is_file():
                    continue
                if path.name.endswith(".tmp"):
                    path.unlink(missing_ok=True)
                    continue
                try:
                    fingerprint, _payload = self._load_file(path)
                except _BadEntry as bad:
                    self._quarantine(path, bad.args[0])
                    continue
                stat = path.stat()
                found.append((stat.st_mtime, fingerprint, path, stat.st_size))
            for _mtime, fingerprint, path, size in sorted(found):
                self._index[fingerprint] = _IndexEntry(path=path, size=size)
            self._evict_if_needed()

    def _load_file(self, path: Path) -> tuple:
        """Validate one entry file; raises :class:`_BadEntry` with a reason."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise _BadEntry(f"unreadable: {error}") from error
        if not text.strip():
            raise _BadEntry("empty-file")
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            raise _BadEntry("truncated-or-invalid-json") from None
        if not isinstance(document, dict) or document.get("format") != self.tag:
            raise _BadEntry("bad-envelope")
        if document.get("version") != CACHE_VERSION:
            raise _BadEntry("unsupported-version")
        fingerprint = document.get("fingerprint")
        if (
            not isinstance(fingerprint, str)
            or not _FINGERPRINT_RE.fullmatch(fingerprint)
            or path.name != f"{fingerprint}.json"
        ):
            raise _BadEntry("fingerprint-mismatch")
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise _BadEntry("missing-payload")
        digest = hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()
        if document.get("sha256") != digest:
            raise _BadEntry("checksum-mismatch")
        if self._validate_payload is not None and not self._validate_payload(
            payload
        ):
            raise _BadEntry("invalid-payload")
        return fingerprint, payload

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt file aside (never delete evidence) and count it."""
        destination = self.quarantine_dir / f"{path.name}.{reason}"
        try:
            os.replace(path, destination)
        except OSError:
            path.unlink(missing_ok=True)
        self.quarantined_files += 1
        self._count("quarantine")

    # -- the cache interface -------------------------------------------------

    def get(
        self, fingerprint: str, perf: Optional[PerfCounters] = None
    ) -> Optional[Dict]:
        """Payload stored for ``fingerprint``, or ``None``.

        Reads the entry file afresh on every hit (so callers may mutate
        the returned document freely) and re-validates it — corruption
        that happened *after* the scan is quarantined here, reported as a
        miss, and never crashes the caller.
        """
        self._check_fingerprint(fingerprint)
        with self._lock:
            entry = self._index.get(fingerprint)
            if entry is None:
                self._count("miss", perf)
                return None
            try:
                _fingerprint, payload = self._load_file(entry.path)
            except _BadEntry as bad:
                self._index.pop(fingerprint, None)
                self._quarantine(entry.path, bad.args[0])
                self._count("miss", perf)
                return None
            self._index.move_to_end(fingerprint)
            try:
                os.utime(entry.path)
            except OSError:
                pass  # recency refresh is best-effort
            self._count("hit", perf)
            return payload

    def put(
        self,
        fingerprint: str,
        payload: Dict,
        perf: Optional[PerfCounters] = None,
    ) -> bool:
        """Store ``payload`` under ``fingerprint``; ``False`` if refused.

        Refusal (rather than an exception) is the contract for payloads
        the store's validator rejects — e.g. a ``budget-exceeded``
        partial offered to a :class:`ResultCache` — so callers cannot
        poison the cache even by mistake.
        """
        self._check_fingerprint(fingerprint)
        if self._validate_payload is not None and not self._validate_payload(
            payload
        ):
            return False
        entry = {
            "format": self.tag,
            "version": CACHE_VERSION,
            "fingerprint": fingerprint,
            "payload": payload,
            "sha256": hashlib.sha256(
                canonical_json(payload).encode("utf-8")
            ).hexdigest(),
        }
        text = json.dumps(entry, sort_keys=True)
        with self._lock:
            path = self._path_for(fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            _chaos_kill_mid_write(path, text)
            atomic_write_text(path, text)
            self._index[fingerprint] = _IndexEntry(
                path=path, size=len(text.encode("utf-8"))
            )
            self._index.move_to_end(fingerprint)
            self._count("store", perf)
            self._evict_if_needed(perf)
        return True

    def invalidate(self, fingerprint: str) -> bool:
        """Drop one entry by fingerprint; ``True`` if it existed."""
        self._check_fingerprint(fingerprint)
        with self._lock:
            entry = self._index.pop(fingerprint, None)
            path = entry.path if entry is not None else self._path_for(fingerprint)
            existed = path.exists()
            path.unlink(missing_ok=True)
            return existed or entry is not None

    def _evict_if_needed(self, perf: Optional[PerfCounters] = None) -> None:
        while len(self._index) > self.max_entries or (
            self.max_bytes is not None
            and sum(entry.size for entry in self._index.values())
            > self.max_bytes
            and len(self._index) > 1
        ):
            _fingerprint, entry = self._index.popitem(last=False)
            entry.path.unlink(missing_ok=True)
            self._count("evict", perf)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._index

    def fingerprints(self) -> Iterable[str]:
        with self._lock:
            return tuple(self._index)

    def stats(self) -> Dict:
        """Entry count, byte total and session quarantine count."""
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes": sum(entry.size for entry in self._index.values()),
                "quarantined_files": self.quarantined_files,
                "root": str(self.root),
            }


def _ok_payload(payload: Dict) -> bool:
    """Cacheability predicate: only completed ``"ok"`` results qualify."""
    return isinstance(payload, dict) and payload.get("status") == "ok"


def _seed_shape(payload: Dict) -> bool:
    return isinstance(payload, dict) and isinstance(
        payload.get("response_times"), dict
    )


class ResultCache(_JsonStore):
    """Content-addressed, crash-safe store of completed analysis results.

    Layout under ``root``::

        entries/<fp[:2]>/<fp>.json   one checksummed entry per fingerprint
        quarantine/                  corrupt files moved aside, never deleted

    ``put`` refuses any payload whose ``status`` is not ``"ok"`` — see the
    module docstring for why aborted partials must never land here.
    """

    def __init__(
        self,
        root: PathLike,
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
    ) -> None:
        super().__init__(
            root,
            tag=CACHE_TAG,
            counters={
                "hit": "result_cache_hits",
                "miss": "result_cache_misses",
                "store": "result_cache_stores",
                "evict": "result_cache_evictions",
                "quarantine": "result_cache_quarantines",
            },
            max_entries=max_entries,
            max_bytes=max_bytes,
            perf=perf,
            validate_payload=_ok_payload,
        )


class WarmSeedStore(_JsonStore):
    """Persisted warm-start seeds keeping the warm path across restarts.

    Stores the converged (strictly verifiable) response-time map of
    schedulable results under the same request fingerprint as the result
    cache.  Seeds are *hints*: the analysis re-verifies every one before
    use, so this store can accelerate but never change a result.
    """

    def __init__(
        self,
        root: PathLike,
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
    ) -> None:
        super().__init__(
            root,
            tag=SEED_TAG,
            counters={
                "hit": "warm_seed_hits",
                "store": "warm_seed_stores",
                "evict": "result_cache_evictions",
                "quarantine": "result_cache_quarantines",
            },
            max_entries=max_entries,
            max_bytes=max_bytes,
            perf=perf,
            validate_payload=_seed_shape,
        )
