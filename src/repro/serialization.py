"""JSON (de)serialisation of the core model and analysis results.

Lets users archive generated task sets, exchange scenarios between tools,
and store experiment outputs.  The format is plain JSON with an explicit
``format`` tag and version so files stay readable as the library evolves:

.. code-block:: json

    {
      "format": "repro-taskset",
      "version": 1,
      "platform": {"num_cores": 4, "d_mem": 10, ...},
      "tasks": [{"name": "fdct#c0t1", "pd": 6550, ...}, ...]
    }

Round-trip fidelity is exact: every field of :class:`~repro.model.task.Task`
and :class:`~repro.model.platform.Platform` survives, with cache-set sets
stored as sorted lists.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.errors import ModelError
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.model.task import Task, TaskSet

#: Current on-disk format version.
FORMAT_VERSION = 1

_TASKSET_TAG = "repro-taskset"
_WCRT_TAG = "repro-wcrt-result"

PathLike = Union[str, Path]


def canonical_json(document) -> str:
    """Canonical JSON text of a plain document: one line, sorted keys.

    The byte sequence is a pure function of the document's *value* —
    independent of dict insertion order and Python version — so it is safe
    to hash for content addressing and run fingerprints (see
    :func:`repro.experiments.journal.sweep_fingerprint`).  ``NaN`` and
    infinities are rejected: they would not round-trip through strict JSON
    parsers and a fingerprint must never be ambiguous.
    """
    try:
        return json.dumps(
            document, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as error:
        raise ModelError(
            f"document is not canonically serialisable: {error}"
        ) from error


def platform_to_dict(platform: Platform) -> Dict:
    """Plain-dict form of a platform."""
    return {
        "num_cores": platform.num_cores,
        "cache": {
            "num_sets": platform.cache.num_sets,
            "block_size": platform.cache.block_size,
        },
        "d_mem": platform.d_mem,
        "bus_policy": platform.bus_policy.value,
        "slot_size": platform.slot_size,
    }


def platform_from_dict(data: Dict) -> Platform:
    """Inverse of :func:`platform_to_dict`."""
    try:
        cache = CacheGeometry(
            num_sets=data["cache"]["num_sets"],
            block_size=data["cache"]["block_size"],
        )
        return Platform(
            num_cores=data["num_cores"],
            cache=cache,
            d_mem=data["d_mem"],
            bus_policy=BusPolicy(data["bus_policy"]),
            slot_size=data["slot_size"],
        )
    except (KeyError, ValueError) as error:
        raise ModelError(f"malformed platform record: {error}") from error


def task_to_dict(task: Task) -> Dict:
    """Plain-dict form of a task."""
    return {
        "name": task.name,
        "pd": task.pd,
        "md": task.md,
        "md_r": task.md_r,
        "period": task.period,
        "deadline": task.deadline,
        "priority": task.priority,
        "core": task.core,
        "ecbs": sorted(task.ecbs),
        "ucbs": sorted(task.ucbs),
        "pcbs": sorted(task.pcbs),
    }


def task_from_dict(data: Dict) -> Task:
    """Inverse of :func:`task_to_dict`."""
    try:
        return Task(
            name=data["name"],
            pd=data["pd"],
            md=data["md"],
            md_r=data.get("md_r"),
            period=data["period"],
            deadline=data["deadline"],
            priority=data["priority"],
            core=data.get("core", 0),
            ecbs=frozenset(data.get("ecbs", ())),
            ucbs=frozenset(data.get("ucbs", ())),
            pcbs=frozenset(data.get("pcbs", ())),
        )
    except KeyError as error:
        raise ModelError(f"malformed task record: missing {error}") from error


def taskset_to_json(
    taskset: TaskSet, platform: Platform, indent: int = 2
) -> str:
    """Serialise a task set plus its platform to a JSON string."""
    document = {
        "format": _TASKSET_TAG,
        "version": FORMAT_VERSION,
        "platform": platform_to_dict(platform),
        "tasks": [task_to_dict(task) for task in taskset],
    }
    return json.dumps(document, indent=indent)


def taskset_from_json(text: str) -> Tuple[TaskSet, Platform]:
    """Inverse of :func:`taskset_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelError(f"not valid JSON: {error}") from error
    if document.get("format") != _TASKSET_TAG:
        raise ModelError(
            f"unexpected format tag {document.get('format')!r}; "
            f"expected {_TASKSET_TAG!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported format version {document.get('version')!r}"
        )
    platform = platform_from_dict(document.get("platform", {}))
    tasks = [task_from_dict(record) for record in document.get("tasks", [])]
    return TaskSet(tasks), platform


def wcrt_result_to_dict(result) -> Dict:
    """Plain-dict form of a :class:`~repro.analysis.wcrt.WcrtResult`.

    Tasks are referenced by name (unique within any serialised task set);
    perf counters are deliberately not archived — they describe a run, not
    a result.
    """
    return {
        "format": _WCRT_TAG,
        "version": FORMAT_VERSION,
        "schedulable": result.schedulable,
        "outer_iterations": result.outer_iterations,
        "failed_task": result.failed_task.name if result.failed_task else None,
        "response_times": {
            task.name: bound for task, bound in result.response_times.items()
        },
    }


def wcrt_result_to_json(result) -> str:
    """Canonical JSON form of a WCRT result.

    Keys are sorted, so the bytes are a pure function of the result —
    independent of dict insertion order, Python version, or the task
    iteration order of the analysis.
    """
    return json.dumps(wcrt_result_to_dict(result), indent=2, sort_keys=True)


def wcrt_result_from_json(text: str) -> Dict:
    """Parse a serialised WCRT result back into its plain-dict form.

    Task objects cannot be reconstructed from a result alone (it stores
    names, not parameters), so the dict form is the archival surface:
    ``response_times`` maps task names to bounds.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ModelError(f"not valid JSON: {error}") from error
    if document.get("format") != _WCRT_TAG:
        raise ModelError(
            f"unexpected format tag {document.get('format')!r}; "
            f"expected {_WCRT_TAG!r}"
        )
    if document.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported format version {document.get('version')!r}"
        )
    return document


def save_taskset(
    taskset: TaskSet, platform: Platform, path: PathLike
) -> None:
    """Write a task set (and platform) to ``path`` as JSON.

    The write is atomic (tmp file + fsync + rename): a crash mid-write
    cannot leave a truncated, unloadable task set behind.
    """
    atomic_write_text(path, taskset_to_json(taskset, platform))


def load_taskset(path: PathLike) -> Tuple[TaskSet, Platform]:
    """Read a task set (and platform) previously saved with
    :func:`save_taskset`."""
    return taskset_from_json(Path(path).read_text())
