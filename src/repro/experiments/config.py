"""Experiment defaults and the analysis-variant catalogue (Sec. V).

The paper's default setup: 4 cores, 8 tasks per core, a 256-set x 32-byte
private L1 instruction cache per core, ``d_mem`` = 5 us and RR/TDMA slot
size 2.  Seven analysis variants appear across the figures:

=============  ==========================================================
``FP-P``       FP bus, persistence-aware (Lemmas 1-2)
``FP``         FP bus, baseline (Davis et al.)
``RR-P``       RR bus, persistence-aware
``RR``         RR bus, baseline
``TDMA-P``     TDMA bus, persistence-aware
``TDMA``       TDMA bus, baseline
``Perfect``    contention-free bus, upper bound on achievable results
=============  ==========================================================
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.analysis.config import AnalysisConfig, BASELINE, PERSISTENCE_AWARE
from repro.errors import AnalysisError
from repro.generation.taskset_gen import GenerationConfig
from repro.model.platform import BusPolicy, CacheGeometry, Platform, microseconds_to_cycles

#: Environment variable overriding the per-point sample count.
SAMPLES_ENV_VAR = "REPRO_SAMPLES"

#: Environment variable overriding the worker process count.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Per-point sample count used by the paper (1000 task sets per point).
PAPER_SAMPLES = 1000

#: Default per-point sample count for interactive runs; override with
#: ``REPRO_SAMPLES`` or the CLI ``--samples`` flag for paper-scale runs.
DEFAULT_SAMPLES = 100

#: The paper's core-utilisation grid: 0.05 to 1.0 in steps of 0.05.
PAPER_UTILIZATIONS: Tuple[float, ...] = tuple(
    round(0.05 * step, 2) for step in range(1, 21)
)

#: Coarser grid used inside weighted-schedulability sweeps to keep the
#: 2-parameter experiments tractable at interactive sample counts.
WEIGHTED_UTILIZATIONS: Tuple[float, ...] = tuple(
    round(0.1 * step, 2) for step in range(1, 10)
)


@dataclass(frozen=True)
class Variant:
    """One curve of a figure: a bus policy plus an analysis configuration."""

    label: str
    policy: BusPolicy
    analysis: AnalysisConfig


def standard_variants(include_perfect: bool = True) -> Tuple[Variant, ...]:
    """The six persistence/baseline curves, optionally plus the perfect bus."""
    variants = [
        Variant("FP-P", BusPolicy.FP, PERSISTENCE_AWARE),
        Variant("FP", BusPolicy.FP, BASELINE),
        Variant("RR-P", BusPolicy.RR, PERSISTENCE_AWARE),
        Variant("RR", BusPolicy.RR, BASELINE),
        Variant("TDMA-P", BusPolicy.TDMA, PERSISTENCE_AWARE),
        Variant("TDMA", BusPolicy.TDMA, BASELINE),
    ]
    if include_perfect:
        variants.append(Variant("Perfect", BusPolicy.PERFECT, PERSISTENCE_AWARE))
    return tuple(variants)


def slot_variants() -> Tuple[Variant, ...]:
    """The four slot-sensitive curves of the slot-size sweep (Fig. 3d)."""
    return tuple(v for v in standard_variants(False) if v.policy is not BusPolicy.FP)


def default_platform() -> Platform:
    """The paper's default platform (bus policy is set per variant)."""
    return Platform(
        num_cores=4,
        cache=CacheGeometry(num_sets=256, block_size=32),
        d_mem=microseconds_to_cycles(5),
        bus_policy=BusPolicy.FP,
        slot_size=2,
    )


@dataclass(frozen=True)
class SweepSettings:
    """Sampling parameters shared by every experiment driver.

    ``jobs = 0`` requests automatic parallelism: it is resolved to the
    machine's CPU count at construction time, so every consumer sees the
    concrete worker count.  Negative values are rejected.  ``profile``
    asks the CLI to print the kernel's perf counters after each
    experiment (see :mod:`repro.perf`).

    The resilience knobs drive the supervised execution layer
    (:mod:`repro.experiments.supervisor`): ``sample_budget`` is the
    per-sample *in-process* wall-clock budget in seconds — each sample's
    analyses carry a :class:`~repro.budget.Budget` and abort cooperatively
    at the next iteration boundary when it runs out (quarantined with kind
    ``"budget"``, no retries: the abort is a property of the sample, not a
    transient).  ``timeout`` is the per-chunk wall-clock budget of the
    process-kill watchdog (``None`` disables it, the default — legitimate
    chunks near the schedulability cliff can be arbitrarily slow); when
    only ``sample_budget`` is set, a generous watchdog allowance is derived
    from it as a fallback for non-cooperative hangs (see the supervisor).
    ``retries`` is the per-sample retry budget for transient failures;
    ``backoff`` the base of the capped exponential backoff between
    retries.

    Every parameter is validated eagerly at construction with a typed
    :class:`~repro.errors.ReproError` subclass, so misconfiguration
    surfaces here — at the call site — rather than as an opaque failure
    deep inside a worker process.
    """

    samples: int = DEFAULT_SAMPLES
    seed: int = 2020
    utilizations: Tuple[float, ...] = PAPER_UTILIZATIONS
    jobs: int = 1
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    profile: bool = False
    timeout: Optional[float] = None
    sample_budget: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise AnalysisError(f"samples must be >= 1, got {self.samples}")
        if self.jobs < 0:
            raise AnalysisError(
                f"jobs must be positive (or 0 for auto-detection), "
                f"got {self.jobs}"
            )
        if self.jobs == 0:
            # Frozen dataclass: resolve the auto value in place so the rest
            # of the machinery never sees the 0 sentinel.
            object.__setattr__(self, "jobs", os.cpu_count() or 1)
        if not self.utilizations:
            raise AnalysisError("at least one utilisation point is required")
        for utilization in self.utilizations:
            if not math.isfinite(utilization) or utilization <= 0:
                raise AnalysisError(
                    f"utilisation points must be finite and positive, "
                    f"got {utilization}"
                )
        if self.timeout is not None and not (
            math.isfinite(self.timeout) and self.timeout > 0
        ):
            raise AnalysisError(
                f"timeout must be a positive number of seconds (or None "
                f"to disable the watchdog), got {self.timeout}"
            )
        if self.sample_budget is not None and not (
            math.isfinite(self.sample_budget) and self.sample_budget > 0
        ):
            raise AnalysisError(
                f"sample budget must be a positive number of seconds (or "
                f"None to disable in-process budgets), got {self.sample_budget}"
            )
        if self.retries < 0:
            raise AnalysisError(
                f"retries must be non-negative, got {self.retries}"
            )
        if not (math.isfinite(self.backoff) and self.backoff >= 0):
            raise AnalysisError(
                f"backoff must be a finite non-negative number of seconds, "
                f"got {self.backoff}"
            )


def _environment_int(name: str) -> int:
    """Parse an integer environment override with a helpful error."""
    raw = os.environ[name]
    try:
        return int(raw)
    except ValueError:
        raise AnalysisError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def settings_from_environment(**overrides) -> SweepSettings:
    """Build :class:`SweepSettings` honouring the environment overrides.

    ``REPRO_SAMPLES`` and ``REPRO_JOBS`` apply when the corresponding
    keyword is absent; ``REPRO_JOBS=0`` selects automatic parallelism
    (one worker per CPU).  Non-integer values raise
    :class:`~repro.errors.AnalysisError` naming the offending variable.
    """
    kwargs = dict(overrides)
    if "samples" not in kwargs and SAMPLES_ENV_VAR in os.environ:
        kwargs["samples"] = _environment_int(SAMPLES_ENV_VAR)
    if "jobs" not in kwargs and JOBS_ENV_VAR in os.environ:
        kwargs["jobs"] = _environment_int(JOBS_ENV_VAR)
    return SweepSettings(**kwargs)
