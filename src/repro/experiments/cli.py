"""Command-line entry point: ``repro-experiments`` / ``python -m repro.experiments``.

Regenerates every table and figure of the paper's evaluation::

    repro-experiments table1 fig1
    repro-experiments fig2  --samples 1000 --jobs 8     # paper scale
    repro-experiments fig3a fig3b fig3c fig3d
    repro-experiments all   --samples 100

Sample counts default to 100 task sets per point (the paper uses 1000);
``REPRO_SAMPLES`` and ``REPRO_JOBS`` provide environment overrides.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import AnalysisError
from repro.experiments.config import settings_from_environment
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3a, run_fig3b, run_fig3c, run_fig3d
from repro.experiments.table1 import run_table1
from repro.perf import global_counters, reset_global_counters

_EXPERIMENTS = ("table1", "fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig3d")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the DATE 2020 paper "
        "'Cache Persistence-Aware Memory Bus Contention Analysis for "
        "Multicore Systems'.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=_EXPERIMENTS + ("all",),
        help="which experiments to run",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="task sets per sweep point (paper: 1000; default: 100 or "
        "$REPRO_SAMPLES)",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="base random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes; 0 = one per CPU (default: 1 or $REPRO_JOBS)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print analysis-kernel perf counters (iterations, memo hit "
        "ratios, phase timings) after each experiment",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiments and print their reports."""
    args = _parser().parse_args(argv)
    chosen = list(_EXPERIMENTS) if "all" in args.experiments else args.experiments
    overrides = {"seed": args.seed, "profile": args.profile}
    if args.samples is not None:
        overrides["samples"] = args.samples
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    try:
        settings = settings_from_environment(**overrides)
    except AnalysisError as error:
        print(f"repro-experiments: error: {error}", file=sys.stderr)
        return 2

    runners = {
        "table1": lambda: run_table1(),
        "fig1": lambda: run_fig1(),
        "fig2": lambda: run_fig2(settings),
        "fig3a": lambda: run_fig3a(settings),
        "fig3b": lambda: run_fig3b(settings),
        "fig3c": lambda: run_fig3c(settings),
        "fig3d": lambda: run_fig3d(settings),
    }
    for name in chosen:
        if settings.profile:
            reset_global_counters()
        started = time.time()
        result = runners[name]()
        print(result.render())
        print(f"[{name} completed in {time.time() - started:.1f}s]\n")
        if settings.profile:
            print(global_counters().render())
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
