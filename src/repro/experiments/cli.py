"""Command-line entry point: ``repro-experiments`` / ``python -m repro.experiments``.

Regenerates every table and figure of the paper's evaluation::

    repro-experiments table1 fig1
    repro-experiments fig2  --samples 1000 --jobs 8     # paper scale
    repro-experiments fig3a fig3b fig3c fig3d
    repro-experiments all   --samples 100

Sample counts default to 100 task sets per point (the paper uses 1000);
``REPRO_SAMPLES`` and ``REPRO_JOBS`` provide environment overrides.

Long campaigns should run journaled so they survive crashes and
pre-emption (see ``docs/RESILIENCE.md``)::

    repro-experiments fig2 --samples 1000 --jobs 8 --journal runs/fig2
    # ... SIGTERM / crash / Ctrl-C ...
    repro-experiments fig2 --samples 1000 --jobs 8 --journal runs/fig2 --resume

``--budget``/``--timeout``/``--retries`` tune the worker supervision
(in-process per-sample budgets, hang watchdog and transient-failure retry
budget), and ``--inject`` deliberately breaks one sample
(crash/hang/flaky) to exercise the recovery paths.

Exit codes follow :mod:`repro.exitcodes`: 0 success, 2 invalid command
line or model/validation error, 3 analysis error, 4 execution error
(journal corruption, unrecoverable workers), 130 interrupted.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.errors import AnalysisError, ReproError, SweepInterrupted
from repro.exitcodes import EXIT_INTERRUPTED, EXIT_OK, EXIT_USAGE, exit_code_for
from repro.experiments.config import settings_from_environment
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3a, run_fig3b, run_fig3c, run_fig3d
from repro.experiments.runner import RESULT_CACHE_ENV
from repro.experiments.table1 import run_table1
from repro.perf import global_counters, reset_global_counters
from repro.verify.faults import parse_sweep_fault, sweep_fault_kinds

_EXPERIMENTS = ("table1", "fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig3d")



def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the DATE 2020 paper "
        "'Cache Persistence-Aware Memory Bus Contention Analysis for "
        "Multicore Systems'.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=_EXPERIMENTS + ("all",),
        help="which experiments to run",
    )
    parser.add_argument(
        "--samples",
        type=int,
        default=None,
        help="task sets per sweep point (paper: 1000; default: 100 or "
        "$REPRO_SAMPLES)",
    )
    parser.add_argument(
        "--seed", type=int, default=2020, help="base random seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes; 0 = one per CPU (default: 1 or $REPRO_JOBS)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print analysis-kernel perf counters (iterations, memo hit "
        "ratios, phase timings) after each experiment",
    )
    parser.add_argument(
        "--profile-cprofile",
        metavar="PATH",
        default=None,
        help="run the experiments under cProfile and dump a pstats file to "
        "PATH (inspect with 'python -m pstats PATH'; see "
        "docs/PERFORMANCE.md).  Forces --jobs 1: cProfile only sees the "
        "current process, so worker processes would profile as idle waits",
    )
    parser.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help="checkpoint every completed (point, sample) item into an "
        "append-only JSONL journal in DIR, keyed by the sweep fingerprint",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip items already recorded in the --journal directory "
        "(bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk wall-clock budget of the process-kill watchdog; a "
        "chunk exceeding it is killed and retried (default: no hang "
        "watchdog, or derived from --budget)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-sample in-process analysis budget; an over-budget sample "
        "aborts cooperatively at the next iteration boundary and is "
        "quarantined without retries (default: unlimited)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="per-sample retry budget for transient failures before the "
        "sample is quarantined (default: 2)",
    )
    parser.add_argument(
        "--inject",
        metavar="FAULT",
        default=None,
        help="TEST ONLY: inject a deterministic execution fault "
        f"({', '.join(sweep_fault_kinds())}; optionally "
        "'KIND:POINT,SAMPLE') to prove the recovery paths work",
    )
    parser.add_argument(
        "--result-cache",
        metavar="DIR",
        default=None,
        help="serve repeated analyses from a persistent content-addressed "
        "result cache in DIR (shared with the service daemon; verdicts "
        "are bit-identical with or without it)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested experiments and print their reports."""
    args = _parser().parse_args(argv)
    chosen = list(_EXPERIMENTS) if "all" in args.experiments else args.experiments
    overrides = {"seed": args.seed, "profile": args.profile}
    if args.samples is not None:
        overrides["samples"] = args.samples
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.profile_cprofile is not None:
        # cProfile instruments only this process; spawn workers would show
        # up as one opaque wait.  Profile the inline path instead.
        overrides["jobs"] = 1
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    if args.budget is not None:
        overrides["sample_budget"] = args.budget
    if args.retries is not None:
        overrides["retries"] = args.retries
    try:
        if args.resume and args.journal is None:
            raise AnalysisError("--resume requires a --journal directory")
        fault = parse_sweep_fault(args.inject) if args.inject else None
        settings = settings_from_environment(**overrides)
    except AnalysisError as error:
        # Configuration problems are usage errors regardless of the class
        # that carried them (see repro.exitcodes).
        print(f"repro-experiments: error: {error}", file=sys.stderr)
        return EXIT_USAGE

    if args.result_cache is not None:
        # Exported (not passed) so spawn workers inherit it — see
        # repro.experiments.runner.RESULT_CACHE_ENV.
        os.environ[RESULT_CACHE_ENV] = args.result_cache

    sweep_kwargs = {
        "journal_dir": args.journal,
        "resume": args.resume,
        "fault": fault,
    }
    runners = {
        # table1 and fig1 are cheap and deterministic — nothing to journal.
        "table1": lambda: run_table1(),
        "fig1": lambda: run_fig1(),
        "fig2": lambda: run_fig2(settings, **sweep_kwargs),
        "fig3a": lambda: run_fig3a(settings, **sweep_kwargs),
        "fig3b": lambda: run_fig3b(settings, **sweep_kwargs),
        "fig3c": lambda: run_fig3c(settings, **sweep_kwargs),
        "fig3d": lambda: run_fig3d(settings, **sweep_kwargs),
    }
    profiler = None
    if args.profile_cprofile is not None:
        import cProfile

        profiler = cProfile.Profile()

    for name in chosen:
        if settings.profile:
            reset_global_counters()
        started = time.time()
        try:
            if profiler is not None:
                profiler.enable()
            try:
                result = runners[name]()
            finally:
                if profiler is not None:
                    profiler.disable()
        except SweepInterrupted as interruption:
            print(
                f"repro-experiments: interrupted: {interruption}",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
        except ReproError as error:
            print(f"repro-experiments: error: {error}", file=sys.stderr)
            return exit_code_for(error)
        print(result.render())
        print(f"[{name} completed in {time.time() - started:.1f}s]\n")
        if settings.profile:
            print(global_counters().render())
            print()
    if profiler is not None:
        profiler.dump_stats(args.profile_cprofile)
        print(
            f"[cProfile stats written to {args.profile_cprofile}; inspect "
            f"with 'python -m pstats {args.profile_cprofile}']"
        )
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
