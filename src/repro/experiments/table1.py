"""Experiment 8 — Table I: benchmark parameter extraction.

Reproduces the paper's Table I twice over:

* the *dataset* columns — the canonical rows the experiments sample from
  (published values for the six printed benchmarks, reconstructions for the
  rest), and
* the *model-extracted* columns — the same quantities re-derived from the
  synthetic program models by this library's own static cache analysis at
  the reference geometry (256 sets x 32 B).

Footprint sizes (|ECB|, |PCB|, |UCB|) and PD agree exactly by calibration;
``MD`` matches by calibration while ``MDr`` may differ because the pure
footprint model is constrained to ``MD - MDr = |PCB|`` (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.data.benchmarks import (
    BenchmarkSpec,
    benchmark_table,
    model_extracted_spec,
)
from repro.experiments.report import format_rows


@dataclass
class Table1Row:
    """Dataset and model-extracted parameters for one benchmark."""

    dataset: BenchmarkSpec
    model: BenchmarkSpec

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.dataset.name


@dataclass
class Table1Result:
    """All rows of the reproduced Table I."""

    rows: List[Table1Row]

    def render(self) -> str:
        """Text rendition: dataset values with model-extracted in brackets."""
        header = (
            "name",
            "source",
            "PD",
            "MD",
            "MDr",
            "|ECB|",
            "|PCB|",
            "|UCB|",
            "MD(model)",
            "MDr(model)",
        )
        body = []
        for row in self.rows:
            d, m = row.dataset, row.model
            body.append(
                (
                    d.name,
                    d.source,
                    d.pd,
                    d.md,
                    d.md_r,
                    d.n_ecb,
                    d.n_pcb,
                    d.n_ucb,
                    m.md,
                    m.md_r,
                )
            )
        return format_rows(
            "Table I — benchmark parameters (dataset vs model extraction)",
            header,
            body,
        )


def run_table1() -> Table1Result:
    """Build the reproduced Table I."""
    rows = [
        Table1Row(dataset=spec, model=model_extracted_spec(spec.name))
        for spec in benchmark_table()
    ]
    return Table1Result(rows=rows)
