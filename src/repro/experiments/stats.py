"""Statistical helpers for the experiment harness.

Schedulability ratios are binomial proportions estimated from a finite
number of random task sets; at reduced sample counts (the default here is
100 per point versus the paper's 1000) the sampling error is material.
This module provides Wilson score intervals — well-behaved near 0 and 1,
where schedulability curves spend most of their time — and per-curve
interval series for the sweep results.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import AnalysisError

#: Normal quantiles for the confidence levels the harness offers.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: number of schedulable task sets.
        trials: number of task sets evaluated.
        confidence: one of 0.90, 0.95, 0.99.

    Returns:
        ``(low, high)`` bounds within ``[0, 1]``.
    """
    if trials <= 0:
        raise AnalysisError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise AnalysisError(
            f"successes must be within [0, {trials}], got {successes}"
        )
    try:
        z = _Z_SCORES[round(confidence, 2)]
    except KeyError:
        raise AnalysisError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        ) from None
    proportion = successes / trials
    z2 = z * z
    denominator = 1 + z2 / trials
    centre = (proportion + z2 / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            proportion * (1 - proportion) / trials + z2 / (4 * trials * trials)
        )
        / denominator
    )
    low = max(0.0, centre - margin)
    high = min(1.0, centre + margin)
    # The closed-form endpoints are exact at the boundaries; keep them
    # exact despite floating-point rounding.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def ratio_confidence_intervals(
    outcomes: Dict[float, Sequence],
    variant_labels: Sequence[str],
    confidence: float = 0.95,
) -> Dict[str, List[Tuple[float, float]]]:
    """Wilson intervals for every variant at every utilisation point.

    ``outcomes`` is the structure produced by
    :func:`repro.experiments.runner.run_curve` (per-utilisation lists of
    :class:`~repro.experiments.runner.SampleOutcome`).
    """
    intervals: Dict[str, List[Tuple[float, float]]] = {
        label: [] for label in variant_labels
    }
    for utilization in sorted(outcomes):
        samples = outcomes[utilization]
        for column, label in enumerate(variant_labels):
            successes = sum(1 for s in samples if s.verdicts[column])
            intervals[label].append(
                wilson_interval(successes, len(samples), confidence)
            )
    return intervals
