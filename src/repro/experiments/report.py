"""Plain-text rendering of experiment results.

The original figures are line plots; the harness prints the same series as
aligned ASCII tables (one row per x-value, one column per curve) so results
can be diffed, archived and compared against the paper without a plotting
stack.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_coverage(healthy: int, expected: int, failures: Sequence) -> str:
    """Render a sweep's graceful-degradation summary.

    Only shown when samples were quarantined: names the coverage that the
    aggregates were computed over and one line per quarantined sample with
    its reproducer seed (see ``docs/RESILIENCE.md``).
    """
    ratio = healthy / expected if expected else 1.0
    lines = [
        f"Coverage: {healthy}/{expected} samples "
        f"({100 * ratio:.1f}%) — {len(failures)} quarantined:"
    ]
    for failure in failures:
        lines.append(f"  {failure.describe()}")
    return "\n".join(lines)


def format_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    columns: Dict[str, Sequence[float]],
    precision: int = 3,
) -> str:
    """Render one figure's series as an aligned text table."""
    labels = list(columns)
    width = max(8, *(len(label) + 2 for label in labels)) if labels else 8
    x_width = max(len(x_label) + 2, 10)
    lines = [title, "=" * len(title)]
    header = x_label.ljust(x_width) + "".join(label.rjust(width) for label in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for row_index, x in enumerate(x_values):
        row = f"{x}".ljust(x_width)
        for label in labels:
            row += f"{columns[label][row_index]:.{precision}f}".rjust(width)
        lines.append(row)
    return "\n".join(lines)


def format_gaps(gaps: Dict[str, float]) -> str:
    """Render the per-policy maximum persistence gains."""
    lines = ["Maximum persistence-aware gain (percentage points):"]
    for label, gap in gaps.items():
        lines.append(f"  {label:<6s} {100 * gap:5.1f} pp")
    return "\n".join(lines)


def format_rows(
    title: str, header: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Render generic tabular data with per-column alignment."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in materialised:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
