"""Experiment E9 — Fig. 1: the paper's worked example as a checked report.

Recomputes every quantity the paper derives from its three-task schedule
(Sec. IV) and reports computed-vs-published side by side.  Unlike the other
experiments this one is exact: all twelve checks must match bit-for-bit,
otherwise the reproduction of the equations themselves is broken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.businterference.arbiters import total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.businterference.requests import bao, bas
from repro.crpd.approaches import CrpdCalculator
from repro.experiments.report import format_rows
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import CproCalculator
from repro.persistence.demand import multi_job_demand

#: Window length such that E_1(R2) = 3 and N_{3,3}(R2) = 4, as in Fig. 1.
R2 = 36


@dataclass
class Fig1Check:
    """One quantity of the worked example."""

    label: str
    computed: int
    published: int

    @property
    def matches(self) -> bool:
        """Whether the computed value equals the paper's."""
        return self.computed == self.published


@dataclass
class Fig1Result:
    """All checks of the worked example."""

    checks: List[Fig1Check]

    @property
    def all_match(self) -> bool:
        """Whether the example reproduces exactly."""
        return all(check.matches for check in self.checks)

    def render(self) -> str:
        """Text rendition of the computed-vs-published table."""
        rows = [
            (c.label, c.computed, c.published, "ok" if c.matches else "MISMATCH")
            for c in self.checks
        ]
        return format_rows(
            "Fig. 1 — worked example (RR bus, slot size 1)",
            ("quantity", "computed", "paper", "verdict"),
            rows,
        )


def _example() -> Tuple[TaskSet, Platform, Task, Task, Task]:
    tau1 = Task(
        name="tau1", pd=4, md=6, md_r=1, period=12, deadline=12, priority=1,
        core=0,
        ecbs=frozenset({5, 6, 7, 8, 9, 10}),
        ucbs=frozenset({5, 6, 7, 8, 10}),
        pcbs=frozenset({5, 6, 7, 8, 10}),
    )
    tau2 = Task(
        name="tau2", pd=32, md=8, period=64, deadline=64, priority=2, core=0,
        ecbs=frozenset({1, 2, 3, 4, 5, 6}),
        ucbs=frozenset({5, 6}),
    )
    tau3 = Task(
        name="tau3", pd=4, md=6, md_r=1, period=10, deadline=10, priority=3,
        core=1,
        ecbs=frozenset({5, 6, 7, 8, 9, 10}),
        ucbs=frozenset({5, 6, 7, 8, 10}),
        pcbs=frozenset({5, 6, 7, 8, 10}),
    )
    taskset = TaskSet([tau1, tau2, tau3])
    platform = Platform(
        num_cores=2,
        cache=CacheGeometry(num_sets=16, block_size=32),
        d_mem=1,
        bus_policy=BusPolicy.RR,
        slot_size=1,
    )
    return taskset, platform, tau1, tau2, tau3


def run_fig1() -> Fig1Result:
    """Recompute and check every quantity of the worked example."""
    taskset, platform, tau1, tau2, tau3 = _example()
    crpd = CrpdCalculator(taskset)
    cpro = CproCalculator(taskset)
    baseline = AnalysisContext(taskset=taskset, platform=platform, persistence=False)
    aware = AnalysisContext(taskset=taskset, platform=platform, persistence=True)
    for ctx in (baseline, aware):
        ctx.set_response_time(tau3, 10)

    checks = [
        Fig1Check("gamma_{2,1,x} (Eq. 2)", crpd.gamma(tau2, tau1), 2),
        Fig1Check("BAS_2^x(R2) baseline (Eq. 12)", bas(baseline, tau2, R2), 32),
        Fig1Check("BAO_3^y(R2) baseline (Eq. 13)", bao(baseline, 1, tau3, R2), 24),
        Fig1Check("MD-hat_1(3) (Eq. 10)", multi_job_demand(tau1, 3), 8),
        Fig1Check("rho-hat_{1,2,x}(3) (Eq. 14)", cpro.rho(tau1, tau2, 3), 4),
        Fig1Check("BAS-hat_2^x(R2) (Eq. 15/16)", bas(aware, tau2, R2), 26),
        Fig1Check("BAO-hat_3^y(R2) (Lemma 2)", bao(aware, 1, tau3, R2), 9),
        Fig1Check(
            "BAT_2^x baseline (Eq. 11)",
            total_bus_accesses(baseline, tau2, R2),
            56,
        ),
        Fig1Check(
            "BAT_2^x persistence-aware",
            total_bus_accesses(aware, tau2, R2),
            35,
        ),
    ]
    return Fig1Result(checks=checks)
