"""Fault-tolerant execution of flattened sweep work items.

``ProcessPoolExecutor.map`` — what the sweep engine used before this module
existed — has all-or-nothing semantics: one segfaulting worker, one hung
fixed point or one Ctrl-C surfaces as ``BrokenProcessPool`` and throws away
every completed chunk.  The supervisor replaces it with three recovery
layers, ordered from cheapest to most drastic:

1. **Per-sample isolation.**  Workers catch ordinary exceptions around
   each sample and return them as data (exception class, message,
   traceback digest) instead of letting them abort the chunk.  The
   supervisor retries such samples with capped exponential backoff and
   quarantines them as :class:`SampleFailure` records once the retry
   budget is exhausted.  A failure's ``seed`` is a complete reproducer:
   :func:`repro.experiments.runner.evaluate_sample` with the same
   platform/generation parameters deterministically rebuilds the failing
   task set, which makes quarantine records direct feed for the
   :mod:`repro.verify` corpus.
2. **Hang watchdog.**  With ``settings.timeout`` set, a chunk that
   exceeds its wall-clock budget causes the whole pool to be terminated
   (a hung worker cannot be cancelled any other way).  Guilty chunks go
   through the recovery rule below; innocent in-flight chunks are simply
   resubmitted.
0. **In-process budgets.**  With ``settings.sample_budget`` set, every
   sample's analyses carry a :class:`~repro.budget.Budget` and abort
   *cooperatively* at the next iteration boundary once the per-sample
   wall-clock allowance runs out, surfacing as a typed
   :class:`~repro.errors.BudgetExceeded` instead of hanging until the
   watchdog kills the whole pool.  Budget aborts are deterministic
   properties of the sample (modulo machine speed), so they are
   quarantined immediately with kind ``"budget"`` — no retries — while
   every other sample in the chunk completes normally.  The watchdog
   remains as a *fallback* for non-cooperative hangs (e.g. a bug looping
   between budget checkpoints): when only ``sample_budget`` is set, each
   chunk gets a derived allowance of ``sample_budget x chunk size x``
   :data:`BUDGET_WATCHDOG_FACTOR` ``+`` :data:`BUDGET_WATCHDOG_GRACE`
   seconds before the pool is killed.

3. **Crash recovery.**  ``BrokenProcessPool`` (worker died: segfault,
   ``os._exit``, OOM kill) triggers a pool respawn.  The executor cannot
   say *which* worker died, so retry budget is charged only when guilt
   is unambiguous — exactly one in-flight chunk was lost to the death.
   When several chunks were lost together, all of them become
   *suspects* and are re-executed one at a time in a fresh pool, so the
   next death names its culprit.  A guilty multi-sample chunk is then
   *bisected*: split in half and both halves re-run in isolation, so
   the poison sample is cornered in O(log chunk) pool respawns while
   every innocent sample completes normally.  A single-sample chunk
   that keeps killing workers is quarantined.

The supervisor is deliberately generic: it executes a picklable
``evaluate`` callable over :class:`WorkItem`\\ s and neither imports nor
knows about the figure drivers.  Worker processes are always created with
the **spawn** start method, so worker behaviour (fresh imports, no
inherited memoization epochs or perf-counter state, no accidentally
shared fault flags) and all recovery semantics are identical on Linux and
macOS; ``fork`` would also duplicate the parent's signal handlers and
journal file descriptors into the children.

Completed items are checkpointed to an optional
:class:`~repro.experiments.journal.RunJournal` the moment their chunk
returns, and SIGINT/SIGTERM are converted into a clean
:class:`~repro.errors.SweepInterrupted` after the journal is flushed, so
an interrupted campaign resumes bit-identically.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import signal
import sys
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.budget import Budget
from repro.errors import AnalysisAborted, SweepInterrupted
from repro.experiments.config import SweepSettings
from repro.experiments.journal import RunJournal
from repro.perf import PerfCounters, merge_global
from repro.verify.faults import SweepFault, trigger_sweep_fault

#: Journal/result key of one work item: ``(point_index, sample_index)``.
ItemKey = Tuple[int, int]

#: ``(weight, per-variant verdicts)`` — the raw payload of one outcome.
ItemResult = Tuple[float, Tuple[bool, ...]]

#: Upper bound on any single backoff sleep, seconds.
BACKOFF_CAP = 2.0

#: Poll granularity of the supervision loop, seconds.  Bounds both the
#: watchdog's detection latency and the reaction time to SIGINT/SIGTERM.
_WAIT_TICK = 0.2

#: Watchdog-fallback multiplier on the per-sample budget: a chunk whose
#: cooperative budgets should have fired long ago is declared hung once it
#: exceeds ``sample_budget x chunk size x factor + grace`` seconds.
BUDGET_WATCHDOG_FACTOR = 4.0

#: Constant slack added to the derived watchdog allowance (absorbs worker
#: spawn and import time for tiny budgets).
BUDGET_WATCHDOG_GRACE = 5.0


@dataclass(frozen=True)
class WorkItem:
    """One flattened ``(point, sample)`` unit of sweep work."""

    point: int
    sample: int
    utilization: float
    seed: int

    @property
    def key(self) -> ItemKey:
        """Journal/result key of this item."""
        return (self.point, self.sample)


@dataclass(frozen=True)
class SampleFailure:
    """A quarantined work item and everything needed to reproduce it.

    ``kind`` is the failure taxonomy used throughout the resilience layer:
    ``"exception"`` (the analysis raised), ``"crash"`` (the worker process
    died), ``"hang"`` (the chunk exceeded the watchdog's wall-clock
    allowance) or ``"budget"`` (the sample's in-process
    :class:`~repro.budget.Budget` ran out and the analysis aborted
    cooperatively — never retried).  The
    ``seed`` is a complete reproducer — re-running
    ``evaluate_sample(platform, utilization, variants, generation, seed)``
    deterministically rebuilds the poison task set.
    """

    point: int
    sample: int
    utilization: float
    seed: int
    kind: str
    exception: str
    message: str
    traceback_digest: str
    attempts: int

    def to_record(self) -> Dict:
        """Plain-dict form for the run journal."""
        return {
            "point": self.point,
            "sample": self.sample,
            "utilization": self.utilization,
            "seed": self.seed,
            "failure": self.kind,
            "exception": self.exception,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
            "attempts": self.attempts,
        }

    @classmethod
    def from_record(cls, record: Dict) -> "SampleFailure":
        """Inverse of :meth:`to_record` (used on journal resume)."""
        return cls(
            point=int(record["point"]),
            sample=int(record["sample"]),
            utilization=float(record["utilization"]),
            seed=int(record["seed"]),
            kind=str(record.get("failure", "exception")),
            exception=str(record.get("exception", "")),
            message=str(record.get("message", "")),
            traceback_digest=str(record.get("traceback_digest", "")),
            attempts=int(record.get("attempts", 0)),
        )

    def describe(self) -> str:
        """One-line human-readable summary with the reproducer seed."""
        detail = f": {self.message}" if self.message else ""
        return (
            f"{self.kind} at point {self.point} sample {self.sample} "
            f"(utilization {self.utilization}, reproducer seed {self.seed}, "
            f"{self.attempts} attempt(s)) — {self.exception}{detail}"
        )


def _digest(text: str) -> str:
    """Short stable digest used to correlate identical tracebacks."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _prepare_context(
    evaluate, platform, variants, generation, items, perf
) -> Optional[Dict]:
    """Build the optional shared evaluation context for a batch of items.

    The context protocol: an ``evaluate`` callable may declare
    ``evaluate.supports_context = True`` to receive keyword-only
    ``point``/``sample``/``context`` arguments, and may additionally
    expose ``evaluate.prewarm(platform, variants, generation, items,
    perf, context)`` to pre-populate the context for a whole chunk (e.g.
    batch-compiling every task set of a sweep point at once).  Prewarming
    is strictly an optimisation — a failing hook is ignored and the
    per-item evaluation recomputes whatever is missing, so results never
    depend on it.
    """
    if not getattr(evaluate, "supports_context", False):
        return None
    context: Dict = {}
    prewarm = getattr(evaluate, "prewarm", None)
    if prewarm is not None:
        try:
            prewarm(platform, variants, generation, items, perf, context)
        except Exception:  # noqa: BLE001 — prewarming must never fail a chunk
            context = {}
    return context


def _call_evaluate(
    evaluate, platform, variants, generation, item, perf, budget, context
):
    """Invoke ``evaluate`` for one item, honouring the context protocol."""
    if context is None:
        return evaluate(
            platform, item.utilization, variants, generation, item.seed,
            perf, budget,
        )
    return evaluate(
        platform, item.utilization, variants, generation, item.seed,
        perf, budget, point=item.point, sample=item.sample, context=context,
    )


def run_chunk(args):
    """Evaluate one chunk of ``(item, attempt)`` pairs (worker side).

    Top-level so it is picklable under the spawn start method.  Ordinary
    exceptions are captured per sample — this function is the per-sample
    isolation boundary — while crashes and hangs by their nature escape it
    and are handled by the supervisor.  With a per-sample budget each item
    gets a fresh :class:`~repro.budget.Budget`; a cooperative abort is
    reported as a ``"budget"`` record so the supervisor can quarantine it
    without charging retries.  Returns the result list plus the chunk's
    perf counters for the parent to merge.

    An ``evaluate`` exposing ``evaluate.evaluate_batch`` (the lockstep
    protocol — see :func:`repro.experiments.runner.evaluate_items_batch`)
    evaluates the whole chunk in one call, with identical per-item fault
    injection and isolation semantics and bit-identical results; any
    unexpected failure of the batch layer itself falls back to the
    per-item path below.
    """
    evaluate, platform, variants, generation, chunk, fault, sample_budget = args
    batch = getattr(evaluate, "evaluate_batch", None)
    if batch is not None:
        try:
            return batch(
                platform, variants, generation, chunk, fault, sample_budget
            )
        except Exception:  # noqa: BLE001 — batch layer bug: per-item fallback
            pass
    perf = PerfCounters()
    context = _prepare_context(
        evaluate, platform, variants, generation,
        [item for item, _attempt in chunk], perf,
    )
    results: List[Tuple] = []
    for item, attempt in chunk:
        budget = (
            Budget(wall_seconds=sample_budget)
            if sample_budget is not None
            else None
        )
        try:
            trigger_sweep_fault(fault, item.point, item.sample, attempt)
            weight, verdicts = _call_evaluate(
                evaluate, platform, variants, generation, item, perf, budget,
                context,
            )
            results.append(("ok", item.key, weight, tuple(verdicts)))
        except AnalysisAborted as abort:
            results.append(
                (
                    "budget",
                    item.key,
                    type(abort).__name__,
                    str(abort),
                    _digest(traceback.format_exc()),
                )
            )
        except Exception as error:  # noqa: BLE001 — the isolation boundary
            results.append(
                (
                    "err",
                    item.key,
                    type(error).__name__,
                    str(error),
                    _digest(traceback.format_exc()),
                )
            )
    return results, perf


#: Worker-resident chunk arguments, installed once per worker process by
#: :func:`_worker_init` so per-chunk submissions carry only the chunk
#: payload instead of re-pickling the shared platform/variants/generation
#: state (and the evaluate reference) with every chunk.
_WORKER_STATE: Optional[Tuple] = None


def _worker_init(evaluate, platform, variants, generation, fault, sample_budget):
    """Pool initializer: park the sweep's shared state in the worker."""
    global _WORKER_STATE
    _WORKER_STATE = (evaluate, platform, variants, generation, fault, sample_budget)


def run_resident_chunk(payload):
    """Worker-side chunk entry using the resident state of :func:`_worker_init`.

    Together with the process-global
    :func:`~repro.experiments.stateplane.resident_plane` the worker keeps
    between chunks (task sets, compiled pair tables, warm-start seeds,
    hint chains), this makes workers stateful across chunks while leaving
    every recovery path untouched: a respawned pool simply re-runs
    :func:`_worker_init` and starts with an empty plane.
    """
    evaluate, platform, variants, generation, fault, sample_budget = _WORKER_STATE
    return run_chunk(
        (evaluate, platform, variants, generation, payload, fault, sample_budget)
    )


def chunked(
    items: Sequence[WorkItem], jobs: int
) -> List[Tuple[WorkItem, ...]]:
    """Split the flat item list into contiguous, load-balancing chunks.

    Chunk sizes are *guided*: within each point the leading chunks are
    large (``remaining / (2 x jobs)``) and later ones shrink towards a
    floor, so early dispatches amortise batch compilation over many
    samples while the tail stays fine-grained enough for the work-stealing
    split in :meth:`SweepSupervisor._run_supervised` to even out stragglers.
    Chunks never span sweep points: each point's samples are split on
    their own, so a chunk's prewarm hook (see :func:`_prepare_context`)
    always sees task sets of a single point and the batch kernel compiles
    a whole point together.  Chunk boundaries are not part of the journal
    fingerprint — per-sample seeds make any partitioning (including the
    adaptive sizes and any stealing splits) bit-identical and any journal
    resumable under a different ``jobs`` value.
    """
    jobs = max(jobs, 1)
    chunks: List[Tuple[WorkItem, ...]] = []
    for _point, group in itertools.groupby(items, key=lambda item: item.point):
        point_items = tuple(group)
        floor = max(1, -(-len(point_items) // (jobs * 8)))
        start = 0
        while start < len(point_items):
            remaining = len(point_items) - start
            size = max(floor, remaining // (jobs * 2))
            chunks.append(point_items[start : start + size])
            start += size
    return chunks


class SweepSupervisor:
    """Resilient executor for one sweep's work items.

    Parameters mirror the worker contract: ``evaluate`` must be a
    module-level (picklable) callable with the signature
    ``evaluate(platform, utilization, variants, generation, seed, perf,
    budget) -> (weight, verdicts)`` where ``budget`` is the item's
    :class:`~repro.budget.Budget` or ``None`` when
    ``settings.sample_budget`` is unset.  ``journal`` (optional) receives every
    completed or quarantined item as it happens; ``fault`` (optional)
    carries a deterministic :class:`~repro.verify.faults.SweepFault` into
    the workers for recovery-path testing.
    """

    def __init__(
        self,
        evaluate: Callable,
        platform,
        variants,
        generation,
        settings: SweepSettings,
        journal: Optional[RunJournal] = None,
        fault: Optional[SweepFault] = None,
    ) -> None:
        self.evaluate = evaluate
        self.platform = platform
        self.variants = tuple(variants)
        self.generation = generation
        self.settings = settings
        self.journal = journal
        self.fault = fault
        self._stop_signal: Optional[int] = None

    # -- public entry point --------------------------------------------------

    def run(
        self, items: Sequence[WorkItem]
    ) -> Tuple[Dict[ItemKey, ItemResult], List[SampleFailure]]:
        """Execute ``items``, returning completed results and quarantines.

        Completed results map ``(point, sample)`` to ``(weight,
        verdicts)``; the failure list holds one :class:`SampleFailure` per
        quarantined item.  Raises
        :class:`~repro.errors.SweepInterrupted` on SIGINT/SIGTERM after
        flushing the journal.
        """
        if not items:
            return {}, []
        with self._interruptible():
            if self.settings.jobs == 1:
                return self._run_inline(items)
            return self._run_supervised(items)

    # -- inline execution (jobs == 1) ----------------------------------------

    def _run_inline(
        self, items: Sequence[WorkItem]
    ) -> Tuple[Dict[ItemKey, ItemResult], List[SampleFailure]]:
        """Sequential execution with per-sample isolation and retries.

        No hang watchdog and no crash recovery are possible in-process;
        use ``jobs >= 2`` for full supervision.  One shared evaluation
        context (see :func:`_prepare_context`) survives the whole run —
        prewarmed point by point as execution reaches it — so
        context-aware evaluators can chain warm hints across adjacent
        sweep points, something the per-chunk contexts of the parallel
        path cannot offer.
        """
        completed: Dict[ItemKey, ItemResult] = {}
        failures: List[SampleFailure] = []
        attempts: Dict[ItemKey, int] = {item.key: 0 for item in items}
        by_key: Dict[ItemKey, WorkItem] = {item.key: item for item in items}
        queue: Deque[WorkItem] = deque(items)
        perf = PerfCounters()
        batch = getattr(self.evaluate, "evaluate_batch", None)
        supports_context = getattr(self.evaluate, "supports_context", False)
        prewarm = (
            getattr(self.evaluate, "prewarm", None) if supports_context else None
        )
        context: Optional[Dict] = {} if supports_context else None
        prewarmed_points: set = set()
        by_point: Dict[int, List[WorkItem]] = {}
        if prewarm is not None:
            for item in items:
                by_point.setdefault(item.point, []).append(item)
        while queue:
            self._check_interrupt()
            item = queue.popleft()
            attempt = attempts[item.key]
            if (
                batch is not None
                and attempt == 0
                and queue
                and queue[0].point == item.point
                and attempts[queue[0].key] == 0
            ):
                # First-attempt items of one point at the head of the
                # queue: evaluate them as a single lockstep batch.  Items
                # the batch reports as failed re-queue for the per-item
                # path below, which owns retries, backoff and quarantine.
                run = [item]
                while (
                    queue
                    and queue[0].point == item.point
                    and attempts[queue[0].key] == 0
                ):
                    run.append(queue.popleft())
                payload = tuple((it, 0) for it in run)
                try:
                    results, chunk_perf = batch(
                        self.platform, self.variants, self.generation,
                        payload, self.fault, self.settings.sample_budget,
                    )
                except Exception:  # noqa: BLE001 — batch bug: per-item redo
                    for it in reversed(run):
                        queue.appendleft(it)
                    batch = None
                    continue
                perf.merge(chunk_perf)
                for result in results:
                    if result[0] == "ok":
                        _, key, weight, verdicts = result
                        self._complete(key, weight, tuple(verdicts), completed)
                    elif result[0] == "budget":
                        _, key, exception, message, digest = result
                        attempts[key] += 1
                        self._quarantine(
                            by_key[key], "budget", exception, message, digest,
                            attempts[key], failures,
                        )
                    else:
                        _, key, exception, message, digest = result
                        attempts[key] += 1
                        if attempts[key] > self.settings.retries:
                            self._quarantine(
                                by_key[key], "exception", exception, message,
                                digest, attempts[key], failures,
                            )
                        else:
                            queue.append(by_key[key])
                continue
            if prewarm is not None and item.point not in prewarmed_points:
                prewarmed_points.add(item.point)
                try:
                    prewarm(
                        self.platform, self.variants, self.generation,
                        by_point[item.point], perf, context,
                    )
                except Exception:  # noqa: BLE001 — prewarming is optional
                    pass
            budget = (
                Budget(wall_seconds=self.settings.sample_budget)
                if self.settings.sample_budget is not None
                else None
            )
            try:
                trigger_sweep_fault(self.fault, item.point, item.sample, attempt)
                weight, verdicts = _call_evaluate(
                    self.evaluate,
                    self.platform,
                    self.variants,
                    self.generation,
                    item,
                    perf,
                    budget,
                    context,
                )
            except AnalysisAborted as abort:
                # Budget aborts are deterministic for the sample: straight
                # to quarantine, no retry budget consumed.
                attempts[item.key] += 1
                self._quarantine(
                    item,
                    "budget",
                    type(abort).__name__,
                    str(abort),
                    _digest(traceback.format_exc()),
                    attempts[item.key],
                    failures,
                )
            except Exception as error:  # noqa: BLE001 — isolation boundary
                attempts[item.key] += 1
                if attempts[item.key] > self.settings.retries:
                    self._quarantine(
                        item,
                        "exception",
                        type(error).__name__,
                        str(error),
                        _digest(traceback.format_exc()),
                        attempts[item.key],
                        failures,
                    )
                else:
                    time.sleep(self._backoff_delay(attempts[item.key]))
                    queue.append(item)
            else:
                self._complete(item.key, weight, tuple(verdicts), completed)
        merge_global(perf)
        return completed, failures

    # -- supervised parallel execution ---------------------------------------

    def _run_supervised(
        self, items: Sequence[WorkItem]
    ) -> Tuple[Dict[ItemKey, ItemResult], List[SampleFailure]]:
        completed: Dict[ItemKey, ItemResult] = {}
        failures: List[SampleFailure] = []
        attempts: Dict[ItemKey, int] = {item.key: 0 for item in items}
        by_key: Dict[ItemKey, WorkItem] = {item.key: item for item in items}
        supervisor_perf = PerfCounters()
        ready: Deque[Tuple[WorkItem, ...]] = deque(chunked(items, self.settings.jobs))
        # Chunks implicated in an ambiguous pool death: re-run one at a
        # time (nothing else in flight) so the next death names its culprit.
        suspects: Deque[Tuple[WorkItem, ...]] = deque()
        delayed: List[Tuple[float, int, Tuple[WorkItem, ...]]] = []
        tiebreak = itertools.count()
        executor = self._new_executor()
        futures: Dict = {}
        try:
            while ready or suspects or delayed or futures:
                self._check_interrupt()
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, _, chunk = heapq.heappop(delayed)
                    ready.append(chunk)
                broken = False
                broken_chunks: List[Tuple[WorkItem, ...]] = []
                # Keep at most ``jobs`` chunks in flight so a submitted
                # chunk starts running immediately and the watchdog clock
                # (measured from submission) reflects actual run time.
                while len(futures) < self.settings.jobs:
                    solo = bool(suspects)
                    if solo:
                        if futures:
                            break  # drain the pool before isolating one
                        chunk = suspects.popleft()
                    elif ready:
                        chunk = ready.popleft()
                        # Tail work stealing: when fewer queued chunks
                        # remain than idle workers, split this chunk so a
                        # straggler's samples spread over the idle slots.
                        # Splits stay inside the chunk's sweep point and
                        # per-sample seeds make any partitioning
                        # bit-identical, so journals and --resume are
                        # unaffected.
                        idle_after = self.settings.jobs - len(futures) - 1
                        if idle_after > len(ready) and len(chunk) > 1:
                            mid = len(chunk) // 2
                            ready.append(chunk[mid:])
                            chunk = chunk[:mid]
                            supervisor_perf.chunks_stolen += 1
                    else:
                        break
                    payload = tuple(
                        (item, attempts[item.key]) for item in chunk
                    )
                    try:
                        future = executor.submit(run_resident_chunk, payload)
                    except BrokenProcessPool:
                        (suspects if solo else ready).appendleft(chunk)
                        broken = True
                        break
                    futures[future] = (chunk, time.monotonic())
                    if solo:
                        break  # exactly one suspect in flight
                if not broken and not futures:
                    # Everything is waiting out a backoff delay.
                    pause = max(0.0, delayed[0][0] - time.monotonic())
                    time.sleep(min(pause, _WAIT_TICK))
                    continue
                if not broken:
                    done, _ = wait(
                        set(futures),
                        timeout=_WAIT_TICK,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        chunk, _submitted = futures.pop(future)
                        broken |= not self._absorb_future(
                            future,
                            chunk,
                            completed,
                            failures,
                            attempts,
                            by_key,
                            delayed,
                            tiebreak,
                            broken_chunks,
                        )
                if broken:
                    executor = self._recover_broken_pool(
                        executor,
                        futures,
                        broken_chunks,
                        completed,
                        failures,
                        attempts,
                        by_key,
                        suspects,
                        delayed,
                        tiebreak,
                    )
                    continue
                if (
                    self.settings.timeout is not None
                    or self.settings.sample_budget is not None
                ):
                    executor = self._enforce_timeout(
                        executor,
                        futures,
                        completed,
                        failures,
                        attempts,
                        by_key,
                        ready,
                        delayed,
                        tiebreak,
                    )
        finally:
            self._kill_executor(executor)
        merge_global(supervisor_perf)
        return completed, failures

    # -- helpers -------------------------------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        # Spawn, explicitly: identical worker semantics on Linux/macOS and
        # no inherited signal handlers, fault flags or journal handles.
        # The initializer parks the sweep's shared state in each worker
        # (see _worker_init) so chunk submissions ship only item payloads.
        return ProcessPoolExecutor(
            max_workers=self.settings.jobs,
            mp_context=get_context("spawn"),
            initializer=_worker_init,
            initargs=(
                self.evaluate,
                self.platform,
                self.variants,
                self.generation,
                self.fault,
                self.settings.sample_budget,
            ),
        )

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Forcibly stop an executor, terminating hung workers if needed.

        ``shutdown`` alone never returns while a worker is hung; there is
        no public kill switch, so this reaches for the internal process
        map (stable across CPython 3.9-3.13) with a guard.
        """
        processes = getattr(executor, "_processes", None)
        if processes:
            for process in list(processes.values()):
                process.terminate()
        executor.shutdown(wait=True, cancel_futures=True)

    def _backoff_delay(self, attempt: int) -> float:
        """Capped exponential backoff before the ``attempt``-th retry."""
        return min(self.settings.backoff * (2 ** (attempt - 1)), BACKOFF_CAP)

    def _chunk_allowance(self, chunk: Tuple[WorkItem, ...]) -> Optional[float]:
        """Wall-clock seconds this chunk may run before the watchdog fires.

        ``settings.timeout`` wins when set (explicit per-chunk budget);
        otherwise a generous fallback is derived from the in-process
        sample budget, sized so it can only fire when cooperative aborts
        have failed (a hang between budget checkpoints).  ``None``
        disables the watchdog for this chunk.
        """
        if self.settings.timeout is not None:
            return self.settings.timeout
        if self.settings.sample_budget is not None:
            return (
                self.settings.sample_budget
                * len(chunk)
                * BUDGET_WATCHDOG_FACTOR
                + BUDGET_WATCHDOG_GRACE
            )
        return None

    def _complete(
        self,
        key: ItemKey,
        weight: float,
        verdicts: Tuple[bool, ...],
        completed: Dict[ItemKey, ItemResult],
    ) -> None:
        completed[key] = (weight, verdicts)
        if self.journal is not None:
            self.journal.record_sample(key[0], key[1], weight, verdicts)

    def _quarantine(
        self,
        item: WorkItem,
        kind: str,
        exception: str,
        message: str,
        digest: str,
        attempts: int,
        failures: List[SampleFailure],
    ) -> None:
        failure = SampleFailure(
            point=item.point,
            sample=item.sample,
            utilization=item.utilization,
            seed=item.seed,
            kind=kind,
            exception=exception,
            message=message,
            traceback_digest=digest,
            attempts=attempts,
        )
        failures.append(failure)
        if self.journal is not None:
            self.journal.record_failure(failure.to_record())
        print(
            f"repro-experiments: warning: quarantined {failure.describe()}",
            file=sys.stderr,
        )

    def _retry_or_quarantine(
        self,
        item: WorkItem,
        kind: str,
        exception: str,
        message: str,
        digest: str,
        attempts: Dict[ItemKey, int],
        failures: List[SampleFailure],
        delayed: List,
        tiebreak,
    ) -> None:
        """Account one failed execution of ``item`` and decide its fate."""
        attempts[item.key] += 1
        if attempts[item.key] > self.settings.retries:
            self._quarantine(
                item, kind, exception, message, digest, attempts[item.key], failures
            )
        else:
            not_before = time.monotonic() + self._backoff_delay(attempts[item.key])
            heapq.heappush(delayed, (not_before, next(tiebreak), (item,)))

    def _absorb_future(
        self,
        future,
        chunk: Tuple[WorkItem, ...],
        completed: Dict[ItemKey, ItemResult],
        failures: List[SampleFailure],
        attempts: Dict[ItemKey, int],
        by_key: Dict[ItemKey, WorkItem],
        delayed: List,
        tiebreak,
        broken_chunks: List[Tuple[WorkItem, ...]],
    ) -> bool:
        """Fold one finished future into the run state.

        Returns ``False`` when the future died with the pool — its chunk
        is parked in ``broken_chunks`` for the caller's crash recovery,
        which decides guilt from how many chunks died together.  Returns
        ``True`` otherwise.
        """
        try:
            results, perf = future.result()
        except BrokenProcessPool:
            broken_chunks.append(chunk)
            return False
        except Exception as error:  # noqa: BLE001 — infrastructure failure
            # Not a pool death (e.g. the chunk payload failed to pickle):
            # the pool is still alive, so recover just this chunk.
            self._recover_chunk(
                chunk, "crash", attempts, failures, None, delayed, tiebreak,
                message=f"{type(error).__name__}: {error}",
            )
            return True
        merge_global(perf)
        for result in results:
            if result[0] == "ok":
                _, key, weight, verdicts = result
                self._complete(key, weight, verdicts, completed)
            elif result[0] == "budget":
                # Deterministic in-process abort: quarantine immediately,
                # retries would only re-spend the same budget.
                _, key, exception, message, digest = result
                attempts[key] += 1
                self._quarantine(
                    by_key[key], "budget", exception, message, digest,
                    attempts[key], failures,
                )
            else:
                _, key, exception, message, digest = result
                self._retry_or_quarantine(
                    by_key[key],
                    "exception",
                    exception,
                    message,
                    digest,
                    attempts,
                    failures,
                    delayed,
                    tiebreak,
                )
        return True

    def _recover_chunk(
        self,
        chunk: Tuple[WorkItem, ...],
        kind: str,
        attempts: Dict[ItemKey, int],
        failures: List[SampleFailure],
        target: Optional[Deque],
        delayed: List,
        tiebreak,
        message: str = "",
    ) -> None:
        """Bisect-or-quarantine rule for a chunk guilty of a crash or hang.

        A multi-item chunk is split in half (no retry budget consumed —
        innocent samples must not be punished for sharing a chunk with a
        poison one) and both halves go to ``target`` (the suspects queue
        for crashes, so they re-run in isolation; the ready queue for
        hangs, where per-future deadlines keep guilt unambiguous); a
        single-item chunk consumes one retry and is eventually
        quarantined with ``kind``.
        """
        if len(chunk) > 1:
            mid = len(chunk) // 2
            for half in (chunk[:mid], chunk[mid:]):
                if target is not None:
                    target.append(half)
                else:
                    heapq.heappush(
                        delayed, (time.monotonic(), next(tiebreak), half)
                    )
            return
        exception = "WorkerCrashError" if kind == "crash" else "ChunkTimeoutError"
        if kind == "crash":
            default_message = "worker process died while evaluating this sample"
        else:
            allowance = self._chunk_allowance(chunk)
            default_message = (
                f"chunk exceeded its {allowance}s wall-clock allowance"
            )
        self._retry_or_quarantine(
            chunk[0],
            kind,
            exception,
            message or default_message,
            "",
            attempts,
            failures,
            delayed,
            tiebreak,
        )

    def _recover_broken_pool(
        self,
        executor: ProcessPoolExecutor,
        futures: Dict,
        broken_chunks: List[Tuple[WorkItem, ...]],
        completed: Dict[ItemKey, ItemResult],
        failures: List[SampleFailure],
        attempts: Dict[ItemKey, int],
        by_key: Dict[ItemKey, WorkItem],
        suspects: Deque,
        delayed: List,
        tiebreak,
    ) -> ProcessPoolExecutor:
        """Drain a broken pool, attribute guilt, and respawn it.

        Chunks that still completed are absorbed normally.  If exactly
        one chunk was lost to the death, guilt is unambiguous and it goes
        through the bisect-or-quarantine rule; if several were lost
        together, the executor cannot say which worker died, so all of
        them become suspects — re-executed one at a time, uncharged, so
        innocent samples are never punished for sharing a pool with a
        poison one.
        """
        for future, (chunk, _submitted) in list(futures.items()):
            self._absorb_future(
                future, chunk, completed, failures, attempts, by_key,
                delayed, tiebreak, broken_chunks,
            )
        futures.clear()
        executor.shutdown(wait=False, cancel_futures=True)
        if len(broken_chunks) == 1:
            self._recover_chunk(
                broken_chunks[0], "crash", attempts, failures, suspects,
                delayed, tiebreak,
            )
        else:
            suspects.extend(broken_chunks)
        broken_chunks.clear()
        return self._new_executor()

    def _enforce_timeout(
        self,
        executor: ProcessPoolExecutor,
        futures: Dict,
        completed: Dict[ItemKey, ItemResult],
        failures: List[SampleFailure],
        attempts: Dict[ItemKey, int],
        by_key: Dict[ItemKey, WorkItem],
        ready: Deque,
        delayed: List,
        tiebreak,
    ) -> ProcessPoolExecutor:
        """Kill the pool if any in-flight chunk exceeded its allowance."""
        now = time.monotonic()
        overdue = set()
        for future, (chunk, submitted) in futures.items():
            allowance = self._chunk_allowance(chunk)
            if allowance is not None and now - submitted > allowance:
                overdue.add(future)
        if not overdue:
            return executor
        self._kill_executor(executor)
        for future, (chunk, _submitted) in list(futures.items()):
            if future in overdue:
                self._recover_chunk(
                    chunk, "hang", attempts, failures, ready, delayed, tiebreak
                )
            elif future.done() and future.exception() is None:
                # Completed in the window between the wait and the kill.
                self._absorb_future(
                    future, chunk, completed, failures, attempts, by_key,
                    delayed, tiebreak, [],
                )
            else:
                # Innocent collateral of the pool kill: resubmit as-is.
                ready.append(chunk)
        futures.clear()
        return self._new_executor()

    # -- interrupt handling ---------------------------------------------------

    @contextmanager
    def _interruptible(self) -> Iterator[None]:
        """Convert SIGINT/SIGTERM into a polled stop flag for the run.

        Only possible from the main thread; elsewhere the default signal
        behaviour is left untouched.
        """
        self._stop_signal = None
        if threading.current_thread() is not threading.main_thread():
            yield
            return
        previous = {}

        def _handler(signum, _frame):
            self._stop_signal = signum

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _handler)
        try:
            yield
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _check_interrupt(self) -> None:
        if self._stop_signal is None:
            return
        name = signal.Signals(self._stop_signal).name
        if self.journal is not None:
            hint = (
                f"journal flushed to {self.journal.path}; "
                f"re-run with --resume to continue"
            )
        else:
            hint = "partial results discarded (no --journal directory was given)"
        raise SweepInterrupted(f"sweep interrupted by {name}; {hint}")
