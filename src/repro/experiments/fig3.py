"""Experiments 2-5 — Fig. 3: weighted schedulability sweeps.

Four single-parameter sweeps, each condensing the full utilisation grid
into the weighted schedulability measure (Bastoni et al.):

* **Fig. 3a** — number of cores 2..10 (step 2);
* **Fig. 3b** — memory reload time ``d_mem`` 2..10 us (step 2);
* **Fig. 3c** — cache size 32..1024 sets (powers of two), with benchmark
  parameters re-derived per size (``ParameterSource.HYBRID``) the way the
  authors re-ran Heptane per cache size;
* **Fig. 3d** — RR/TDMA slot size ``s`` 1..6.

All non-swept parameters keep the paper defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import (
    SweepSettings,
    Variant,
    WEIGHTED_UTILIZATIONS,
    default_platform,
    slot_variants,
    standard_variants,
)
from repro.experiments.report import format_coverage, format_table
from repro.experiments.runner import run_curve, weighted_measures
from repro.experiments.supervisor import SampleFailure
from repro.generation.taskset_gen import ParameterSource
from repro.model.platform import CacheGeometry, Platform, microseconds_to_cycles
from repro.verify.faults import SweepFault


@dataclass
class WeightedSweepResult:
    """Weighted schedulability per variant along one parameter axis.

    ``failures`` lists the quarantined samples across every parameter
    value of the sweep (empty in a healthy run); the measures are then
    taken over the surviving samples and :meth:`render` reports coverage.
    """

    title: str
    x_label: str
    x_values: Tuple
    measures: Dict[str, List[float]]
    failures: List[SampleFailure] = field(default_factory=list)
    healthy: int = 0
    expected: int = 0

    def render(self) -> str:
        """Text rendition of the sweep."""
        table = format_table(self.title, self.x_label, self.x_values, self.measures)
        if self.failures:
            table += "\n\n" + format_coverage(
                self.healthy, self.expected, self.failures
            )
        return table

    def series(self, label: str) -> List[float]:
        """One curve by variant label."""
        return self.measures[label]


def _weighted_sweep(
    title: str,
    x_label: str,
    x_values: Sequence,
    platform_for: Callable[[object], Platform],
    variants: Tuple[Variant, ...],
    settings: SweepSettings,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> WeightedSweepResult:
    # Each parameter value runs with a distinct point offset, so each gets
    # its own fingerprint — and hence its own journal file — inside the
    # shared journal directory.
    if settings.utilizations is None or len(settings.utilizations) > len(
        WEIGHTED_UTILIZATIONS
    ):
        settings = replace(settings, utilizations=WEIGHTED_UTILIZATIONS)
    measures: Dict[str, List[float]] = {v.label: [] for v in variants}
    failures: List[SampleFailure] = []
    healthy = expected = 0
    for index, value in enumerate(x_values):
        platform = platform_for(value)
        outcomes = run_curve(
            platform,
            variants,
            settings,
            point_offset=1000 * (index + 1),
            journal_dir=journal_dir,
            resume=resume,
            fault=fault,
        )
        failures.extend(outcomes.failures)
        healthy += outcomes.healthy
        expected += outcomes.expected
        point = weighted_measures(outcomes, variants)
        for label, measure in point.items():
            measures[label].append(measure)
    return WeightedSweepResult(
        title=title,
        x_label=x_label,
        x_values=tuple(x_values),
        measures=measures,
        failures=failures,
        healthy=healthy,
        expected=expected,
    )


def run_fig3a(
    settings: SweepSettings = SweepSettings(),
    core_counts: Sequence[int] = (2, 4, 6, 8, 10),
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> WeightedSweepResult:
    """Fig. 3a — weighted schedulability versus number of cores."""
    base = default_platform()
    return _weighted_sweep(
        "Fig. 3a — weighted schedulability vs number of cores",
        "cores",
        tuple(core_counts),
        lambda m: base.with_num_cores(m),
        standard_variants(include_perfect=False),
        settings,
        journal_dir=journal_dir,
        resume=resume,
        fault=fault,
    )


def run_fig3b(
    settings: SweepSettings = SweepSettings(),
    d_mem_microseconds: Sequence[int] = (2, 4, 6, 8, 10),
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> WeightedSweepResult:
    """Fig. 3b — weighted schedulability versus memory reload time."""
    base = default_platform()
    return _weighted_sweep(
        "Fig. 3b — weighted schedulability vs d_mem (us)",
        "d_mem us",
        tuple(d_mem_microseconds),
        lambda us: base.with_d_mem(microseconds_to_cycles(us)),
        standard_variants(include_perfect=False),
        settings,
        journal_dir=journal_dir,
        resume=resume,
        fault=fault,
    )


def run_fig3c(
    settings: SweepSettings = SweepSettings(),
    cache_sets: Sequence[int] = (32, 64, 128, 256, 512, 1024),
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> WeightedSweepResult:
    """Fig. 3c — weighted schedulability versus cache size.

    Benchmark parameters are re-derived per cache size through the synthetic
    program models (the paper re-ran the Heptane extraction per size).
    """
    base = default_platform()
    generation = replace(
        settings.generation, parameter_source=ParameterSource.HYBRID
    )
    settings = replace(settings, generation=generation)
    return _weighted_sweep(
        "Fig. 3c — weighted schedulability vs cache size (sets)",
        "sets",
        tuple(cache_sets),
        lambda sets: base.with_cache(CacheGeometry(num_sets=sets, block_size=32)),
        standard_variants(include_perfect=False),
        settings,
        journal_dir=journal_dir,
        resume=resume,
        fault=fault,
    )


def run_fig3d(
    settings: SweepSettings = SweepSettings(),
    slot_sizes: Sequence[int] = (1, 2, 3, 4, 5, 6),
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> WeightedSweepResult:
    """Fig. 3d — weighted schedulability versus RR/TDMA slot size."""
    base = default_platform()
    return _weighted_sweep(
        "Fig. 3d — weighted schedulability vs RR/TDMA slot size",
        "slot s",
        tuple(slot_sizes),
        lambda s: base.with_slot_size(s),
        slot_variants(),
        settings,
        journal_dir=journal_dir,
        resume=resume,
        fault=fault,
    )
