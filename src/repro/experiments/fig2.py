"""Experiment 1 — Fig. 2: schedulability versus per-core utilisation.

The paper's Fig. 2 has three panels (FP, RR, TDMA), each showing the number
of schedulable task sets with and without cache persistence plus the
"perfect bus" upper bound, as the per-core utilisation sweeps 0.05 to 1.0.
The headline result: persistence-aware analyses schedule up to 70 (FP),
65 (RR) and 50 (TDMA) percentage points more task sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import (
    SweepSettings,
    default_platform,
    standard_variants,
)
from repro.experiments.report import format_coverage, format_gaps, format_table
from repro.experiments.runner import max_gap, run_curve, schedulability_ratios
from repro.experiments.supervisor import SampleFailure
from repro.model.platform import Platform
from repro.verify.faults import SweepFault


@dataclass
class Fig2Result:
    """Schedulability-ratio series for all seven variants.

    ``failures`` lists the quarantined samples of a degraded sweep (empty
    in a healthy run); the ratios are then taken over the surviving
    samples and :meth:`render` reports the coverage.
    """

    utilizations: Tuple[float, ...]
    ratios: Dict[str, List[float]]
    gaps: Dict[str, float]
    failures: List[SampleFailure] = field(default_factory=list)
    healthy: int = 0
    expected: int = 0

    def render(self) -> str:
        """Text rendition of all three panels plus the gap summary."""
        parts = []
        panels = (
            ("Fig. 2a — FP bus", ("FP-P", "FP", "Perfect")),
            ("Fig. 2b — RR bus", ("RR-P", "RR", "Perfect")),
            ("Fig. 2c — TDMA bus", ("TDMA-P", "TDMA", "Perfect")),
        )
        for title, labels in panels:
            columns = {label: self.ratios[label] for label in labels}
            parts.append(
                format_table(title, "core util", self.utilizations, columns)
            )
        parts.append(format_gaps(self.gaps))
        if self.failures:
            parts.append(
                format_coverage(self.healthy, self.expected, self.failures)
            )
        return "\n\n".join(parts)


def run_fig2(
    settings: SweepSettings = SweepSettings(),
    platform: Platform = None,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> Fig2Result:
    """Regenerate Fig. 2 (all three panels share the same task sets).

    ``journal_dir``/``resume`` checkpoint the sweep for crash-safe
    restarts; ``fault`` injects a deterministic execution fault
    (recovery-path testing only).  See :func:`~repro.experiments.runner.run_curve`.
    """
    base = platform if platform is not None else default_platform()
    variants = standard_variants(include_perfect=True)
    outcomes = run_curve(
        base, variants, settings, journal_dir=journal_dir, resume=resume, fault=fault
    )
    ratios = schedulability_ratios(outcomes, variants)
    gaps = {
        "FP": max_gap(ratios, "FP-P", "FP"),
        "RR": max_gap(ratios, "RR-P", "RR"),
        "TDMA": max_gap(ratios, "TDMA-P", "TDMA"),
    }
    return Fig2Result(
        utilizations=tuple(settings.utilizations),
        ratios=ratios,
        gaps=gaps,
        failures=outcomes.failures,
        healthy=outcomes.healthy,
        expected=outcomes.expected,
    )
