"""Experiment 1 — Fig. 2: schedulability versus per-core utilisation.

The paper's Fig. 2 has three panels (FP, RR, TDMA), each showing the number
of schedulable task sets with and without cache persistence plus the
"perfect bus" upper bound, as the per-core utilisation sweeps 0.05 to 1.0.
The headline result: persistence-aware analyses schedule up to 70 (FP),
65 (RR) and 50 (TDMA) percentage points more task sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.config import (
    SweepSettings,
    default_platform,
    standard_variants,
)
from repro.experiments.report import format_gaps, format_table
from repro.experiments.runner import max_gap, run_curve, schedulability_ratios
from repro.model.platform import Platform


@dataclass
class Fig2Result:
    """Schedulability-ratio series for all seven variants."""

    utilizations: Tuple[float, ...]
    ratios: Dict[str, List[float]]
    gaps: Dict[str, float]

    def render(self) -> str:
        """Text rendition of all three panels plus the gap summary."""
        parts = []
        panels = (
            ("Fig. 2a — FP bus", ("FP-P", "FP", "Perfect")),
            ("Fig. 2b — RR bus", ("RR-P", "RR", "Perfect")),
            ("Fig. 2c — TDMA bus", ("TDMA-P", "TDMA", "Perfect")),
        )
        for title, labels in panels:
            columns = {label: self.ratios[label] for label in labels}
            parts.append(
                format_table(title, "core util", self.utilizations, columns)
            )
        parts.append(format_gaps(self.gaps))
        return "\n\n".join(parts)


def run_fig2(
    settings: SweepSettings = SweepSettings(),
    platform: Platform = None,
) -> Fig2Result:
    """Regenerate Fig. 2 (all three panels share the same task sets)."""
    base = platform if platform is not None else default_platform()
    variants = standard_variants(include_perfect=True)
    outcomes = run_curve(base, variants, settings)
    ratios = schedulability_ratios(outcomes, variants)
    gaps = {
        "FP": max_gap(ratios, "FP-P", "FP"),
        "RR": max_gap(ratios, "RR-P", "RR"),
        "TDMA": max_gap(ratios, "TDMA-P", "TDMA"),
    }
    return Fig2Result(
        utilizations=tuple(settings.utilizations),
        ratios=ratios,
        gaps=gaps,
    )
