"""Append-only run journal for checkpointed, resumable sweeps.

A long campaign (the paper uses 1000 samples x 20 utilisation points x 7
variants per figure) must survive crashes, pre-emption and Ctrl-C without
throwing away completed work.  The journal is the persistence half of that
story (the supervisor in :mod:`repro.experiments.supervisor` is the
recovery half):

* **One file per sweep**, named by the sweep *fingerprint* — a SHA-256 of
  the canonical-JSON description of everything that determines the
  outcomes: platform, variants (policy + analysis configuration),
  samples, seed, utilisation grid, generation config and point offset.
  Execution parameters that cannot change results (``jobs``, ``profile``,
  ``timeout``, ``retries``, ``backoff``) are deliberately excluded, so a
  run interrupted at ``--jobs 8`` can resume at ``--jobs 2``.
* **JSONL records, appended and flushed one at a time.**  The first line
  is a header carrying the fingerprint; every further line checkpoints one
  completed ``(point, sample)`` item — either a ``sample`` record with its
  weight and verdicts or a ``failure`` record quarantining a poison
  sample with its reproducer seed.  Because a kill can only truncate the
  *last* line mid-write, the loader tolerates exactly one trailing partial
  record and rejects any other corruption as
  :class:`~repro.errors.JournalError`.
* **Bit-identical resume.**  Weights are floats serialised via
  ``repr``-round-tripping JSON and verdicts are booleans, so an outcome
  read back from the journal compares equal to the freshly computed one;
  ``--resume`` therefore yields byte-identical reports to an
  uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import JournalError
from repro.experiments.config import SweepSettings, Variant
from repro.model.platform import Platform
from repro.serialization import canonical_json, platform_to_dict

#: Format tag of the journal header record.
JOURNAL_TAG = "repro-run-journal"

#: Current journal format version.
JOURNAL_VERSION = 1

#: How many hex digits of the fingerprint name the journal file.
_FILENAME_DIGITS = 16

PathLike = Union[str, Path]

#: Journal key of one work item: ``(point_index, sample_index)``.
ItemKey = Tuple[int, int]


def _jsonable(value):
    """Recursively convert dataclasses/enums/tuples into plain JSON values."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    return value


def sweep_description(
    platform: Platform,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_offset: int = 0,
) -> Dict:
    """The plain-JSON document the fingerprint is computed over.

    Contains exactly the outcome-determining parameters and nothing else;
    see the module docstring for what is excluded and why.
    """
    descriptions = []
    for variant in variants:
        analysis = _jsonable(variant.analysis)
        # The batched and lockstep kernels are invisible optimisations
        # (bit-identical results); keep them out of the fingerprint so
        # journals written before the knobs existed stay resumable.
        analysis.pop("array_kernel", None)
        analysis.pop("lockstep_kernel", None)
        descriptions.append(
            {
                "label": variant.label,
                "policy": variant.policy.value,
                "analysis": analysis,
            }
        )
    return {
        "format": JOURNAL_TAG,
        "version": JOURNAL_VERSION,
        "platform": platform_to_dict(platform),
        "variants": descriptions,
        "samples": settings.samples,
        "seed": settings.seed,
        "utilizations": list(settings.utilizations),
        "generation": _jsonable(settings.generation),
        "point_offset": point_offset,
    }


def sweep_fingerprint(
    platform: Platform,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_offset: int = 0,
) -> str:
    """Hex SHA-256 identifying a sweep's outcome-determining parameters."""
    text = canonical_json(sweep_description(platform, variants, settings, point_offset))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class RunJournal:
    """One sweep's append-only checkpoint file inside a journal directory.

    Open with :meth:`open`, feed it completed items via
    :meth:`record_sample` / :meth:`record_failure` (each call appends one
    flushed line, so even SIGKILL loses at most the in-flight chunk), and
    read back prior progress from :attr:`completed` / :attr:`failures`.
    """

    def __init__(
        self,
        path: Path,
        fingerprint: str,
        completed: Dict[ItemKey, Tuple[float, Tuple[bool, ...]]],
        failures: Dict[ItemKey, Dict],
        handle,
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        #: ``(point, sample) -> (weight, verdicts)`` read from prior runs.
        self.completed = completed
        #: ``(point, sample) -> failure record`` quarantined by prior runs.
        self.failures = failures
        self._handle = handle

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: PathLike,
        fingerprint: str,
        description: Optional[Dict] = None,
    ) -> "RunJournal":
        """Open (creating if needed) the journal for ``fingerprint``.

        An existing file is validated and its records loaded so the caller
        can skip completed items; a fresh file gets a header line first.
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"{fingerprint[:_FILENAME_DIGITS]}.jsonl"
        completed: Dict[ItemKey, Tuple[float, Tuple[bool, ...]]] = {}
        failures: Dict[ItemKey, Dict] = {}
        if path.exists():
            completed, failures = cls._load(path, fingerprint)
            handle = path.open("a", encoding="utf-8")
        else:
            handle = path.open("a", encoding="utf-8")
            header = {
                "kind": "header",
                "format": JOURNAL_TAG,
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            if description is not None:
                header["sweep"] = description
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
        return cls(path, fingerprint, completed, failures, handle)

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appending ----------------------------------------------------------

    def _append(self, record: Dict) -> None:
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def record_sample(
        self, point: int, sample: int, weight: float, verdicts: Sequence[bool]
    ) -> None:
        """Checkpoint one healthy completed item."""
        self._append(
            {
                "kind": "sample",
                "point": point,
                "sample": sample,
                "weight": weight,
                "verdicts": [bool(v) for v in verdicts],
            }
        )
        self.completed[(point, sample)] = (weight, tuple(bool(v) for v in verdicts))

    def record_failure(self, record: Dict) -> None:
        """Checkpoint one quarantined item (see ``SampleFailure.to_record``)."""
        self._append(dict(record, kind="failure"))
        self.failures[(record["point"], record["sample"])] = dict(record)

    # -- loading ------------------------------------------------------------

    @staticmethod
    def _load(
        path: Path, fingerprint: str
    ) -> Tuple[Dict[ItemKey, Tuple[float, Tuple[bool, ...]]], Dict[ItemKey, Dict]]:
        lines = path.read_text(encoding="utf-8").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: List[Dict] = []
        for number, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                if number == len(lines) - 1:
                    # A kill mid-append can truncate only the final line;
                    # that item simply re-runs on resume.
                    break
                raise JournalError(
                    f"journal {path} line {number + 1} is corrupt: {error}"
                ) from error
            if not isinstance(record, dict):
                raise JournalError(
                    f"journal {path} line {number + 1} is not a record"
                )
            records.append(record)
        if not records:
            # Header lost to truncation: treat as a fresh (empty) journal.
            return {}, {}
        header = records[0]
        if header.get("kind") != "header" or header.get("format") != JOURNAL_TAG:
            raise JournalError(f"journal {path} has no valid header line")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} has unsupported version "
                f"{header.get('version')!r}"
            )
        if header.get("fingerprint") != fingerprint:
            raise JournalError(
                f"journal {path} belongs to a different sweep "
                f"(fingerprint {header.get('fingerprint')!r}, "
                f"expected {fingerprint!r})"
            )
        completed: Dict[ItemKey, Tuple[float, Tuple[bool, ...]]] = {}
        failures: Dict[ItemKey, Dict] = {}
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "sample":
                try:
                    key = (int(record["point"]), int(record["sample"]))
                    weight = float(record["weight"])
                    verdicts = tuple(bool(v) for v in record["verdicts"])
                except (KeyError, TypeError, ValueError) as error:
                    raise JournalError(
                        f"journal {path} has a malformed sample record: "
                        f"{error}"
                    ) from error
                completed[key] = (weight, verdicts)
            elif kind == "failure":
                try:
                    key = (int(record["point"]), int(record["sample"]))
                except (KeyError, TypeError, ValueError) as error:
                    raise JournalError(
                        f"journal {path} has a malformed failure record: "
                        f"{error}"
                    ) from error
                failures[key] = record
            elif kind != "header":
                raise JournalError(
                    f"journal {path} has a record of unknown kind {kind!r}"
                )
        return completed, failures
