"""Generic sweep machinery shared by all figure drivers.

Every experiment point boils down to: draw ``samples`` random task sets for
one platform configuration, evaluate each task set under every analysis
variant, and aggregate either a schedulability *ratio* (Fig. 2) or the
utilisation-weighted schedulability *measure* (Fig. 3).

Determinism: the RNG seed of each sample is a pure function of the sweep
seed, the point index and the sample index, so results are reproducible and
independent of the degree of parallelism.  All variants see the *same*
task sets, as in the paper.

Parallelism and resilience: the sweep is flattened into individual
``(point, sample)`` work items and executed by the fault-tolerant
:class:`~repro.experiments.supervisor.SweepSupervisor` — contiguous
chunks dealt to worker processes created with the explicit **spawn**
start method (identical worker behaviour, perf-counter state and
recovery semantics on Linux and macOS; see the supervisor docstring).
Because each sample's seed is order-independent, any partitioning,
retry or resume order yields the same outcomes bit for bit; chunking
merely balances load (a utilisation point near the schedulability cliff
costs far more than a trivially feasible one, so per-*point* parallelism
leaves workers idle).  Failing samples are quarantined as
:class:`~repro.experiments.supervisor.SampleFailure` records instead of
aborting the sweep, and an optional journal directory checkpoints every
completed item so an interrupted campaign resumes bit-identically
(``--journal``/``--resume``; see ``docs/RESILIENCE.md``).  Worker
processes also return their :class:`repro.perf.PerfCounters`, which are
merged into the parent's global counters so ``--profile`` sees the whole
sweep.
"""

from __future__ import annotations

import itertools
import os
import random
import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, MutableMapping, Optional, Sequence, Tuple

from repro.analysis.schedulability import (
    check_schedulability,
    check_schedulability_batch,
)
from repro.analysis.wcrt import WarmHint
from repro.analysis.weighted import weighted_schedulability
from repro.budget import Budget
from repro.errors import AnalysisAborted, AnalysisError, JournalError
from repro.experiments.config import SweepSettings, Variant
from repro.experiments.journal import RunJournal, sweep_description, sweep_fingerprint
from repro.experiments.stateplane import resident_plane
from repro.experiments.supervisor import (
    SampleFailure,
    SweepSupervisor,
    WorkItem,
    _digest,
)
from repro.generation.taskset_gen import GenerationConfig, generate_taskset
from repro.model.interference import prefill_batch
from repro.model.platform import BusPolicy, Platform
from repro.perf import PerfCounters
from repro.resultcache import ResultCache
from repro.verify.faults import SweepFault, trigger_sweep_fault

#: Environment variable pointing sweep workers at a shared persistent
#: result cache (see :mod:`repro.resultcache`).  An env var rather than a
#: parameter because the evaluation functions pickle by reference into
#: spawn workers: the variable is inherited by every worker process, and
#: each lazily opens its own handle on first use.  Verdicts are
#: bit-identical with or without the cache (the bounds are deterministic),
#: so this knob — like the journal — never changes results.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE_DIR"

_RESULT_CACHE: Optional[ResultCache] = None
_RESULT_CACHE_ROOT: Optional[str] = None


def _result_cache() -> Optional[ResultCache]:
    """Process-local handle on the env-configured result cache (if any)."""
    global _RESULT_CACHE, _RESULT_CACHE_ROOT
    root = os.environ.get(RESULT_CACHE_ENV) or None
    if root != _RESULT_CACHE_ROOT:
        _RESULT_CACHE = ResultCache(root) if root is not None else None
        _RESULT_CACHE_ROOT = root
    return _RESULT_CACHE


@dataclass(frozen=True)
class SampleOutcome:
    """Verdicts for one generated task set under every variant."""

    weight: float
    verdicts: Tuple[bool, ...]


def _sample_seed(seed: int, point_index: int, sample_index: int) -> int:
    """Stable per-sample seed, independent of execution order."""
    return (seed * 1_000_003 + point_index * 10_007 + sample_index) & 0x7FFFFFFF


# -- variant dominance -------------------------------------------------------
#
# The catalogue's variants are not independent: a persistence-aware bound is
# pointwise at most its baseline counterpart on the same bus (the
# ``persistence-tightens`` oracle), and the perfect bus lower-bounds every
# arbiter (the ``perfect-dominance`` oracle).  The implication cuts both
# ways.  When a *tighter* variant already failed with a genuine deadline
# miss, every variant it dominates must miss the same deadline — its WCRT
# bound can only be larger — so the sweep records ``False`` without running
# the analysis.  Conversely, when a *looser* variant is schedulable, every
# variant dominating it is schedulable too (its bounds are pointwise
# smaller), and the sweep records ``True`` for free.  Which direction pays
# depends on where the sample sits: below the schedulability cliff almost
# everything passes, so evaluating the loose (cheap) baselines first lets
# their successes discharge the expensive persistence-aware analyses; above
# the cliff almost everything fails, so evaluating the tight variants first
# lets their deadline misses discharge the rest.  ``evaluate_sample`` picks
# the order from the point's utilisation — a deterministic function of the
# work item, and pure perf: the verdicts are bit-identical in either order.
#
# Failure skips fire only on an actual deadline miss (``failed_task`` set):
# utilisation prechecks, bus-overload rejections and outer-loop exhaustion
# carry no cross-variant implication and are never used as skip evidence.
# Success skips fire on any schedulable verdict of a dominated variant, but
# never *for* a perfect-bus variant: the perfect bus has its own
# bus-overload precheck, whose rejection no other variant's success can
# rule out, so its verdict always comes from ``check_schedulability``.


def _dominates(a: Variant, b: Variant) -> bool:
    """``True`` when ``a``'s WCRT bounds are pointwise at most ``b``'s."""
    ca, cb = a.analysis, b.analysis
    if ca.crpd_approach is not cb.crpd_approach:
        return False
    if ca.cpro_approach is not cb.cpro_approach:
        return False
    if not ca.persistence and cb.persistence:
        return False  # a is looser on the persistence terms
    if not ca.persistence_in_low and cb.persistence_in_low:
        return False
    if ca.tdma_slot_alignment and not cb.tdma_slot_alignment:
        return False  # a charges extra TDMA waiting that b does not
    return a.policy is b.policy or a.policy is BusPolicy.PERFECT


_Plan = Tuple[
    Tuple[int, ...],
    Tuple[Tuple[int, ...], ...],
    Tuple[int, ...],
    Tuple[Tuple[int, ...], ...],
]

_PLAN_CACHE: Dict[Tuple[Variant, ...], _Plan] = {}

#: Utilisation at or below which ``evaluate_sample`` runs the loosest
#: variants first (harvesting success skips); above it the tightest run
#: first (harvesting failure skips).  Pure performance tuning — verdicts
#: are bit-identical in either order — roughly matching where the standard
#: catalogue's baselines start falling off the schedulability cliff.
_SUCCESS_ORDER_UTILIZATION = 0.5


def _dominance_plan(variants: Tuple[Variant, ...]) -> _Plan:
    """Evaluation orders plus per-variant skip-evidence indices.

    Returns ``(tight_order, dominators, loose_order, dominated)``.
    ``tight_order`` puts tighter variants first (perfect bus, then
    persistence-aware, then baseline); ``loose_order`` is its reverse.
    ``dominators[i]`` names the variants dominating ``i`` that run earlier
    in ``tight_order`` (failure evidence), ``dominated[i]`` the variants
    ``i`` dominates that run earlier in ``loose_order`` (success
    evidence; empty for perfect-bus variants, whose bus-overload precheck
    no other variant's success can rule out).  Both lists only name
    variants evaluated *earlier* in their order, so each plan is
    cycle-free by construction even for duplicate variants.  Verdicts are
    always reported in the caller's original variant order.
    """
    plan = _PLAN_CACHE.get(variants)
    if plan is None:
        order = tuple(
            sorted(
                range(len(variants)),
                key=lambda i: (
                    variants[i].policy is not BusPolicy.PERFECT,
                    not variants[i].analysis.persistence,
                    not variants[i].analysis.persistence_in_low,
                    variants[i].analysis.tdma_slot_alignment,
                    i,
                ),
            )
        )
        position = {index: rank for rank, index in enumerate(order)}
        dominators = tuple(
            tuple(
                j
                for j in order
                if position[j] < position[i] and _dominates(variants[j], variants[i])
            )
            for i in range(len(variants))
        )
        loose_order = tuple(reversed(order))
        dominated = tuple(
            ()
            if variants[i].policy is BusPolicy.PERFECT
            else tuple(
                j
                for j in loose_order
                if position[j] > position[i] and _dominates(variants[i], variants[j])
            )
            for i in range(len(variants))
        )
        plan = (order, dominators, loose_order, dominated)
        _PLAN_CACHE[variants] = plan
    return plan


def evaluate_sample(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    generation: GenerationConfig,
    sample_seed: int,
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
    taskset=None,
    hint_chain: Optional[MutableMapping[int, WarmHint]] = None,
) -> SampleOutcome:
    """Generate one task set and test it under every variant.

    The task set is generated once from ``base_platform`` (generation only
    depends on ``d_mem``, the cache geometry and the core count, not on the
    arbitration policy) and shared across variants; passing ``taskset``
    skips the generation (the sweep layer pre-generates whole points so
    their pair tables batch-compile together).  Variants are evaluated in
    dominance order: once a tighter variant fails with a genuine deadline
    miss, the variants it dominates are recorded unschedulable without
    running their analyses (``perf.dominance_skips``) — the verdict tuple,
    reported in the caller's variant order, is bit-identical either way.

    ``hint_chain`` (optional, mutated in place) maps variant index to the
    :class:`~repro.analysis.wcrt.WarmHint` of the previous sample in an
    adjacent-point chain; each schedulable verdict replaces the variant's
    entry with this sample's converged map, so consecutive utilisation
    steps of one sample index seed each other.  Hints are strictly
    re-verified before use (cold fallback on any mismatch), so chained
    verdicts — and the full WCRT results behind them — stay bit-identical
    to cold runs.

    ``budget`` (one :class:`~repro.budget.Budget` covering *all* variants
    of the sample) lets an over-budget analysis abort cooperatively with
    :class:`~repro.errors.BudgetExceeded` instead of running on until the
    supervisor's process-kill watchdog fires.
    """
    if taskset is None:
        rng = random.Random(sample_seed)
        taskset = generate_taskset(rng, base_platform, utilization, generation)
    weight = taskset.total_utilization(base_platform.d_mem)
    variants = tuple(variants)
    order, dominators, loose_order, dominated = _dominance_plan(variants)
    if utilization <= _SUCCESS_ORDER_UTILIZATION:
        # Below the cliff most variants pass: run the loose (cheap)
        # baselines first so their successes discharge the tighter
        # analyses.  Above it, tightest-first failure skips pay instead.
        # Both skip rules are checked in either order; the order only
        # decides which evidence exists by the time a variant comes up.
        order = loose_order
    result_cache = _result_cache()
    verdicts: List[bool] = [False] * len(variants)
    missed: List[bool] = [False] * len(variants)
    for index in order:
        variant = variants[index]
        if any(verdicts[dom] for dom in dominated[index]):
            # A dominated variant is schedulable: this variant's
            # (pointwise smaller) WCRT bounds converge below the same
            # deadlines.  No converged map exists to donate to the hint
            # chain, so any stale entry is dropped.
            verdicts[index] = True
            if perf is not None:
                perf.dominance_skips += 1
            if hint_chain is not None:
                hint_chain.pop(index, None)
            continue
        if any(missed[dom] for dom in dominators[index]):
            # A dominating variant already saw a genuine deadline miss:
            # this variant's (larger) WCRT bound misses it too.
            if perf is not None:
                perf.dominance_skips += 1
            continue
        hint = hint_chain.get(index) if hint_chain is not None else None
        verdict = check_schedulability(
            taskset,
            base_platform.with_bus_policy(variant.policy),
            variant.analysis,
            perf=perf,
            budget=budget,
            warm_hint=hint,
            result_cache=result_cache,
        )
        verdicts[index] = verdict.schedulable
        wcrt = verdict.wcrt
        missed[index] = wcrt is not None and wcrt.failed_task is not None
        if hint_chain is not None:
            if wcrt is not None and wcrt.schedulable:
                hint_chain[index] = WarmHint(
                    response_times={
                        task.priority: value
                        for task, value in wcrt.response_times.items()
                    },
                    outer_iterations=wcrt.outer_iterations,
                )
            else:
                # A donor is only useful while the chain stays schedulable;
                # drop it rather than offer a stale map to every later step.
                hint_chain.pop(index, None)
    return SampleOutcome(weight=weight, verdicts=tuple(verdicts))


def prewarm_items(
    base_platform: Platform,
    variants: Sequence[Variant],
    generation: GenerationConfig,
    items: Sequence[WorkItem],
    perf: Optional[PerfCounters] = None,
    context: Optional[Dict] = None,
) -> Optional[Dict]:
    """Pre-generate a chunk's task sets and batch-compile their pair tables.

    Fills ``context["tasksets"]`` (seed-keyed) so :func:`evaluate_item`
    skips per-sample generation, then runs one
    :func:`~repro.model.interference.prefill_batch` per distinct
    CRPD/CPRO approach pair among the array-kernel variants — the whole
    point's per-pair tables compile in a single batch instead of one lazy
    lookup at a time.  Task sets come from the worker-resident
    :func:`~repro.experiments.stateplane.resident_plane`, so a chunk
    re-visiting a sample another chunk of this worker already touched
    reuses the same object — generation, compiled pair tables and
    warm-start seeds included (``perf.resident_table_hits``); the
    re-prefill of a resident task set is an idempotent no-op.  Purely an
    optimisation: every step is idempotent and the analyses recompute
    anything missing, so a skipped or failed prewarm never changes
    results.
    """
    if context is None:
        return None
    tasksets = context.setdefault("tasksets", {})
    plane = resident_plane()
    fresh = []
    for item in items:
        if item.seed not in tasksets:
            taskset = plane.taskset(
                base_platform, generation, item.utilization, item.seed, perf
            )
            tasksets[item.seed] = taskset
            fresh.append(taskset)
    if fresh:
        combos = {
            (variant.analysis.crpd_approach, variant.analysis.cpro_approach)
            for variant in variants
            if variant.analysis.array_kernel and variant.analysis.bitset_kernel
        }
        for crpd_approach, cpro_approach in sorted(
            combos, key=lambda pair: (pair[0].name, pair[1].name)
        ):
            prefill_batch(tuple(fresh), crpd_approach, cpro_approach, perf=perf)
    return context


def evaluate_item(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    generation: GenerationConfig,
    sample_seed: int,
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
    *,
    point: Optional[int] = None,
    sample: Optional[int] = None,
    context: Optional[Dict] = None,
) -> Tuple[float, Tuple[bool, ...]]:
    """Supervisor-facing adapter: :func:`evaluate_sample` as raw payload.

    Module-level so it pickles by reference into spawn workers.  The
    keyword-only ``point``/``sample``/``context`` trio implements the
    supervisor's shared-context protocol (``supports_context`` below):
    ``context`` carries the pre-generated task sets of
    :func:`prewarm_items` (consumed here, one use each) and the per-sample
    warm-hint chains threaded through consecutive utilisation points.
    Chains live in the worker-resident
    :func:`~repro.experiments.stateplane.resident_plane` (scoped by
    platform/variants/generation so unrelated sweeps sharing a worker
    never exchange hints), so they survive chunk boundaries: parallel
    runs now chain adjacent points exactly like the sequential path.
    Hints are verify-or-cold, so chain residency never changes verdicts.
    """
    taskset = None
    hint_chain = None
    if context is not None:
        taskset = context.setdefault("tasksets", {}).pop(sample_seed, None)
        if sample is not None:
            scope = (base_platform, tuple(variants), generation)
            hint_chain = context.setdefault("chains", {}).setdefault(
                sample, resident_plane().chain(scope, sample)
            )
    outcome = evaluate_sample(
        base_platform, utilization, variants, generation, sample_seed, perf,
        budget=budget, taskset=taskset, hint_chain=hint_chain,
    )
    return outcome.weight, outcome.verdicts


def _evaluate_point_batch(
    base_platform: Platform,
    utilization: float,
    variants: Tuple[Variant, ...],
    generation: GenerationConfig,
    group: List[WorkItem],
    perf: PerfCounters,
    sample_budget: Optional[float],
    results_by_key: Dict,
) -> None:
    """Evaluate one point's items together through the lockstep engine.

    The batch twin of running :func:`evaluate_sample` over ``group`` item
    by item: same dominance orders and skip rules (one utilisation per
    point, so one order covers the whole group), same warm-hint chain
    updates, same per-item :class:`~repro.budget.Budget` spanning all
    variants, same result-cache interaction — but each variant's analyses
    run as one :func:`~repro.analysis.schedulability.check_schedulability_batch`
    call, so the cold fixed points of the whole group iterate in lockstep.
    Verdicts are bit-identical to the scalar sequence.  An item whose
    analysis raises is recorded with the scalar path's tuple shape
    (``budget``/``err``) and excluded from later variants, exactly as the
    exception would have aborted the scalar per-item evaluation.
    """
    plane = resident_plane()
    scope = (base_platform, variants, generation)
    context: Dict = {}
    prewarm_items(base_platform, variants, generation, group, perf, context)
    pool = context.get("tasksets", {})
    tasksets: Dict = {}
    for item in group:
        taskset = pool.pop(item.seed, None)
        if taskset is None:
            taskset = plane.taskset(
                base_platform, generation, item.utilization, item.seed, perf
            )
        tasksets[item.key] = taskset
    budgets = {
        item.key: (
            Budget(wall_seconds=sample_budget)
            if sample_budget is not None
            else None
        )
        for item in group
    }
    chains = {item.key: plane.chain(scope, item.sample) for item in group}
    weights = {
        item.key: tasksets[item.key].total_utilization(base_platform.d_mem)
        for item in group
    }
    order, dominators, loose_order, dominated = _dominance_plan(variants)
    if utilization <= _SUCCESS_ORDER_UTILIZATION:
        order = loose_order
    result_cache = _result_cache()
    verdicts = {item.key: [False] * len(variants) for item in group}
    missed = {item.key: [False] * len(variants) for item in group}
    dead: set = set()
    for index in order:
        variant = variants[index]
        lanes: List[WorkItem] = []
        for item in group:
            key = item.key
            if key in dead:
                continue
            if any(verdicts[key][dom] for dom in dominated[index]):
                verdicts[key][index] = True
                perf.dominance_skips += 1
                chains[key].pop(index, None)
                continue
            if any(missed[key][dom] for dom in dominators[index]):
                perf.dominance_skips += 1
                continue
            lanes.append(item)
        if not lanes:
            continue
        batch = check_schedulability_batch(
            [tasksets[item.key] for item in lanes],
            base_platform.with_bus_policy(variant.policy),
            variant.analysis,
            perf=perf,
            budgets=[budgets[item.key] for item in lanes],
            warm_hints=[chains[item.key].get(index) for item in lanes],
            result_cache=result_cache,
        )
        for item, verdict in zip(lanes, batch):
            key = item.key
            if isinstance(verdict, BaseException):
                dead.add(key)
                kind = (
                    "budget" if isinstance(verdict, AnalysisAborted) else "err"
                )
                results_by_key[key] = (
                    kind,
                    key,
                    type(verdict).__name__,
                    str(verdict),
                    _digest("".join(traceback.format_exception(verdict))),
                )
                continue
            verdicts[key][index] = verdict.schedulable
            wcrt = verdict.wcrt
            missed[key][index] = wcrt is not None and wcrt.failed_task is not None
            chain = chains[key]
            if wcrt is not None and wcrt.schedulable:
                chain[index] = WarmHint(
                    response_times={
                        task.priority: value
                        for task, value in wcrt.response_times.items()
                    },
                    outer_iterations=wcrt.outer_iterations,
                )
            else:
                chain.pop(index, None)
    for item in group:
        key = item.key
        if key in dead:
            continue
        results_by_key[key] = ("ok", key, weights[key], tuple(verdicts[key]))


def evaluate_items_batch(
    base_platform: Platform,
    variants: Sequence[Variant],
    generation: GenerationConfig,
    chunk,
    fault: Optional[SweepFault] = None,
    sample_budget: Optional[float] = None,
):
    """``run_chunk``-compatible batch evaluation of one chunk (worker side).

    Accepts the supervisor's ``(item, attempt)`` chunk payload and returns
    the same ``(results, perf)`` pair :func:`repro.experiments.supervisor.run_chunk`
    produces from the per-item path — with the same per-item fault
    injection and the same per-sample isolation (one poisoned item yields
    its ``err``/``budget`` tuple; the rest of the chunk completes).  Items
    are grouped by sweep point (chunks are point-aligned, so normally one
    group) and each group runs through :func:`_evaluate_point_batch`.
    """
    perf = PerfCounters()
    variants = tuple(variants)
    chunk = list(chunk)
    results_by_key: Dict = {}
    alive: List[WorkItem] = []
    for item, attempt in chunk:
        try:
            trigger_sweep_fault(fault, item.point, item.sample, attempt)
        except AnalysisAborted as abort:
            results_by_key[item.key] = (
                "budget",
                item.key,
                type(abort).__name__,
                str(abort),
                _digest(traceback.format_exc()),
            )
            continue
        except Exception as error:  # noqa: BLE001 — the isolation boundary
            results_by_key[item.key] = (
                "err",
                item.key,
                type(error).__name__,
                str(error),
                _digest(traceback.format_exc()),
            )
            continue
        alive.append(item)
    for (point, utilization), grouped in itertools.groupby(
        alive, key=lambda item: (item.point, item.utilization)
    ):
        _evaluate_point_batch(
            base_platform,
            utilization,
            variants,
            generation,
            list(grouped),
            perf,
            sample_budget,
            results_by_key,
        )
    return [results_by_key[item.key] for item, _attempt in chunk], perf


#: Supervisor protocol: accept the ``point``/``sample``/``context`` kwargs.
evaluate_item.supports_context = True
#: Supervisor protocol: per-chunk batch prewarming hook.
evaluate_item.prewarm = prewarm_items
#: Supervisor protocol: whole-chunk batch evaluation via the lockstep engine.
evaluate_item.evaluate_batch = evaluate_items_batch


class CurveOutcomes(Dict[float, List[SampleOutcome]]):
    """Per-utilisation outcome lists plus graceful-degradation metadata.

    Behaves exactly like the plain ``Dict[float, List[SampleOutcome]]``
    the aggregators always consumed; additionally carries the sweep's
    quarantined :attr:`failures` and the resulting :attr:`coverage` so
    callers can report how much of the campaign survived.
    """

    def __init__(
        self,
        mapping: Dict[float, List[SampleOutcome]],
        failures: Sequence[SampleFailure] = (),
        expected: int = 0,
    ) -> None:
        super().__init__(mapping)
        #: Quarantined samples, in ``(point, sample)`` order.
        self.failures: List[SampleFailure] = list(failures)
        #: Total number of ``(point, sample)`` items the sweep asked for.
        self.expected = expected

    @property
    def healthy(self) -> int:
        """Number of samples that completed and were aggregated."""
        return sum(len(samples) for samples in self.values())

    @property
    def coverage(self) -> float:
        """Fraction of requested samples that completed (1.0 = no loss)."""
        return self.healthy / self.expected if self.expected else 1.0


def run_point(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_index: int,
) -> List[SampleOutcome]:
    """All sample outcomes for one (platform, utilisation) point."""
    items = [
        WorkItem(
            point=point_index,
            sample=i,
            utilization=utilization,
            seed=_sample_seed(settings.seed, point_index, i),
        )
        for i in range(settings.samples)
    ]
    supervisor = SweepSupervisor(
        evaluate_item, base_platform, tuple(variants), settings.generation, settings
    )
    completed, _failures = supervisor.run(items)
    return [
        SampleOutcome(weight=weight, verdicts=verdicts)
        for weight, verdicts in (
            completed[item.key] for item in items if item.key in completed
        )
    ]


def run_curve(
    base_platform: Platform,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_offset: int = 0,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> CurveOutcomes:
    """Outcomes for every utilisation point of the grid.

    ``point_offset`` decorrelates the RNG streams of different parameter
    values in multi-parameter sweeps.  With ``settings.jobs > 1`` the
    flattened ``(point, sample)`` items are evaluated in supervised
    worker processes; results are bit-identical to the sequential run
    because the per-sample seeds do not depend on execution order.

    Cross-point warm-start chains: each sample index carries its
    converged response-time maps from utilisation ``u`` into ``u + δ`` as
    :class:`~repro.analysis.wcrt.WarmHint`\\ s (strictly re-verified, cold
    fallback — see :func:`evaluate_sample`).  The chains live in the
    worker-resident :func:`~repro.experiments.stateplane.resident_plane`,
    so they survive chunk boundaries: sequential runs chain through the
    whole curve and parallel workers chain whatever adjacent points they
    happen to execute.  Chains are pure warm-start donors, so verdicts
    are bit-identical with any chunk-to-worker assignment — including
    the adaptive chunk sizes and tail work stealing of
    :class:`~repro.experiments.supervisor.SweepSupervisor`.

    ``journal_dir`` checkpoints every completed item into an append-only
    JSONL journal keyed by the sweep fingerprint; with ``resume`` the
    journalled items are skipped and their recorded outcomes reused
    bit-identically.  Opening a non-empty journal without ``resume``
    raises :class:`~repro.errors.JournalError` rather than silently
    mixing two runs.  ``fault`` injects a deterministic execution fault
    into the workers (recovery-path testing only).
    """
    items: List[WorkItem] = [
        WorkItem(
            point=index,
            sample=i,
            utilization=utilization,
            seed=_sample_seed(settings.seed, point_offset + index, i),
        )
        for index, utilization in enumerate(settings.utilizations)
        for i in range(settings.samples)
    ]
    variants = tuple(variants)
    journal: Optional[RunJournal] = None
    if journal_dir is not None:
        fingerprint = sweep_fingerprint(base_platform, variants, settings, point_offset)
        journal = RunJournal.open(
            journal_dir,
            fingerprint,
            sweep_description(base_platform, variants, settings, point_offset),
        )
        if not resume and (journal.completed or journal.failures):
            path = journal.path
            journal.close()
            raise JournalError(
                f"journal {path} already holds results for this sweep; "
                f"pass --resume to continue it or remove the file to start over"
            )
    with journal if journal is not None else nullcontext():
        prior = dict(journal.completed) if journal is not None else {}
        replayed = (
            [
                SampleFailure.from_record(record)
                for _key, record in sorted(journal.failures.items())
            ]
            if journal is not None
            else []
        )
        skip = set(prior)
        skip.update(key for key in (journal.failures if journal else {}))
        pending = [item for item in items if item.key not in skip]
        supervisor = SweepSupervisor(
            evaluate_item,
            base_platform,
            variants,
            settings.generation,
            settings,
            journal=journal,
            fault=fault,
        )
        fresh, failures = supervisor.run(pending)
    completed = {**prior, **fresh}
    results: Dict[float, List[SampleOutcome]] = {}
    for index, utilization in enumerate(settings.utilizations):
        results[utilization] = [
            SampleOutcome(weight=weight, verdicts=tuple(verdicts))
            for weight, verdicts in (
                completed[(index, i)]
                for i in range(settings.samples)
                if (index, i) in completed
            )
        ]
    all_failures = sorted(
        [*replayed, *failures], key=lambda f: (f.point, f.sample)
    )
    return CurveOutcomes(results, failures=all_failures, expected=len(items))


def schedulability_ratios(
    outcomes: Dict[float, List[SampleOutcome]],
    variants: Sequence[Variant],
) -> Dict[str, List[float]]:
    """Per-variant schedulability ratio at each utilisation point.

    Degrades gracefully under quarantined samples: each point's ratio is
    taken over the samples that actually completed.  An empty utilisation
    grid, or a point where *every* sample was quarantined, raises a typed
    :class:`~repro.errors.AnalysisError` instead of dividing by zero.
    """
    if not outcomes:
        raise AnalysisError(
            "schedulability ratios of an empty utilisation grid"
        )
    ratios: Dict[str, List[float]] = {v.label: [] for v in variants}
    for utilization in sorted(outcomes):
        samples = outcomes[utilization]
        if not samples:
            raise AnalysisError(
                f"no surviving samples at utilisation {utilization}: "
                f"every sample failed or was quarantined"
            )
        for column, variant in enumerate(variants):
            schedulable = sum(1 for s in samples if s.verdicts[column])
            ratios[variant.label].append(schedulable / len(samples))
    return ratios


def weighted_measures(
    outcomes: Dict[float, List[SampleOutcome]],
    variants: Sequence[Variant],
) -> Dict[str, float]:
    """Per-variant weighted schedulability over the whole utilisation grid.

    Quarantined samples are simply absent from the weighting; a sweep
    with no surviving weight at all raises
    :class:`~repro.errors.AnalysisError` (the measure is undefined).
    """
    measures: Dict[str, float] = {}
    for column, variant in enumerate(variants):
        pairs: List[Tuple[float, bool]] = []
        for samples in outcomes.values():
            pairs.extend((s.weight, s.verdicts[column]) for s in samples)
        measures[variant.label] = weighted_schedulability(pairs)
    return measures


def max_gap(
    ratios: Dict[str, List[float]], aware_label: str, baseline_label: str
) -> float:
    """Largest percentage-point gain of ``aware`` over ``baseline``.

    This is the quantity behind the paper's "up to 70 percentage points"
    claims (Sec. V.1).  Missing labels and empty ratio series raise a
    typed :class:`~repro.errors.AnalysisError` instead of ``KeyError`` /
    ``ValueError``.
    """
    try:
        aware = ratios[aware_label]
        baseline = ratios[baseline_label]
    except KeyError as error:
        raise AnalysisError(
            f"max gap over unknown variant label {error}"
        ) from None
    if not aware or not baseline:
        raise AnalysisError("max gap over empty ratio series")
    return max(a - b for a, b in zip(aware, baseline))
