"""Generic sweep machinery shared by all figure drivers.

Every experiment point boils down to: draw ``samples`` random task sets for
one platform configuration, evaluate each task set under every analysis
variant, and aggregate either a schedulability *ratio* (Fig. 2) or the
utilisation-weighted schedulability *measure* (Fig. 3).

Determinism: the RNG seed of each sample is a pure function of the sweep
seed, the point index and the sample index, so results are reproducible and
independent of the degree of parallelism.  All variants see the *same*
task sets, as in the paper.

Parallelism and resilience: the sweep is flattened into individual
``(point, sample)`` work items and executed by the fault-tolerant
:class:`~repro.experiments.supervisor.SweepSupervisor` — contiguous
chunks dealt to worker processes created with the explicit **spawn**
start method (identical worker behaviour, perf-counter state and
recovery semantics on Linux and macOS; see the supervisor docstring).
Because each sample's seed is order-independent, any partitioning,
retry or resume order yields the same outcomes bit for bit; chunking
merely balances load (a utilisation point near the schedulability cliff
costs far more than a trivially feasible one, so per-*point* parallelism
leaves workers idle).  Failing samples are quarantined as
:class:`~repro.experiments.supervisor.SampleFailure` records instead of
aborting the sweep, and an optional journal directory checkpoints every
completed item so an interrupted campaign resumes bit-identically
(``--journal``/``--resume``; see ``docs/RESILIENCE.md``).  Worker
processes also return their :class:`repro.perf.PerfCounters`, which are
merged into the parent's global counters so ``--profile`` sees the whole
sweep.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.schedulability import is_schedulable
from repro.analysis.weighted import weighted_schedulability
from repro.budget import Budget
from repro.errors import AnalysisError, JournalError
from repro.experiments.config import SweepSettings, Variant
from repro.experiments.journal import RunJournal, sweep_description, sweep_fingerprint
from repro.experiments.supervisor import (
    SampleFailure,
    SweepSupervisor,
    WorkItem,
)
from repro.generation.taskset_gen import GenerationConfig, generate_taskset
from repro.model.platform import Platform
from repro.perf import PerfCounters
from repro.verify.faults import SweepFault


@dataclass(frozen=True)
class SampleOutcome:
    """Verdicts for one generated task set under every variant."""

    weight: float
    verdicts: Tuple[bool, ...]


def _sample_seed(seed: int, point_index: int, sample_index: int) -> int:
    """Stable per-sample seed, independent of execution order."""
    return (seed * 1_000_003 + point_index * 10_007 + sample_index) & 0x7FFFFFFF


def evaluate_sample(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    generation: GenerationConfig,
    sample_seed: int,
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
) -> SampleOutcome:
    """Generate one task set and test it under every variant.

    The task set is generated once from ``base_platform`` (generation only
    depends on ``d_mem``, the cache geometry and the core count, not on the
    arbitration policy) and shared across variants.  ``budget`` (one
    :class:`~repro.budget.Budget` covering *all* variants of the sample)
    lets an over-budget analysis abort cooperatively with
    :class:`~repro.errors.BudgetExceeded` instead of running on until the
    supervisor's process-kill watchdog fires.
    """
    rng = random.Random(sample_seed)
    taskset = generate_taskset(rng, base_platform, utilization, generation)
    weight = taskset.total_utilization(base_platform.d_mem)
    verdicts = tuple(
        is_schedulable(
            taskset,
            base_platform.with_bus_policy(variant.policy),
            variant.analysis,
            perf=perf,
            budget=budget,
        )
        for variant in variants
    )
    return SampleOutcome(weight=weight, verdicts=verdicts)


def evaluate_item(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    generation: GenerationConfig,
    sample_seed: int,
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
) -> Tuple[float, Tuple[bool, ...]]:
    """Supervisor-facing adapter: :func:`evaluate_sample` as raw payload.

    Module-level so it pickles by reference into spawn workers.
    """
    outcome = evaluate_sample(
        base_platform, utilization, variants, generation, sample_seed, perf,
        budget=budget,
    )
    return outcome.weight, outcome.verdicts


class CurveOutcomes(Dict[float, List[SampleOutcome]]):
    """Per-utilisation outcome lists plus graceful-degradation metadata.

    Behaves exactly like the plain ``Dict[float, List[SampleOutcome]]``
    the aggregators always consumed; additionally carries the sweep's
    quarantined :attr:`failures` and the resulting :attr:`coverage` so
    callers can report how much of the campaign survived.
    """

    def __init__(
        self,
        mapping: Dict[float, List[SampleOutcome]],
        failures: Sequence[SampleFailure] = (),
        expected: int = 0,
    ) -> None:
        super().__init__(mapping)
        #: Quarantined samples, in ``(point, sample)`` order.
        self.failures: List[SampleFailure] = list(failures)
        #: Total number of ``(point, sample)`` items the sweep asked for.
        self.expected = expected

    @property
    def healthy(self) -> int:
        """Number of samples that completed and were aggregated."""
        return sum(len(samples) for samples in self.values())

    @property
    def coverage(self) -> float:
        """Fraction of requested samples that completed (1.0 = no loss)."""
        return self.healthy / self.expected if self.expected else 1.0


def run_point(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_index: int,
) -> List[SampleOutcome]:
    """All sample outcomes for one (platform, utilisation) point."""
    items = [
        WorkItem(
            point=point_index,
            sample=i,
            utilization=utilization,
            seed=_sample_seed(settings.seed, point_index, i),
        )
        for i in range(settings.samples)
    ]
    supervisor = SweepSupervisor(
        evaluate_item, base_platform, tuple(variants), settings.generation, settings
    )
    completed, _failures = supervisor.run(items)
    return [
        SampleOutcome(weight=weight, verdicts=verdicts)
        for weight, verdicts in (
            completed[item.key] for item in items if item.key in completed
        )
    ]


def run_curve(
    base_platform: Platform,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_offset: int = 0,
    journal_dir: Optional[str] = None,
    resume: bool = False,
    fault: Optional[SweepFault] = None,
) -> CurveOutcomes:
    """Outcomes for every utilisation point of the grid.

    ``point_offset`` decorrelates the RNG streams of different parameter
    values in multi-parameter sweeps.  With ``settings.jobs > 1`` the
    flattened ``(point, sample)`` items are evaluated in supervised
    worker processes; results are bit-identical to the sequential run
    because the per-sample seeds do not depend on execution order.

    ``journal_dir`` checkpoints every completed item into an append-only
    JSONL journal keyed by the sweep fingerprint; with ``resume`` the
    journalled items are skipped and their recorded outcomes reused
    bit-identically.  Opening a non-empty journal without ``resume``
    raises :class:`~repro.errors.JournalError` rather than silently
    mixing two runs.  ``fault`` injects a deterministic execution fault
    into the workers (recovery-path testing only).
    """
    items: List[WorkItem] = [
        WorkItem(
            point=index,
            sample=i,
            utilization=utilization,
            seed=_sample_seed(settings.seed, point_offset + index, i),
        )
        for index, utilization in enumerate(settings.utilizations)
        for i in range(settings.samples)
    ]
    variants = tuple(variants)
    journal: Optional[RunJournal] = None
    if journal_dir is not None:
        fingerprint = sweep_fingerprint(base_platform, variants, settings, point_offset)
        journal = RunJournal.open(
            journal_dir,
            fingerprint,
            sweep_description(base_platform, variants, settings, point_offset),
        )
        if not resume and (journal.completed or journal.failures):
            path = journal.path
            journal.close()
            raise JournalError(
                f"journal {path} already holds results for this sweep; "
                f"pass --resume to continue it or remove the file to start over"
            )
    with journal if journal is not None else nullcontext():
        prior = dict(journal.completed) if journal is not None else {}
        replayed = (
            [
                SampleFailure.from_record(record)
                for _key, record in sorted(journal.failures.items())
            ]
            if journal is not None
            else []
        )
        skip = set(prior)
        skip.update(key for key in (journal.failures if journal else {}))
        pending = [item for item in items if item.key not in skip]
        supervisor = SweepSupervisor(
            evaluate_item,
            base_platform,
            variants,
            settings.generation,
            settings,
            journal=journal,
            fault=fault,
        )
        fresh, failures = supervisor.run(pending)
    completed = {**prior, **fresh}
    results: Dict[float, List[SampleOutcome]] = {}
    for index, utilization in enumerate(settings.utilizations):
        results[utilization] = [
            SampleOutcome(weight=weight, verdicts=tuple(verdicts))
            for weight, verdicts in (
                completed[(index, i)]
                for i in range(settings.samples)
                if (index, i) in completed
            )
        ]
    all_failures = sorted(
        [*replayed, *failures], key=lambda f: (f.point, f.sample)
    )
    return CurveOutcomes(results, failures=all_failures, expected=len(items))


def schedulability_ratios(
    outcomes: Dict[float, List[SampleOutcome]],
    variants: Sequence[Variant],
) -> Dict[str, List[float]]:
    """Per-variant schedulability ratio at each utilisation point.

    Degrades gracefully under quarantined samples: each point's ratio is
    taken over the samples that actually completed.  An empty utilisation
    grid, or a point where *every* sample was quarantined, raises a typed
    :class:`~repro.errors.AnalysisError` instead of dividing by zero.
    """
    if not outcomes:
        raise AnalysisError(
            "schedulability ratios of an empty utilisation grid"
        )
    ratios: Dict[str, List[float]] = {v.label: [] for v in variants}
    for utilization in sorted(outcomes):
        samples = outcomes[utilization]
        if not samples:
            raise AnalysisError(
                f"no surviving samples at utilisation {utilization}: "
                f"every sample failed or was quarantined"
            )
        for column, variant in enumerate(variants):
            schedulable = sum(1 for s in samples if s.verdicts[column])
            ratios[variant.label].append(schedulable / len(samples))
    return ratios


def weighted_measures(
    outcomes: Dict[float, List[SampleOutcome]],
    variants: Sequence[Variant],
) -> Dict[str, float]:
    """Per-variant weighted schedulability over the whole utilisation grid.

    Quarantined samples are simply absent from the weighting; a sweep
    with no surviving weight at all raises
    :class:`~repro.errors.AnalysisError` (the measure is undefined).
    """
    measures: Dict[str, float] = {}
    for column, variant in enumerate(variants):
        pairs: List[Tuple[float, bool]] = []
        for samples in outcomes.values():
            pairs.extend((s.weight, s.verdicts[column]) for s in samples)
        measures[variant.label] = weighted_schedulability(pairs)
    return measures


def max_gap(
    ratios: Dict[str, List[float]], aware_label: str, baseline_label: str
) -> float:
    """Largest percentage-point gain of ``aware`` over ``baseline``.

    This is the quantity behind the paper's "up to 70 percentage points"
    claims (Sec. V.1).  Missing labels and empty ratio series raise a
    typed :class:`~repro.errors.AnalysisError` instead of ``KeyError`` /
    ``ValueError``.
    """
    try:
        aware = ratios[aware_label]
        baseline = ratios[baseline_label]
    except KeyError as error:
        raise AnalysisError(
            f"max gap over unknown variant label {error}"
        ) from None
    if not aware or not baseline:
        raise AnalysisError("max gap over empty ratio series")
    return max(a - b for a, b in zip(aware, baseline))
