"""Generic sweep machinery shared by all figure drivers.

Every experiment point boils down to: draw ``samples`` random task sets for
one platform configuration, evaluate each task set under every analysis
variant, and aggregate either a schedulability *ratio* (Fig. 2) or the
utilisation-weighted schedulability *measure* (Fig. 3).

Determinism: the RNG seed of each sample is a pure function of the sweep
seed, the point index and the sample index, so results are reproducible and
independent of the degree of parallelism.  All variants see the *same*
task sets, as in the paper.

Parallelism: the sweep is flattened into individual ``(point, sample)``
work items and dealt to worker processes in contiguous chunks.  Because
each sample's seed is order-independent, any partitioning yields the same
outcomes bit for bit; chunking merely balances load (a utilisation point
near the schedulability cliff costs far more than a trivially feasible
one, so per-*point* parallelism leaves workers idle).  Worker processes
also return their :class:`repro.perf.PerfCounters`, which are merged into
the parent's global counters so ``--profile`` sees the whole sweep.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.schedulability import is_schedulable
from repro.analysis.weighted import weighted_schedulability
from repro.experiments.config import SweepSettings, Variant
from repro.generation.taskset_gen import GenerationConfig, generate_taskset
from repro.model.platform import Platform
from repro.perf import PerfCounters, merge_global

import random


@dataclass(frozen=True)
class SampleOutcome:
    """Verdicts for one generated task set under every variant."""

    weight: float
    verdicts: Tuple[bool, ...]


#: One flattened work item: ``(utilization, sample_seed)``.
_WorkItem = Tuple[float, int]


def _sample_seed(seed: int, point_index: int, sample_index: int) -> int:
    """Stable per-sample seed, independent of execution order."""
    return (seed * 1_000_003 + point_index * 10_007 + sample_index) & 0x7FFFFFFF


def evaluate_sample(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    generation: GenerationConfig,
    sample_seed: int,
    perf: Optional[PerfCounters] = None,
) -> SampleOutcome:
    """Generate one task set and test it under every variant.

    The task set is generated once from ``base_platform`` (generation only
    depends on ``d_mem``, the cache geometry and the core count, not on the
    arbitration policy) and shared across variants.
    """
    rng = random.Random(sample_seed)
    taskset = generate_taskset(rng, base_platform, utilization, generation)
    weight = taskset.total_utilization(base_platform.d_mem)
    verdicts = tuple(
        is_schedulable(
            taskset,
            base_platform.with_bus_policy(variant.policy),
            variant.analysis,
            perf=perf,
        )
        for variant in variants
    )
    return SampleOutcome(weight=weight, verdicts=verdicts)


def _chunk_task(args) -> Tuple[List[SampleOutcome], PerfCounters]:
    """Evaluate one contiguous chunk of flattened work items.

    Runs in a worker process (or inline when ``jobs == 1``).  Returns the
    outcomes in item order plus the perf counters accumulated over the
    chunk, so the parent can merge them into its global counters.
    """
    base_platform, variants, generation, items = args
    perf = PerfCounters()
    outcomes = [
        evaluate_sample(base_platform, utilization, variants, generation, seed, perf)
        for utilization, seed in items
    ]
    return outcomes, perf


def _chunked(items: Sequence[_WorkItem], jobs: int) -> List[Tuple[_WorkItem, ...]]:
    """Split the flat item list into contiguous, load-balancing chunks.

    A few chunks per worker smooths out the cost imbalance between easy
    and hard samples without drowning the pool in per-item dispatch
    overhead.
    """
    chunk_size = max(1, -(-len(items) // (jobs * 4)))
    return [
        tuple(items[start : start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]


def run_point(
    base_platform: Platform,
    utilization: float,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_index: int,
) -> List[SampleOutcome]:
    """All sample outcomes for one (platform, utilisation) point."""
    items = [
        (utilization, _sample_seed(settings.seed, point_index, i))
        for i in range(settings.samples)
    ]
    outcomes, perf = _chunk_task(
        (base_platform, tuple(variants), settings.generation, items)
    )
    merge_global(perf)
    return outcomes


def run_curve(
    base_platform: Platform,
    variants: Sequence[Variant],
    settings: SweepSettings,
    point_offset: int = 0,
) -> Dict[float, List[SampleOutcome]]:
    """Outcomes for every utilisation point of the grid.

    ``point_offset`` decorrelates the RNG streams of different parameter
    values in multi-parameter sweeps.  With ``settings.jobs > 1`` the
    flattened ``(point, sample)`` items are evaluated in parallel worker
    processes; results are bit-identical to the sequential run because the
    per-sample seeds do not depend on execution order.
    """
    items: List[_WorkItem] = [
        (utilization, _sample_seed(settings.seed, point_offset + index, i))
        for index, utilization in enumerate(settings.utilizations)
        for i in range(settings.samples)
    ]
    variants = tuple(variants)
    if settings.jobs > 1:
        chunks = _chunked(items, settings.jobs)
        tasks = [
            (base_platform, variants, settings.generation, chunk)
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=settings.jobs) as pool:
            flat: List[SampleOutcome] = []
            for outcomes, perf in pool.map(_chunk_task, tasks):
                flat.extend(outcomes)
                merge_global(perf)
    else:
        flat, perf = _chunk_task(
            (base_platform, variants, settings.generation, items)
        )
        merge_global(perf)
    results: Dict[float, List[SampleOutcome]] = {}
    for index, utilization in enumerate(settings.utilizations):
        start = index * settings.samples
        results[utilization] = flat[start : start + settings.samples]
    return results


def schedulability_ratios(
    outcomes: Dict[float, List[SampleOutcome]],
    variants: Sequence[Variant],
) -> Dict[str, List[float]]:
    """Per-variant schedulability ratio at each utilisation point."""
    ratios: Dict[str, List[float]] = {v.label: [] for v in variants}
    for utilization in sorted(outcomes):
        samples = outcomes[utilization]
        for column, variant in enumerate(variants):
            schedulable = sum(1 for s in samples if s.verdicts[column])
            ratios[variant.label].append(schedulable / len(samples))
    return ratios


def weighted_measures(
    outcomes: Dict[float, List[SampleOutcome]],
    variants: Sequence[Variant],
) -> Dict[str, float]:
    """Per-variant weighted schedulability over the whole utilisation grid."""
    measures: Dict[str, float] = {}
    for column, variant in enumerate(variants):
        pairs: List[Tuple[float, bool]] = []
        for samples in outcomes.values():
            pairs.extend((s.weight, s.verdicts[column]) for s in samples)
        measures[variant.label] = weighted_schedulability(pairs)
    return measures


def max_gap(
    ratios: Dict[str, List[float]], aware_label: str, baseline_label: str
) -> float:
    """Largest percentage-point gain of ``aware`` over ``baseline``.

    This is the quantity behind the paper's "up to 70 percentage points"
    claims (Sec. V.1).
    """
    aware = ratios[aware_label]
    baseline = ratios[baseline_label]
    return max(a - b for a, b in zip(aware, baseline))
