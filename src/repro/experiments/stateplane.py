"""Worker-resident state plane: compiled sweep state that outlives chunks.

A parallel sweep deals point-aligned chunks of ``(point, sample)`` items to
spawn workers.  Before this module each chunk arrived stateless: the worker
re-generated every task set, re-compiled its
:class:`~repro.model.interference.BatchInterferenceTable` pair tables and
re-derived every warm-start seed from scratch, even when the previous chunk
it ran — or a neighbouring chunk of the same sweep — had already paid for
identical state.  The :class:`StatePlane` is a small fingerprint-keyed LRU
that keeps exactly that state resident in the worker process across chunks:

* **Task sets**, keyed by the full generation fingerprint
  ``(platform, generation, utilization, seed)``.  Generation is a pure
  function of the key (the RNG is seeded from ``seed`` alone), so a cached
  task set is *the same value* a fresh generation would produce — along
  with every ``TaskSet.derived`` store hanging off it: interference
  tables, batch-compiled pair tables, warm-start seeds.  A plane hit
  therefore replaces generation + batch compile + cold fixed points with
  the (strictly re-verified, bit-identical) warm-start path.
* **Warm-hint chains**, keyed by a caller-supplied chain scope plus the
  sample index, so adjacent utilisation points of one sample seed each
  other even when their chunks arrive at different times.  Hints are
  verify-or-cold (see :class:`~repro.analysis.wcrt.WarmHint`), so chain
  reuse under *any* chunk ordering — including work stealing — never
  changes a verdict.
* **Canonical documents** (:meth:`canonical`), a generic build-once slot
  the service tier uses to map equal request payloads onto one resident
  task-set object per worker.

Everything the plane caches is either a pure function of its key or
verify-before-use, so the plane is invisible in results by construction —
pinned by the ``resident-plane-identity`` oracle of :mod:`repro.verify`.
Capacity is bounded (LRU, :data:`DEFAULT_CAPACITY` entries per kind) and
tunable via the ``REPRO_STATE_PLANE_CAP`` environment variable; ``0``
disables residency entirely (every lookup misses), which is also the
differential reference configuration.
"""

from __future__ import annotations

import os
import random
import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional

from repro.generation.taskset_gen import GenerationConfig, generate_taskset
from repro.model.platform import Platform
from repro.model.task import TaskSet
from repro.perf import PerfCounters

#: Environment variable bounding the per-kind LRU capacity of the
#: process-global plane (``0`` disables residency; unset uses
#: :data:`DEFAULT_CAPACITY`).  Purely an execution knob — like ``--jobs``
#: it can never change results — so it is deliberately absent from every
#: fingerprint.
STATE_PLANE_CAP_ENV = "REPRO_STATE_PLANE_CAP"

#: Default per-kind LRU capacity.  A fig2-scale sweep touches
#: ``points x samples`` task sets per worker in the worst case (400 for
#: the paper's grids), and a repeat sweep touches them *in the same
#: order* — the LRU's worst case, where any capacity below the working
#: set yields zero hits.  512 keeps a full fig2-scale sweep resident per
#: worker (so a re-analysis replays warm) while still bounding memory to
#: a few hundred task sets.
DEFAULT_CAPACITY = 512


def _env_capacity() -> int:
    raw = os.environ.get(STATE_PLANE_CAP_ENV)
    if raw is None:
        return DEFAULT_CAPACITY
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_CAPACITY


class StatePlane:
    """Fingerprint-keyed LRU of compiled sweep state (see module docs).

    Thread-safe for the lookups themselves; the cached *values* follow the
    repo-wide single-threaded analysis discipline (one analysis at a time
    per task set object), which both the supervisor workers and the
    service pool already guarantee.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = _env_capacity() if capacity is None else max(0, capacity)
        self._tasksets: "OrderedDict[Hashable, TaskSet]" = OrderedDict()
        self._chains: "OrderedDict[Hashable, Dict]" = OrderedDict()
        self._documents: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()

    # -- generic LRU plumbing ------------------------------------------------

    def _get(self, store: OrderedDict, key: Hashable):
        with self._lock:
            if key in store:
                store.move_to_end(key)
                return store[key]
            return None

    def _put(self, store: OrderedDict, key: Hashable, value) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            store[key] = value
            store.move_to_end(key)
            while len(store) > self.capacity:
                store.popitem(last=False)

    # -- the three kinds of resident state -----------------------------------

    def taskset(
        self,
        platform: Platform,
        generation: GenerationConfig,
        utilization: float,
        seed: int,
        perf: Optional[PerfCounters] = None,
    ) -> TaskSet:
        """The task set of one sample, resident across chunks.

        Generates (and caches) on miss; on hit returns the previously
        generated object together with every derived table and warm-start
        seed recorded against it.  ``perf`` counts hits and misses as
        ``resident_table_hits`` / ``resident_table_misses``.
        """
        key = (platform, generation, utilization, seed)
        cached = self._get(self._tasksets, key)
        if cached is not None:
            if perf is not None:
                perf.resident_table_hits += 1
            return cached
        if perf is not None:
            perf.resident_table_misses += 1
        taskset = generate_taskset(
            random.Random(seed), platform, utilization, generation
        )
        self._put(self._tasksets, key, taskset)
        return taskset

    def chain(self, scope: Hashable, sample: int) -> Dict:
        """The warm-hint chain of one sample index within ``scope``.

        ``scope`` should fingerprint everything the chain's hints depend
        on (platform, variants, generation) so unrelated sweeps sharing a
        worker never exchange hints.  The returned dict is mutated in
        place by :func:`repro.experiments.runner.evaluate_sample`.
        """
        key = (scope, sample)
        chain = self._get(self._chains, key)
        if chain is None:
            chain = {}
            self._put(self._chains, key, chain)
        return chain

    def canonical(
        self,
        key: Hashable,
        builder: Callable[[], object],
        perf: Optional[PerfCounters] = None,
    ) -> object:
        """Build-once slot mapping equal documents onto one resident object.

        The service tier keys this by the canonical-JSON digest of a
        request's task set so repeated identical requests served by one
        resident worker share a single task-set object (and its derived
        tables and warm-start seeds) instead of re-materialising it per
        request.
        """
        cached = self._get(self._documents, key)
        if cached is not None:
            if perf is not None:
                perf.resident_table_hits += 1
            return cached
        if perf is not None:
            perf.resident_table_misses += 1
        value = builder()
        self._put(self._documents, key, value)
        return value

    def clear(self) -> None:
        """Drop all resident state (tests and respawned workers)."""
        with self._lock:
            self._tasksets.clear()
            self._chains.clear()
            self._documents.clear()


_PLANE: Optional[StatePlane] = None
_PLANE_LOCK = threading.Lock()


def resident_plane() -> StatePlane:
    """The process-global plane shared by sweep workers and service workers.

    Created lazily on first use (so spawn workers build theirs after the
    fork/spawn boundary) and shared for the life of the process.  The
    capacity is read from the environment at creation time; tests that
    need a differently sized plane should construct their own
    :class:`StatePlane` or call :func:`reset_resident_plane`.
    """
    global _PLANE
    if _PLANE is None:
        with _PLANE_LOCK:
            if _PLANE is None:
                _PLANE = StatePlane()
    return _PLANE


def reset_resident_plane() -> None:
    """Drop the process-global plane (tests; re-reads capacity on next use)."""
    global _PLANE
    with _PLANE_LOCK:
        _PLANE = None
