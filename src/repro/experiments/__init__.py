"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.config import (
    DEFAULT_SAMPLES,
    PAPER_SAMPLES,
    PAPER_UTILIZATIONS,
    WEIGHTED_UTILIZATIONS,
    SweepSettings,
    Variant,
    default_platform,
    settings_from_environment,
    slot_variants,
    standard_variants,
)
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import (
    WeightedSweepResult,
    run_fig3a,
    run_fig3b,
    run_fig3c,
    run_fig3d,
)
from repro.experiments.journal import RunJournal, sweep_fingerprint
from repro.experiments.runner import (
    CurveOutcomes,
    SampleOutcome,
    run_curve,
    schedulability_ratios,
    weighted_measures,
)
from repro.experiments.stats import ratio_confidence_intervals, wilson_interval
from repro.experiments.supervisor import SampleFailure, SweepSupervisor, WorkItem
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "CurveOutcomes",
    "RunJournal",
    "SampleFailure",
    "SampleOutcome",
    "SweepSupervisor",
    "WorkItem",
    "run_curve",
    "schedulability_ratios",
    "sweep_fingerprint",
    "weighted_measures",
    "DEFAULT_SAMPLES",
    "PAPER_SAMPLES",
    "PAPER_UTILIZATIONS",
    "WEIGHTED_UTILIZATIONS",
    "SweepSettings",
    "Variant",
    "default_platform",
    "settings_from_environment",
    "slot_variants",
    "standard_variants",
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "WeightedSweepResult",
    "run_fig3a",
    "run_fig3b",
    "run_fig3c",
    "run_fig3d",
    "ratio_confidence_intervals",
    "wilson_interval",
    "Table1Result",
    "run_table1",
]
