"""Cache persistence reload overhead (CPRO) bounds (Eq. 14).

A task cannot evict its own PCBs, but other tasks executing (interleaved or
preemptively) on the *same core* can.  Each eviction forces the next job of
the owning task to reload the block from main memory — an extra bus access
on top of the residual demand.  The paper uses the **CPRO-union** approach of
Rashid et al. (ECRTS 2016): across :math:`n_j` successive jobs of
:math:`\\tau_j` inside the busy window of :math:`\\tau_i` on core
:math:`\\pi_x`, at most

.. math::

    \\hat{\\rho}_{j,i,x}(n_j) = (n_j - 1) \\cdot
        \\Big| PCB_j \\cap \\bigcup_{\\tau_s \\in \\Gamma_x \\cap hep(i)
        \\setminus \\{\\tau_j\\}} ECB_s \\Big|

additional requests are generated: between two consecutive jobs of
:math:`\\tau_j` only tasks of priority :math:`\\geq` that of :math:`\\tau_i`
run on the core, and only PCBs they overlap can be evicted.

For ablation we also provide a **global** variant whose eviction set is the
union of the ECBs of *every* other task on the core regardless of priority —
coarser, but independent of the task under analysis.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.budget import Budget
from repro.errors import AnalysisError
from repro.model.interference import InterferenceTable
from repro.model.task import Task, TaskSet


class CproApproach(enum.Enum):
    """Selectable CPRO eviction-set construction.

    ``MULTISET`` is the window-aware refinement of Rashid et al.
    (RTSS 2017): instead of assuming every evictable PCB is evicted between
    *every* pair of consecutive jobs, each PCB is charged at most as many
    reloads as the evicting tasks can actually release jobs inside the
    analysed window (and never more than ``n_jobs - 1``).
    """

    UNION = "cpro-union"
    GLOBAL = "cpro-global"
    MULTISET = "cpro-multiset"
    NONE = "none"


def evicting_ecb_union(tasks: Iterable[Task]) -> FrozenSet[int]:
    """Union of the ECBs of ``tasks`` — the eviction set of Eq. (14).

    The single place both reference eviction counts build their evicting
    set from; an empty task group yields the empty set (nothing to evict).
    """
    return frozenset().union(*(t.ecbs for t in tasks))


def cpro_eviction_count_union(
    taskset: TaskSet, task_j: Task, task_i: Task
) -> int:
    """Number of PCBs of ``task_j`` evictable inside ``task_i``'s window.

    This is the cardinality term of Eq. (14): PCBs of ``task_j`` overlapping
    the ECBs of the other tasks of priority higher than or equal to
    ``task_i``'s on ``task_j``'s core.
    """
    core = task_j.core
    others = [
        t for t in taskset.hep_on_core(task_i, core) if t is not task_j
    ]
    if not others:
        return 0
    return len(task_j.pcbs & evicting_ecb_union(others))


def cpro_eviction_count_global(
    taskset: TaskSet, task_j: Task, task_i: Task
) -> int:
    """Coarse eviction count: every other task on the core may run.

    Over-approximates :func:`cpro_eviction_count_union` (the union grows),
    hence remains a sound CPRO bound; used as an ablation baseline.
    """
    core = task_j.core
    others = [t for t in taskset.on_core(core) if t is not task_j]
    if not others:
        return 0
    return len(task_j.pcbs & evicting_ecb_union(others))


def cpro_multiset_window(
    taskset: TaskSet,
    task_j: Task,
    task_i: Task,
    n_jobs: int,
    window: int,
    carry_in: bool = False,
) -> int:
    """Window-aware multiset CPRO bound (extension; Rashid et al. 2017).

    For each PCB of ``task_j``, the number of reloads across ``n_jobs``
    successive jobs is bounded both by ``n_jobs - 1`` (one reload per job
    boundary) and by the total number of jobs the overlapping evicting
    tasks can release inside the window.  ``carry_in`` adds one job per
    evicting task, needed when the window is observed from another core
    (no release synchronisation can be assumed; cf. Eq. 3-6).
    """
    if n_jobs <= 1 or window <= 0:
        return 0
    core = task_j.core
    others = [t for t in taskset.hep_on_core(task_i, core) if t is not task_j]
    if not others:
        return 0
    extra = 1 if carry_in else 0
    total = 0
    for pcb_set in task_j.pcbs:
        opportunities = 0
        for evictor in others:
            if pcb_set in evictor.ecbs:
                opportunities += -((-window) // int(evictor.period)) + extra
        total += min(n_jobs - 1, opportunities)
    return total


_APPROACHES: Dict[CproApproach, Callable[[TaskSet, Task, Task], int]] = {
    CproApproach.UNION: cpro_eviction_count_union,
    CproApproach.GLOBAL: cpro_eviction_count_global,
    # The multiset approach degrades to the union eviction count when no
    # window information is available (rho() without a window).
    CproApproach.MULTISET: cpro_eviction_count_union,
    CproApproach.NONE: lambda taskset, task_j, task_i: 0,
}


# -- bitmask kernel (AND + popcount over the interference table) ------------


def _eviction_count_union_bitset(
    table: InterferenceTable, task_j: Task, task_i: Task
) -> int:
    """Bitmask form of :func:`cpro_eviction_count_union`."""
    return (
        table.pcb_mask[task_j.priority]
        & table.evicting_ecb_mask(task_j, task_i)
    ).bit_count()


def _eviction_count_global_bitset(
    table: InterferenceTable, task_j: Task, task_i: Task
) -> int:
    """Bitmask form of :func:`cpro_eviction_count_global`."""
    return (
        table.pcb_mask[task_j.priority]
        & table.core_ecb_mask_excluding(task_j)
    ).bit_count()


_BITSET_APPROACHES: Dict[
    CproApproach, Callable[[InterferenceTable, Task, Task], int]
] = {
    CproApproach.UNION: _eviction_count_union_bitset,
    CproApproach.GLOBAL: _eviction_count_global_bitset,
    CproApproach.MULTISET: _eviction_count_union_bitset,
    CproApproach.NONE: lambda table, task_j, task_i: 0,
}


#: Per-(task_j, task_i) overlap table for the multiset CPRO bound: one
#: entry per PCB of ``task_j`` that at least one relevant evictor overlaps,
#: holding the periods of those evictors.  PCBs nobody can evict contribute
#: zero reloads and are dropped.
_OverlapTable = Tuple[Tuple[int, ...], ...]


class CproCalculator:
    """Memoising front-end over the CPRO approaches.

    Only the per-window-per-task eviction *count* is cached; the job count
    multiplier of Eq. (14) varies with the window length and is applied in
    :meth:`rho`.  For the ``MULTISET`` approach the per-PCB evictor-overlap
    scan is additionally precomputed into a per-pair table, so the per-call
    work of :meth:`rho_window` is a pure arithmetic fold.

    With ``bitset=True`` (the default) the eviction counts are evaluated
    from the task set's :class:`~repro.model.interference.InterferenceTable`
    as single AND+popcount operations; ``bitset=False`` selects the
    retained ``frozenset``-algebra reference path.  The two are
    bit-identical (``bitset-identity`` oracle of :mod:`repro.verify`).
    """

    def __init__(
        self,
        taskset: TaskSet,
        approach: CproApproach = CproApproach.UNION,
        bitset: bool = True,
    ):
        self._taskset = taskset
        self._approach = approach
        self._bitset = bitset
        self._fn = _APPROACHES[approach]
        self._bitset_fn = _BITSET_APPROACHES[approach]
        self._table: Optional[InterferenceTable] = (
            InterferenceTable.shared(taskset) if bitset else None
        )
        self._cache: Dict[Tuple[int, int], int] = {}
        self._overlap_cache: Dict[Tuple[int, int], Optional[_OverlapTable]] = {}

    @classmethod
    def shared(
        cls,
        taskset: TaskSet,
        approach: CproApproach = CproApproach.UNION,
        bitset: bool = True,
    ) -> "CproCalculator":
        """The task set's shared calculator for ``(approach, bitset)``.

        CPRO eviction counts are pure functions of the (immutable) task
        set, so one calculator per (task set, approach, kernel) triple
        serves every analysis run and keeps its pair cache warm across
        them.  The bitset and reference kernels deliberately do *not*
        share caches, so the differential oracle compares genuinely
        independent evaluations.
        """
        return taskset.derived(
            ("cpro-calculator", approach, bitset),
            lambda: cls(taskset, approach, bitset),
        )

    @property
    def approach(self) -> CproApproach:
        """The CPRO approach this calculator applies."""
        return self._approach

    @property
    def bitset(self) -> bool:
        """Whether this calculator runs on the bitmask kernel."""
        return self._bitset

    def prefill_pairs(self, pairs: Dict[Tuple[int, int], int]) -> None:
        """Adopt batch-compiled eviction counts, keyed ``(pri_j, pri_i)``.

        Fed by :class:`~repro.model.interference.BatchInterferenceTable`;
        every value equals what :meth:`eviction_count` would compute
        lazily, so adopting them only removes cache misses.

        Note the key order: CPRO pairs are keyed evictee-first, mirroring
        :meth:`eviction_count`'s signature — the reverse of the CRPD
        calculator's ``(pri_i, pri_j)``.
        """
        for key, value in pairs.items():
            self._cache.setdefault(key, value)

    def eviction_count(self, task_j: Task, task_i: Task) -> int:
        """Evictable-PCB count of ``task_j`` within ``task_i``'s window."""
        key = (task_j.priority, task_i.priority)
        if key not in self._cache:
            if self._table is not None:
                value = self._bitset_fn(self._table, task_j, task_i)
            else:
                value = self._fn(self._taskset, task_j, task_i)
            self._cache[key] = value
        return self._cache[key]

    def rho(self, task_j: Task, task_i: Task, n_jobs: int) -> int:
        """CPRO bound :math:`\\hat{\\rho}_{j,i,x}(n)` of Eq. (14).

        Zero when at most one job of ``task_j`` executes in the window: the
        first job's (re)loads are already covered by :math:`\\hat{MD}`.
        """
        if n_jobs < 0:
            raise AnalysisError(f"n_jobs must be non-negative, got {n_jobs}")
        if n_jobs <= 1:
            return 0
        return (n_jobs - 1) * self.eviction_count(task_j, task_i)

    def _overlap_table(self, task_j: Task, task_i: Task) -> Optional[_OverlapTable]:
        """Precomputed evictor-period table behind the multiset bound.

        On the bitmask kernel the per-PCB overlap test is a single-bit
        probe of each evictor's ECB mask; the reference path keeps the
        ``frozenset`` membership test.  Both enumerate the same rows.
        """
        key = (task_j.priority, task_i.priority)
        if key in self._overlap_cache:
            return self._overlap_cache[key]
        core = task_j.core
        others = [
            t for t in self._taskset.hep_on_core(task_i, core) if t is not task_j
        ]
        table: Optional[_OverlapTable]
        if not others:
            table = None
        elif self._table is not None:
            ecb_mask = self._table.ecb_mask
            evictors = [(int(t.period), ecb_mask[t.priority]) for t in others]
            table = tuple(
                periods
                for pcb in sorted(task_j.pcbs)
                if (
                    periods := tuple(
                        period
                        for period, mask in evictors
                        if (mask >> pcb) & 1
                    )
                )
            )
        else:
            table = tuple(
                periods
                for pcb in task_j.pcbs
                if (
                    periods := tuple(
                        int(evictor.period)
                        for evictor in others
                        if pcb in evictor.ecbs
                    )
                )
            )
        self._overlap_cache[key] = table
        return table

    def rho_window(
        self,
        task_j: Task,
        task_i: Task,
        n_jobs: int,
        window: int,
        carry_in: bool = False,
        budget: Optional[Budget] = None,
    ) -> int:
        """Window-aware CPRO bound.

        Evaluates the multiset bound of :func:`cpro_multiset_window` (from
        the precomputed per-pair overlap table) for the ``MULTISET``
        approach and the window-oblivious :meth:`rho` otherwise.  The
        multiset value never exceeds the union value.  ``budget`` adds one
        cooperative cancellation point per fold — the multiset fold is the
        most expensive straight-line stretch between two inner-iteration
        ticks — without affecting the computed value.
        """
        if budget is not None:
            budget.check()
        if self._approach is not CproApproach.MULTISET:
            return self.rho(task_j, task_i, n_jobs)
        cap = self.rho(task_j, task_i, n_jobs)
        if cap == 0 or n_jobs <= 1 or window <= 0:
            return 0
        table = self._overlap_table(task_j, task_i)
        if table is None:
            return 0
        extra = 1 if carry_in else 0
        per_boundary = n_jobs - 1
        total = 0
        for periods in table:
            opportunities = 0
            for period in periods:
                opportunities += -((-window) // period) + extra
            total += min(per_boundary, opportunities)
        return min(total, cap)
