"""Cache persistence reload overhead (CPRO) bounds (Eq. 14).

A task cannot evict its own PCBs, but other tasks executing (interleaved or
preemptively) on the *same core* can.  Each eviction forces the next job of
the owning task to reload the block from main memory — an extra bus access
on top of the residual demand.  The paper uses the **CPRO-union** approach of
Rashid et al. (ECRTS 2016): across :math:`n_j` successive jobs of
:math:`\\tau_j` inside the busy window of :math:`\\tau_i` on core
:math:`\\pi_x`, at most

.. math::

    \\hat{\\rho}_{j,i,x}(n_j) = (n_j - 1) \\cdot
        \\Big| PCB_j \\cap \\bigcup_{\\tau_s \\in \\Gamma_x \\cap hep(i)
        \\setminus \\{\\tau_j\\}} ECB_s \\Big|

additional requests are generated: between two consecutive jobs of
:math:`\\tau_j` only tasks of priority :math:`\\geq` that of :math:`\\tau_i`
run on the core, and only PCBs they overlap can be evicted.

For ablation we also provide a **global** variant whose eviction set is the
union of the ECBs of *every* other task on the core regardless of priority —
coarser, but independent of the task under analysis.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.errors import AnalysisError
from repro.model.task import Task, TaskSet


class CproApproach(enum.Enum):
    """Selectable CPRO eviction-set construction.

    ``MULTISET`` is the window-aware refinement of Rashid et al.
    (RTSS 2017): instead of assuming every evictable PCB is evicted between
    *every* pair of consecutive jobs, each PCB is charged at most as many
    reloads as the evicting tasks can actually release jobs inside the
    analysed window (and never more than ``n_jobs - 1``).
    """

    UNION = "cpro-union"
    GLOBAL = "cpro-global"
    MULTISET = "cpro-multiset"
    NONE = "none"


def cpro_eviction_count_union(
    taskset: TaskSet, task_j: Task, task_i: Task
) -> int:
    """Number of PCBs of ``task_j`` evictable inside ``task_i``'s window.

    This is the cardinality term of Eq. (14): PCBs of ``task_j`` overlapping
    the ECBs of the other tasks of priority higher than or equal to
    ``task_i``'s on ``task_j``'s core.
    """
    core = task_j.core
    others = [
        t for t in taskset.hep_on_core(task_i, core) if t is not task_j
    ]
    if not others:
        return 0
    evicting: FrozenSet[int] = frozenset().union(*(t.ecbs for t in others))
    return len(task_j.pcbs & evicting)


def cpro_eviction_count_global(
    taskset: TaskSet, task_j: Task, task_i: Task
) -> int:
    """Coarse eviction count: every other task on the core may run.

    Over-approximates :func:`cpro_eviction_count_union` (the union grows),
    hence remains a sound CPRO bound; used as an ablation baseline.
    """
    core = task_j.core
    others = [t for t in taskset.on_core(core) if t is not task_j]
    if not others:
        return 0
    evicting: FrozenSet[int] = frozenset().union(*(t.ecbs for t in others))
    return len(task_j.pcbs & evicting)


def cpro_multiset_window(
    taskset: TaskSet,
    task_j: Task,
    task_i: Task,
    n_jobs: int,
    window: int,
    carry_in: bool = False,
) -> int:
    """Window-aware multiset CPRO bound (extension; Rashid et al. 2017).

    For each PCB of ``task_j``, the number of reloads across ``n_jobs``
    successive jobs is bounded both by ``n_jobs - 1`` (one reload per job
    boundary) and by the total number of jobs the overlapping evicting
    tasks can release inside the window.  ``carry_in`` adds one job per
    evicting task, needed when the window is observed from another core
    (no release synchronisation can be assumed; cf. Eq. 3-6).
    """
    if n_jobs <= 1 or window <= 0:
        return 0
    core = task_j.core
    others = [t for t in taskset.hep_on_core(task_i, core) if t is not task_j]
    if not others:
        return 0
    extra = 1 if carry_in else 0
    total = 0
    for pcb_set in task_j.pcbs:
        opportunities = 0
        for evictor in others:
            if pcb_set in evictor.ecbs:
                opportunities += -((-window) // int(evictor.period)) + extra
        total += min(n_jobs - 1, opportunities)
    return total


_APPROACHES: Dict[CproApproach, Callable[[TaskSet, Task, Task], int]] = {
    CproApproach.UNION: cpro_eviction_count_union,
    CproApproach.GLOBAL: cpro_eviction_count_global,
    # The multiset approach degrades to the union eviction count when no
    # window information is available (rho() without a window).
    CproApproach.MULTISET: cpro_eviction_count_union,
    CproApproach.NONE: lambda taskset, task_j, task_i: 0,
}


#: Per-(task_j, task_i) overlap table for the multiset CPRO bound: one
#: entry per PCB of ``task_j`` that at least one relevant evictor overlaps,
#: holding the periods of those evictors.  PCBs nobody can evict contribute
#: zero reloads and are dropped.
_OverlapTable = Tuple[Tuple[int, ...], ...]


class CproCalculator:
    """Memoising front-end over the CPRO approaches.

    Only the per-window-per-task eviction *count* is cached; the job count
    multiplier of Eq. (14) varies with the window length and is applied in
    :meth:`rho`.  For the ``MULTISET`` approach the per-PCB evictor-overlap
    scan is additionally precomputed into a per-pair table, so the per-call
    work of :meth:`rho_window` is a pure arithmetic fold.
    """

    def __init__(
        self, taskset: TaskSet, approach: CproApproach = CproApproach.UNION
    ):
        self._taskset = taskset
        self._approach = approach
        self._fn = _APPROACHES[approach]
        self._cache: Dict[Tuple[int, int], int] = {}
        self._overlap_cache: Dict[Tuple[int, int], Optional[_OverlapTable]] = {}

    @classmethod
    def shared(
        cls, taskset: TaskSet, approach: CproApproach = CproApproach.UNION
    ) -> "CproCalculator":
        """The task set's shared calculator for ``approach``.

        CPRO eviction counts are pure functions of the (immutable) task
        set, so one calculator per (task set, approach) pair serves every
        analysis run and keeps its pair cache warm across them.
        """
        return taskset.derived(
            ("cpro-calculator", approach), lambda: cls(taskset, approach)
        )

    @property
    def approach(self) -> CproApproach:
        """The CPRO approach this calculator applies."""
        return self._approach

    def eviction_count(self, task_j: Task, task_i: Task) -> int:
        """Evictable-PCB count of ``task_j`` within ``task_i``'s window."""
        key = (task_j.priority, task_i.priority)
        if key not in self._cache:
            self._cache[key] = self._fn(self._taskset, task_j, task_i)
        return self._cache[key]

    def rho(self, task_j: Task, task_i: Task, n_jobs: int) -> int:
        """CPRO bound :math:`\\hat{\\rho}_{j,i,x}(n)` of Eq. (14).

        Zero when at most one job of ``task_j`` executes in the window: the
        first job's (re)loads are already covered by :math:`\\hat{MD}`.
        """
        if n_jobs < 0:
            raise AnalysisError(f"n_jobs must be non-negative, got {n_jobs}")
        if n_jobs <= 1:
            return 0
        return (n_jobs - 1) * self.eviction_count(task_j, task_i)

    def _overlap_table(self, task_j: Task, task_i: Task) -> Optional[_OverlapTable]:
        """Precomputed evictor-period table behind the multiset bound."""
        key = (task_j.priority, task_i.priority)
        if key in self._overlap_cache:
            return self._overlap_cache[key]
        core = task_j.core
        others = [
            t for t in self._taskset.hep_on_core(task_i, core) if t is not task_j
        ]
        table: Optional[_OverlapTable]
        if not others:
            table = None
        else:
            table = tuple(
                periods
                for pcb in task_j.pcbs
                if (
                    periods := tuple(
                        int(evictor.period)
                        for evictor in others
                        if pcb in evictor.ecbs
                    )
                )
            )
        self._overlap_cache[key] = table
        return table

    def rho_window(
        self,
        task_j: Task,
        task_i: Task,
        n_jobs: int,
        window: int,
        carry_in: bool = False,
    ) -> int:
        """Window-aware CPRO bound.

        Evaluates the multiset bound of :func:`cpro_multiset_window` (from
        the precomputed per-pair overlap table) for the ``MULTISET``
        approach and the window-oblivious :meth:`rho` otherwise.  The
        multiset value never exceeds the union value.
        """
        if self._approach is not CproApproach.MULTISET:
            return self.rho(task_j, task_i, n_jobs)
        cap = self.rho(task_j, task_i, n_jobs)
        if cap == 0 or n_jobs <= 1 or window <= 0:
            return 0
        table = self._overlap_table(task_j, task_i)
        if table is None:
            return 0
        extra = 1 if carry_in else 0
        per_boundary = n_jobs - 1
        total = 0
        for periods in table:
            opportunities = 0
            for period in periods:
                opportunities += -((-window) // period) + extra
            total += min(per_boundary, opportunities)
        return min(total, cap)
