"""Cache persistence: multi-job memory demand and CPRO bounds."""

from repro.persistence.demand import multi_job_demand
from repro.persistence.cpro import (
    CproApproach,
    CproCalculator,
    cpro_eviction_count_global,
    cpro_eviction_count_union,
    cpro_multiset_window,
)

__all__ = [
    "multi_job_demand",
    "CproApproach",
    "CproCalculator",
    "cpro_eviction_count_global",
    "cpro_eviction_count_union",
    "cpro_multiset_window",
]
