"""Multi-job memory access demand under cache persistence (Eq. 10).

A persistent cache block (PCB) of a task is "a memory block used by the task
that, once loaded in the cache, will never be evicted or invalidated by the
task itself" (Rashid et al., ECRTS 2016).  When a task executes in isolation
each PCB is therefore loaded from main memory *at most once* across all its
jobs, so the total demand of :math:`n` successive jobs is bounded by

.. math::

    \\hat{MD}_i(n) = \\min( n \\cdot MD_i,\\; n \\cdot MD^r_i + |PCB_i| )

The first argument of the ``min`` is the classic persistence-oblivious bound;
the second charges every job only its residual demand plus one cold load of
every PCB.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.model.task import Task


def multi_job_demand(task: Task, n_jobs: int) -> int:
    """Upper bound :math:`\\hat{MD}(n)` on the memory requests of ``n_jobs``
    successive jobs of ``task`` executing in isolation (Eq. 10).

    Returns 0 for ``n_jobs == 0``; raises for negative job counts.
    """
    if n_jobs < 0:
        raise AnalysisError(f"n_jobs must be non-negative, got {n_jobs}")
    if n_jobs == 0:
        return 0
    return min(n_jobs * task.md, n_jobs * task.md_r + len(task.pcbs))
