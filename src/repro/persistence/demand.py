"""Multi-job memory access demand under cache persistence (Eq. 10).

A persistent cache block (PCB) of a task is "a memory block used by the task
that, once loaded in the cache, will never be evicted or invalidated by the
task itself" (Rashid et al., ECRTS 2016).  When a task executes in isolation
each PCB is therefore loaded from main memory *at most once* across all its
jobs, so the total demand of :math:`n` successive jobs is bounded by

.. math::

    \\hat{MD}_i(n) = \\min( n \\cdot MD_i,\\; n \\cdot MD^r_i + |PCB_i| )

The first argument of the ``min`` is the classic persistence-oblivious bound;
the second charges every job only its residual demand plus one cold load of
every PCB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.model.task import Task


@dataclass
class FaultHooks:
    """Test-only unsoundness injection points.

    The soundness fuzzer (:mod:`repro.verify`) must be able to prove it
    would catch a real analysis bug.  These flags let a test deliberately
    break a bound; they are consulted by :func:`multi_job_demand` and by
    the fused fast paths of :mod:`repro.businterference.requests`, and must
    never be set outside :func:`repro.verify.faults.inject_fault`.

    Attributes:
        drop_pcb_term: drop the ``|PCB|`` cold-load term from Eq. 10,
            turning the persistence-aware multi-job demand into the
            unsound ``n * MDr``.
    """

    drop_pcb_term: bool = False


#: Process-global fault state (all flags off in normal operation).
FAULTS = FaultHooks()


def multi_job_demand_from_params(
    n_jobs: int, md: int, md_r: int, pcb_count: int
) -> int:
    """Closed form of Eq. 10 over prefetched task parameters.

    The single definition of the persistence-aware multi-job ``min`` that
    :func:`multi_job_demand` and the fused fast paths of
    :mod:`repro.businterference.requests` (which inline it over the
    bitmask-kernel row tables) must agree on.  ``n_jobs <= 0`` contributes
    nothing; fault hooks are the *caller's* responsibility (the fuzzer's
    injection points sit where the parameters are read).
    """
    if n_jobs <= 0:
        return 0
    return min(n_jobs * md, n_jobs * md_r + pcb_count)


def multi_job_demand(task: Task, n_jobs: int) -> int:
    """Upper bound :math:`\\hat{MD}(n)` on the memory requests of ``n_jobs``
    successive jobs of ``task`` executing in isolation (Eq. 10).

    Returns 0 for ``n_jobs == 0``; raises for negative job counts.
    """
    if n_jobs < 0:
        raise AnalysisError(f"n_jobs must be non-negative, got {n_jobs}")
    pcb_term = 0 if FAULTS.drop_pcb_term else len(task.pcbs)
    return multi_job_demand_from_params(n_jobs, task.md, task.md_r, pcb_term)
