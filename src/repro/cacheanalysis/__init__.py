"""Static direct-mapped cache analysis (the Heptane substitute)."""

from repro.cacheanalysis.extraction import (
    AccessTally,
    ExtractedParameters,
    evicting_sets,
    extract_parameters,
    extract_parameters_cached,
    persistent_blocks,
)
from repro.cacheanalysis.simulator import TraceResult, simulate_trace
from repro.cacheanalysis.state import DirectMappedCache

__all__ = [
    "AccessTally",
    "ExtractedParameters",
    "evicting_sets",
    "extract_parameters",
    "extract_parameters_cached",
    "persistent_blocks",
    "TraceResult",
    "simulate_trace",
    "DirectMappedCache",
]
