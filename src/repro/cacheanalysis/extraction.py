"""Static extraction of task cache parameters (the Heptane substitute).

Given a structured :class:`~repro.program.cfg.Program` and a direct-mapped
:class:`~repro.model.platform.CacheGeometry`, compute exactly the interface
quantities the paper's task model consumes:

=========  =================================================================
``pd``     worst-case processing demand (all accesses hit), cycles.
``md``     worst-case memory access demand of one job from a cold cache.
``md_r``   residual demand: same but with every PCB already resident.
``ecbs``   evicting cache blocks — every cache set any path may touch.
``ucbs``   useful cache blocks — sets whose content is re-used (gets at
           least one hit) during a job, hence worth reloading after a
           preemption.
``pcbs``   persistent cache blocks — sets holding a block that, once
           loaded, the program itself can never evict.
=========  =================================================================

Method
------
Direct-mapped caches evolve each set independently, so a *structural
abstract interpretation* with (a) max-demand branch selection and (b)
pointwise-intersection joins at branch reconvergence yields a sound and —
for branch-free programs — exact demand count.  Loops are accelerated by
cache-state fixed-point/cycle detection instead of full unrolling, making
extraction fast even for bounds in the tens of thousands.

Persistence for direct-mapped caches has a crisp characterisation: a memory
block is persistent iff no *other* program block maps to the same cache set
(on any path).  That is exactly the definition of Rashid et al. ("once
loaded, never evicted or invalidated by the task itself") specialised to
direct mapping, and is what :func:`persistent_blocks` computes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Set, Tuple

from repro.cacheanalysis.state import DirectMappedCache
from repro.errors import ProgramError
from repro.model.platform import CacheGeometry
from repro.program.cfg import Alt, Block, Loop, Node, Program, Seq, worst_case_work


@dataclass
class AccessTally:
    """Accumulated effects of executing a program fragment."""

    misses: int = 0
    uncached: int = 0
    accesses: int = 0
    hit_sets: Set[int] = field(default_factory=set)

    @property
    def demand(self) -> int:
        """Main-memory requests: cache misses plus uncached accesses."""
        return self.misses + self.uncached

    def merge(self, other: "AccessTally") -> None:
        """Fold another fragment's tally into this one (sequencing)."""
        self.misses += other.misses
        self.uncached += other.uncached
        self.accesses += other.accesses
        self.hit_sets |= other.hit_sets

    def snapshot(self) -> Tuple[int, int, int]:
        """Numeric counters (used for loop cycle detection deltas)."""
        return (self.misses, self.uncached, self.accesses)


def _simulate_block(
    block: Block, state: DirectMappedCache, tally: AccessTally
) -> None:
    geometry = state.geometry
    for memory_block in block.memory_blocks(geometry):
        tally.accesses += 1
        if state.access(memory_block):
            tally.hit_sets.add(geometry.set_of_block(memory_block))
        else:
            tally.misses += 1
    tally.uncached += block.uncached
    tally.accesses += block.uncached


def _simulate(
    node: Node, state: DirectMappedCache
) -> Tuple[DirectMappedCache, AccessTally]:
    """Execute ``node`` abstractly from ``state``; returns (state', tally).

    ``state`` is not mutated.
    """
    if isinstance(node, Block):
        new_state = state.copy()
        tally = AccessTally()
        _simulate_block(node, new_state, tally)
        return new_state, tally
    if isinstance(node, Seq):
        tally = AccessTally()
        current = state
        for part in node.parts:
            current, part_tally = _simulate(part, current)
            tally.merge(part_tally)
        return current, tally
    if isinstance(node, Loop):
        return _simulate_loop(node, state)
    if isinstance(node, Alt):
        return _simulate_alt(node, state)
    raise ProgramError(f"unknown node type: {type(node).__name__}")


def _simulate_alt(
    node: Alt, state: DirectMappedCache
) -> Tuple[DirectMappedCache, AccessTally]:
    """Worst-demand branch with a sound state join at reconvergence."""
    results = [_simulate(choice, state) for choice in node.choices]
    worst_state, worst_tally = max(results, key=lambda pair: pair[1].demand)
    joined = worst_state
    hit_union: Set[int] = set()
    for branch_state, branch_tally in results:
        joined = joined.intersect(branch_state)
        hit_union |= branch_tally.hit_sets
    tally = AccessTally(
        misses=worst_tally.misses,
        uncached=worst_tally.uncached,
        accesses=worst_tally.accesses,
        hit_sets=hit_union,
    )
    return joined, tally


def _simulate_loop(
    node: Loop, state: DirectMappedCache
) -> Tuple[DirectMappedCache, AccessTally]:
    """Iterate the loop body with cache-state cycle acceleration.

    Once the entry state of an iteration repeats, the per-cycle demand is
    constant (the abstract semantics is a deterministic function of the
    state), so the remaining full cycles are fast-forwarded arithmetically.
    """
    total = AccessTally()
    seen: Dict[Tuple, Tuple[int, Tuple[int, int, int]]] = {}
    iteration = 0
    detecting = True
    current = state
    while iteration < node.bound:
        if detecting:
            key = current.key()
            if key in seen:
                first_iteration, counters = seen[key]
                cycle_length = iteration - first_iteration
                delta = tuple(
                    now - before
                    for now, before in zip(total.snapshot(), counters)
                )
                remaining = node.bound - iteration
                skips = remaining // cycle_length
                if skips:
                    total.misses += skips * delta[0]
                    total.uncached += skips * delta[1]
                    total.accesses += skips * delta[2]
                    iteration += skips * cycle_length
                detecting = False
                continue
            seen[key] = (iteration, total.snapshot())
        current, tally = _simulate(node.body, current)
        total.merge(tally)
        iteration += 1
    return current, total


# ---------------------------------------------------------------------------
# Parameter extraction
# ---------------------------------------------------------------------------


def evicting_sets(program: Program, geometry: CacheGeometry) -> FrozenSet[int]:
    """ECBs: every cache set the program may touch on any path."""
    return frozenset(
        geometry.set_of_block(block)
        for block in program.memory_blocks(geometry)
    )


def persistent_blocks(
    program: Program, geometry: CacheGeometry
) -> FrozenSet[int]:
    """PCBs (as cache sets): sets only ever holding one program block."""
    occupancy = Counter(
        geometry.set_of_block(block)
        for block in program.memory_blocks(geometry)
    )
    return frozenset(
        cache_set for cache_set, distinct in occupancy.items() if distinct == 1
    )


def _pcb_memory_blocks(
    program: Program, geometry: CacheGeometry
) -> Tuple[int, ...]:
    pcb_sets = persistent_blocks(program, geometry)
    return tuple(
        block
        for block in sorted(program.memory_blocks(geometry))
        if geometry.set_of_block(block) in pcb_sets
    )


@dataclass(frozen=True)
class ExtractedParameters:
    """Cache-aware task parameters for one benchmark at one geometry."""

    name: str
    pd: int
    md: int
    md_r: int
    ecbs: FrozenSet[int]
    ucbs: FrozenSet[int]
    pcbs: FrozenSet[int]

    def as_task_kwargs(self) -> Dict[str, object]:
        """Keyword arguments for :class:`repro.model.task.Task`."""
        return {
            "pd": self.pd,
            "md": self.md,
            "md_r": self.md_r,
            "ecbs": self.ecbs,
            "ucbs": self.ucbs,
            "pcbs": self.pcbs,
        }


def extract_parameters(
    program: Program, geometry: CacheGeometry
) -> ExtractedParameters:
    """Run the full extraction for ``program`` on ``geometry``.

    ``md`` comes from an abstract run out of a cold cache, ``md_r`` from a
    run with every PCB pre-loaded; ``ucbs`` are the cache sets that hit at
    least once during the cold run (on any branch).
    """
    cold_state = DirectMappedCache(geometry)
    _, cold = _simulate(program.root, cold_state)

    warm_state = DirectMappedCache.with_resident_blocks(
        geometry, _pcb_memory_blocks(program, geometry)
    )
    _, warm = _simulate(program.root, warm_state)

    md = cold.demand
    # Per-set monotonicity makes warm <= cold on every concrete path; the
    # max-demand branch choice could in principle differ between the two
    # abstract runs, so clamp defensively.
    md_r = min(warm.demand, md)
    return ExtractedParameters(
        name=program.name,
        pd=worst_case_work(program.root),
        md=md,
        md_r=md_r,
        ecbs=evicting_sets(program, geometry),
        ucbs=frozenset(cold.hit_sets),
        pcbs=persistent_blocks(program, geometry),
    )


@lru_cache(maxsize=4096)
def _extract_cached(
    program: Program, num_sets: int, block_size: int
) -> ExtractedParameters:
    return extract_parameters(
        program, CacheGeometry(num_sets=num_sets, block_size=block_size)
    )


def extract_parameters_cached(
    program: Program, geometry: CacheGeometry
) -> ExtractedParameters:
    """Memoised :func:`extract_parameters` (programs are immutable)."""
    return _extract_cached(program, geometry.num_sets, geometry.block_size)
