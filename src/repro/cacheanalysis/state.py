"""Concrete direct-mapped cache state.

A direct-mapped cache is a partial map from cache set index to the memory
block currently resident in that set.  The per-set behaviour is independent
(an access to set ``s`` can only evict the previous occupant of ``s``),
which is what makes the structural analysis of
:mod:`repro.cacheanalysis.extraction` exact.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.model.platform import CacheGeometry


class DirectMappedCache:
    """Mutable direct-mapped cache content for one core.

    Used both by the parameter-extraction machinery (copied, compared,
    hashed) and by the discrete-event simulator (mutated in place as jobs
    execute).
    """

    __slots__ = ("geometry", "_lines")

    def __init__(
        self,
        geometry: CacheGeometry,
        lines: Optional[Dict[int, int]] = None,
    ):
        self.geometry = geometry
        self._lines: Dict[int, int] = dict(lines) if lines else {}

    @classmethod
    def with_resident_blocks(
        cls, geometry: CacheGeometry, blocks: Iterable[int]
    ) -> "DirectMappedCache":
        """Cache pre-loaded with ``blocks`` (later blocks win conflicts)."""
        cache = cls(geometry)
        for block in blocks:
            cache._lines[geometry.set_of_block(block)] = block
        return cache

    def lookup(self, block: int) -> bool:
        """Whether ``block`` is currently resident (no state change)."""
        return self._lines.get(self.geometry.set_of_block(block)) == block

    def access(self, block: int) -> bool:
        """Access ``block``; return ``True`` on hit, loading it on a miss."""
        cache_set = self.geometry.set_of_block(block)
        if self._lines.get(cache_set) == block:
            return True
        self._lines[cache_set] = block
        return False

    def evict_sets(self, cache_sets: Iterable[int]) -> int:
        """Invalidate the given sets; returns how many were occupied.

        Models the effect of another task's execution on this core: every
        cache set the other task touches loses its previous content.
        """
        evicted = 0
        for cache_set in cache_sets:
            if self._lines.pop(cache_set, None) is not None:
                evicted += 1
        return evicted

    def resident_blocks(self) -> Tuple[int, ...]:
        """The memory blocks currently cached, sorted."""
        return tuple(sorted(self._lines.values()))

    def occupied_sets(self) -> Tuple[int, ...]:
        """The cache sets currently holding a block, sorted."""
        return tuple(sorted(self._lines))

    def copy(self) -> "DirectMappedCache":
        """Independent copy of this cache state."""
        return DirectMappedCache(self.geometry, self._lines)

    def key(self) -> Tuple[Tuple[int, int], ...]:
        """Hashable snapshot of the content (for fixed-point detection)."""
        return tuple(sorted(self._lines.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectMappedCache):
            return NotImplemented
        return self.geometry == other.geometry and self._lines == other._lines

    def __len__(self) -> int:
        return len(self._lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DirectMappedCache({len(self._lines)}/{self.geometry.num_sets} sets)"

    def intersect(self, other: "DirectMappedCache") -> "DirectMappedCache":
        """Pointwise join: keep only lines both states agree on.

        Sound merge for branch reconvergence — dropping a line can only add
        future misses (per-set independence of direct mapping).
        """
        lines = {
            cache_set: block
            for cache_set, block in self._lines.items()
            if other._lines.get(cache_set) == block
        }
        return DirectMappedCache(self.geometry, lines)
