"""Exact trace-driven cache simulation (cross-validation oracle).

The structural extraction of :mod:`repro.cacheanalysis.extraction` is exact
for branch-free programs and a sound over-approximation otherwise.  This
module provides the ground truth to test that claim against: replay a
concrete sequence of memory-block accesses through a
:class:`~repro.cacheanalysis.state.DirectMappedCache` and count what
actually happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.cacheanalysis.state import DirectMappedCache
from repro.model.platform import CacheGeometry


@dataclass
class TraceResult:
    """Outcome of replaying one access trace."""

    hits: int = 0
    misses: int = 0
    hit_sets: FrozenSet[int] = frozenset()
    final_state: Optional[DirectMappedCache] = None

    @property
    def accesses(self) -> int:
        """Total number of cache accesses replayed."""
        return self.hits + self.misses


def simulate_trace(
    blocks: Iterable[int],
    geometry: CacheGeometry,
    initial: Optional[DirectMappedCache] = None,
) -> TraceResult:
    """Replay ``blocks`` (memory-block indices) through a cache.

    Args:
        blocks: the access trace, in order.
        geometry: cache geometry to simulate.
        initial: starting cache content; cold (empty) when omitted.  The
            passed state is not mutated.
    """
    state = initial.copy() if initial is not None else DirectMappedCache(geometry)
    hits = 0
    misses = 0
    hit_sets = set()
    for block in blocks:
        if state.access(block):
            hits += 1
            hit_sets.add(geometry.set_of_block(block))
        else:
            misses += 1
    return TraceResult(
        hits=hits,
        misses=misses,
        hit_sets=frozenset(hit_sets),
        final_state=state,
    )
