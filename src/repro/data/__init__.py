"""Canonical datasets (benchmark parameter table)."""

from repro.data.benchmarks import (
    EXTRACTION_LATENCY_CYCLES,
    BenchmarkSpec,
    benchmark_spec,
    benchmark_table,
    model_extracted_spec,
)

__all__ = [
    "EXTRACTION_LATENCY_CYCLES",
    "BenchmarkSpec",
    "benchmark_spec",
    "benchmark_table",
    "model_extracted_spec",
]
