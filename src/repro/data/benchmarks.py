"""Canonical benchmark parameter table driving the experiments.

The paper's Table I publishes six Mälardalen benchmark rows extracted with
Heptane (the full table lives in the authors' RTSS 2017 paper, which is not
reproduced here).  This module provides the row set the task-set generator
samples from:

* the six published rows, verbatim — with the ``MD``/``MDr`` columns (which
  Table I gives "in clock cycles") converted to request counts under the
  units convention of ``DESIGN.md`` (extraction latency ``d_ext = 10``
  cycles per access, equal to the default ``d_mem``), and
* one row per reconstructed benchmark.  The paper draws from the whole
  Mälardalen suite but only prints six rows; the reconstructed rows span
  the same diversity of code size, memory intensity and persistence ratio
  (``MDr/MD``) as the published ones.  Their footprint sizes (``|ECB|``,
  ``|UCB|``, ``|PCB|``) match the synthetic models of
  :mod:`repro.program.malardalen` exactly at the reference geometry, while
  their ``MDr`` values follow the published distribution of persistence
  savings — which a pure instruction-footprint model cannot express, see
  the discussion in ``DESIGN.md``.

Rows expose set *sizes* only; concrete cache-set placements are chosen by
the task-set generator (:mod:`repro.generation`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.cacheanalysis.extraction import extract_parameters_cached
from repro.errors import GenerationError
from repro.program.malardalen import benchmark_program, reference_geometry

#: Memory latency (cycles/access) assumed by the original Heptane
#: extraction; converts Table I's cycle-valued MD columns to request counts.
#: Equal to the paper's default ``d_mem`` (5 us = 10 cycles at 2 MHz), so
#: that the paper's period formula ``T = (PD + MD)/U`` — with MD in cycles —
#: coincides exactly with the generator's ``T = (PD + md * d_mem)/U`` at the
#: default latency.
EXTRACTION_LATENCY_CYCLES = 10


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the benchmark parameter table.

    ``md``/``md_r`` are main-memory request counts; ``pd`` is in cycles.
    ``n_ecb``/``n_ucb``/``n_pcb`` are footprint sizes in cache sets at the
    reference geometry (256 sets x 32 B).
    """

    name: str
    pd: int
    md: int
    md_r: int
    n_ecb: int
    n_ucb: int
    n_pcb: int
    source: str

    def __post_init__(self) -> None:
        if not 0 <= self.md_r <= self.md:
            raise GenerationError(f"{self.name}: md_r must be within [0, md]")
        if self.n_ucb > self.n_ecb or self.n_pcb > self.n_ecb:
            raise GenerationError(f"{self.name}: UCB/PCB sizes exceed ECB size")

    @property
    def persistence_ratio(self) -> float:
        """``MDr / MD`` — fraction of the demand that persistence keeps."""
        return self.md_r / self.md if self.md else 1.0


def _counts(md_cycles: int, md_r_cycles: int) -> Tuple[int, int]:
    md = math.ceil(md_cycles / EXTRACTION_LATENCY_CYCLES)
    md_r = math.ceil(md_r_cycles / EXTRACTION_LATENCY_CYCLES)
    return md, min(md, md_r)


#: Table I rows: (name, PD cycles, MD cycles, MDr cycles, |ECB|, |PCB|, |UCB|).
_TABLE1 = (
    ("lcdnum", 984, 1440, 192, 20, 20, 20),
    ("bsort100", 710289, 89893, 88907, 20, 20, 18),
    ("ludcmp", 27036, 8607, 3545, 98, 98, 98),
    ("fdct", 6550, 6017, 819, 106, 22, 58),
    ("nsichneu", 22009, 147200, 147200, 256, 0, 256),
    ("statemate", 10586, 18257, 3891, 256, 36, 256),
)

#: Reconstructed rows, same tuple layout (cycle-valued MD/MDr columns).
#: Footprint sizes agree with the synthetic models at the reference
#: geometry; MD matches the models; MDr follows the published spread of
#: persistence ratios (0.13 .. 1.0).
_RECONSTRUCTED = (
    ("bs", 6000, 1300, 200, 12, 12, 10),
    ("fibcall", 12000, 80, 0, 8, 8, 8),
    ("insertsort", 6573, 3950, 1600, 15, 15, 14),
    ("crc", 36159, 6150, 900, 45, 45, 40),
    ("matmult", 200436, 31220, 28000, 42, 42, 40),
    ("jfdctint", 50000, 15300, 3300, 90, 30, 60),
    ("ns", 10436, 5660, 2400, 26, 26, 24),
    ("cnt", 9000, 2250, 450, 25, 25, 22),
    ("minver", 60000, 12980, 5000, 114, 60, 100),
    ("expint", 6000, 2560, 600, 16, 16, 12),
    ("fir", 14000, 3180, 2800, 18, 18, 18),
    ("janne_complex", 2500, 600, 150, 10, 10, 10),
    ("qurt", 9000, 2000, 600, 30, 30, 28),
    ("sqrt", 1500, 600, 100, 14, 14, 14),
    ("select", 5000, 2220, 1800, 22, 22, 20),
    ("ud", 20000, 3000, 900, 78, 78, 70),
    ("duff", 7000, 2320, 1900, 44, 16, 36),
    ("edn", 30000, 6500, 2600, 80, 50, 80),
    ("compress", 10000, 2860, 1200, 56, 36, 30),
)


def _rows_from(table, source: str) -> Tuple[BenchmarkSpec, ...]:
    rows = []
    for name, pd, md_cycles, md_r_cycles, n_ecb, n_pcb, n_ucb in table:
        md, md_r = _counts(md_cycles, md_r_cycles)
        rows.append(
            BenchmarkSpec(
                name=name,
                pd=pd,
                md=md,
                md_r=md_r,
                n_ecb=n_ecb,
                n_ucb=n_ucb,
                n_pcb=n_pcb,
                source=source,
            )
        )
    return tuple(rows)


@lru_cache(maxsize=1)
def benchmark_table() -> Tuple[BenchmarkSpec, ...]:
    """The full row set: published rows first, then reconstructed ones."""
    return _rows_from(_TABLE1, "published-table1") + _rows_from(
        _RECONSTRUCTED, "reconstructed"
    )


def model_extracted_spec(name: str) -> BenchmarkSpec:
    """Row re-derived from the synthetic model at the reference geometry.

    Used by the Table I reproduction experiment to report dataset versus
    model-extracted parameters side by side.
    """
    params = extract_parameters_cached(benchmark_program(name), reference_geometry())
    return BenchmarkSpec(
        name=name,
        pd=params.pd,
        md=params.md,
        md_r=params.md_r,
        n_ecb=len(params.ecbs),
        n_ucb=len(params.ucbs),
        n_pcb=len(params.pcbs),
        source="model-extracted",
    )


@lru_cache(maxsize=1)
def _table_by_name() -> Dict[str, BenchmarkSpec]:
    return {row.name: row for row in benchmark_table()}


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Look up one row by benchmark name."""
    try:
        return _table_by_name()[name]
    except KeyError:
        raise GenerationError(
            f"unknown benchmark {name!r}; available: {sorted(_table_by_name())}"
        ) from None
