"""repro — cache persistence-aware memory bus contention analysis.

Reproduction of Rashid, Nelissen and Tovar, *"Cache Persistence-Aware Memory
Bus Contention Analysis for Multicore Systems"*, DATE 2020.

The public API re-exports the most commonly used entry points; see the
subpackages for the full surface:

* :mod:`repro.model` — tasks, task sets, platform.
* :mod:`repro.program` — synthetic CFG models of the Mälardalen benchmarks.
* :mod:`repro.cacheanalysis` — static direct-mapped cache analysis
  (ECB/UCB/PCB/MD/MDr extraction; Heptane substitute).
* :mod:`repro.crpd` / :mod:`repro.persistence` — CRPD and CPRO bounds.
* :mod:`repro.businterference` — BAS/BAO/BAT bounds (Eq. 1-9, Lemmas 1-2).
* :mod:`repro.analysis` — WCRT fixed point and schedulability tests.
* :mod:`repro.generation` — UUnifast-based random task-set generation.
* :mod:`repro.sim` — discrete-event multicore simulator (validation).
* :mod:`repro.experiments` — drivers regenerating every paper figure/table.
"""

from repro.analysis import (
    AnalysisConfig,
    BASELINE,
    PERSISTENCE_AWARE,
    WcrtBreakdown,
    WcrtResult,
    analyze_taskset,
    breakdown_d_mem,
    breakdown_period_scale,
    check_schedulability,
    decompose_taskset,
    is_schedulable,
    weighted_schedulability,
)
from repro.atomicio import atomic_write_json, atomic_write_text
from repro.budget import Budget, CancelToken
from repro.errors import AnalysisAborted, BudgetExceeded, Cancelled
from repro.serialization import load_taskset, save_taskset
from repro.model import (
    BusPolicy,
    CacheGeometry,
    Platform,
    Task,
    TaskSet,
    assign_deadline_monotonic_priorities,
    microseconds_to_cycles,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "BASELINE",
    "PERSISTENCE_AWARE",
    "WcrtBreakdown",
    "WcrtResult",
    "analyze_taskset",
    "atomic_write_json",
    "atomic_write_text",
    "AnalysisAborted",
    "Budget",
    "BudgetExceeded",
    "CancelToken",
    "Cancelled",
    "breakdown_d_mem",
    "breakdown_period_scale",
    "decompose_taskset",
    "load_taskset",
    "save_taskset",
    "check_schedulability",
    "is_schedulable",
    "weighted_schedulability",
    "BusPolicy",
    "CacheGeometry",
    "Platform",
    "Task",
    "TaskSet",
    "assign_deadline_monotonic_priorities",
    "microseconds_to_cycles",
    "__version__",
]
