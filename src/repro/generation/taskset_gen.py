"""Random task-set generation following the paper's recipe (Sec. V).

For every experiment the paper draws task sets as follows:

* 8 tasks per core (default task-set size 32 on 4 cores);
* each task takes the parameters of a random Mälardalen benchmark;
* per-task utilisations from UUnifast with equal per-core targets;
* periods/deadlines ``T_i = D_i = (PD_i + MD_i * d_mem) / U_i`` (implicit
  deadlines relative to the isolated WCET — see the units discussion in
  ``DESIGN.md``);
* unique deadline-monotonic priorities.

The published table gives footprint *sizes*; to evaluate the set-based CRPD
and CPRO bounds the generator must also decide *where* each task's ECBs sit
in the cache.  Following the standard methodology of the CRPD literature,
each task occupies a run of consecutive cache sets; the run's start is
either always set 0 (maximum inter-task overlap) or uniformly random
(moderate overlap, the default).  UCB and PCB placements are random subsets
of the task's ECB run.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.cacheanalysis.extraction import extract_parameters_cached
from repro.data.benchmarks import BenchmarkSpec, benchmark_table
from repro.errors import GenerationError
from repro.generation.uunifast import uunifast
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet, assign_deadline_monotonic_priorities
from repro.program.malardalen import benchmark_program, reference_geometry

#: Utilisations below this are clamped to keep generated periods finite.
_MIN_TASK_UTILIZATION = 1e-4


class PlacementPolicy(enum.Enum):
    """How a task's ECB run is positioned in the cache."""

    RANDOM_START = "random-start"
    ZERO_START = "zero-start"


class ParameterSource(enum.Enum):
    """Where per-benchmark cache parameters come from.

    ``TABLE`` uses the canonical row set (published Table I values plus
    reconstructions) — independent of the platform's cache size, matching
    the paper's default experiments.  ``MODELS`` re-extracts every benchmark
    from its synthetic program at the platform's actual cache geometry.
    ``HYBRID`` — the recommended source for the cache-size sweep (Fig. 3c,
    where the original authors re-ran Heptane per size) — takes the
    footprint sets from the models at the actual geometry but re-scales the
    canonical ``MD``/``MDr`` by the models' relative demand and PCB-count
    changes, so that at the reference geometry it coincides with ``TABLE``
    and across sizes the absolute schedulability levels stay comparable to
    the other experiments.
    """

    TABLE = "table"
    MODELS = "models"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class GenerationConfig:
    """Parameters of the random task-set generator."""

    tasks_per_core: int = 8
    placement: PlacementPolicy = PlacementPolicy.RANDOM_START
    parameter_source: ParameterSource = ParameterSource.TABLE
    benchmarks: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.tasks_per_core <= 0:
            raise GenerationError(
                f"tasks_per_core must be positive, got {self.tasks_per_core}"
            )


def _spec_pool(
    config: GenerationConfig, platform: Platform
) -> Sequence[BenchmarkSpec]:
    rows = benchmark_table()
    if config.benchmarks is not None:
        chosen = set(config.benchmarks)
        rows = tuple(row for row in rows if row.name in chosen)
        if len(rows) != len(chosen):
            missing = chosen - {row.name for row in rows}
            raise GenerationError(f"unknown benchmarks requested: {sorted(missing)}")
    if config.parameter_source is ParameterSource.TABLE:
        return rows
    if config.parameter_source is ParameterSource.MODELS:
        return tuple(_model_spec(row, platform) for row in rows)
    return tuple(_hybrid_spec(row, platform) for row in rows)


def _model_spec(row: BenchmarkSpec, platform: Platform) -> BenchmarkSpec:
    params = extract_parameters_cached(benchmark_program(row.name), platform.cache)
    return BenchmarkSpec(
        name=row.name,
        pd=params.pd,
        md=params.md,
        md_r=params.md_r,
        n_ecb=len(params.ecbs),
        n_ucb=len(params.ucbs),
        n_pcb=len(params.pcbs),
        source=f"model-extracted@{platform.cache.num_sets}",
    )


def _hybrid_spec(row: BenchmarkSpec, platform: Platform) -> BenchmarkSpec:
    """Canonical demand re-scaled by the model's cache-size sensitivity.

    ``MD`` scales with the model's demand ratio between the actual and the
    reference geometry (conflict misses appear as the cache shrinks); the
    persistence saving ``MD - MDr`` scales with the model's PCB-count ratio
    (persistence erodes as mappings collide).  At the reference geometry
    both ratios are 1 and the row is returned unchanged.
    """
    program = benchmark_program(row.name)
    at_size = extract_parameters_cached(program, platform.cache)
    at_ref = extract_parameters_cached(program, reference_geometry())
    demand_ratio = at_size.md / at_ref.md if at_ref.md else 1.0
    md = max(1, int(round(row.md * demand_ratio)))
    savings_ref = row.md - row.md_r
    if at_ref.pcbs:
        pcb_ratio = len(at_size.pcbs) / len(at_ref.pcbs)
    else:
        pcb_ratio = 0.0
    savings = int(round(savings_ref * pcb_ratio))
    md_r = min(md, max(0, md - savings))
    return BenchmarkSpec(
        name=row.name,
        pd=row.pd,
        md=md,
        md_r=md_r,
        n_ecb=len(at_size.ecbs),
        n_ucb=len(at_size.ucbs),
        n_pcb=len(at_size.pcbs),
        source=f"hybrid@{platform.cache.num_sets}",
    )


def _place_sets(
    rng: random.Random,
    spec: BenchmarkSpec,
    num_sets: int,
    placement: PlacementPolicy,
) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
    """Materialise concrete (ecbs, ucbs, pcbs) cache-set placements."""
    if placement is PlacementPolicy.ZERO_START:
        start = 0
    else:
        start = rng.randrange(num_sets)
    ecbs = frozenset((start + offset) % num_sets for offset in range(spec.n_ecb))
    ordered = sorted(ecbs)
    n_ucb = min(spec.n_ucb, len(ordered))
    n_pcb = min(spec.n_pcb, len(ordered))
    ucbs = frozenset(rng.sample(ordered, n_ucb))
    pcbs = frozenset(rng.sample(ordered, n_pcb))
    return ecbs, ucbs, pcbs


def generate_taskset(
    rng: random.Random,
    platform: Platform,
    core_utilization: float,
    config: GenerationConfig = GenerationConfig(),
) -> TaskSet:
    """Draw one random task set for ``platform``.

    Args:
        rng: seeded random source; identical seeds reproduce the task set.
        platform: target platform (supplies core count, ``d_mem`` and the
            cache geometry used by the ``MODELS`` parameter source).
        core_utilization: UUnifast target for *every* core (the paper uses
            equal per-core utilisation).
        config: generation knobs.
    """
    if core_utilization <= 0:
        raise GenerationError(
            f"core_utilization must be positive, got {core_utilization}"
        )
    pool = _spec_pool(config, platform)
    if not pool:
        raise GenerationError("benchmark pool is empty")
    num_sets = platform.cache.num_sets
    d_mem = platform.d_mem
    tasks: List[Task] = []
    for core in platform.cores:
        utilizations = uunifast(rng, config.tasks_per_core, core_utilization)
        for index, utilization in enumerate(utilizations):
            utilization = max(utilization, _MIN_TASK_UTILIZATION)
            spec = rng.choice(pool)
            ecbs, ucbs, pcbs = _place_sets(rng, spec, num_sets, config.placement)
            wcet = spec.pd + spec.md * d_mem
            period = max(int(round(wcet / utilization)), wcet)
            tasks.append(
                Task(
                    name=f"{spec.name}#c{core}t{index}",
                    pd=spec.pd,
                    md=spec.md,
                    md_r=spec.md_r,
                    period=period,
                    deadline=period,
                    priority=len(tasks),  # placeholder, replaced below
                    core=core,
                    ecbs=ecbs,
                    ucbs=ucbs,
                    pcbs=pcbs,
                )
            )
    return TaskSet(assign_deadline_monotonic_priorities(tasks))
