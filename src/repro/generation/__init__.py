"""Random task-set generation (UUnifast + benchmark parameters)."""

from repro.generation.taskset_gen import (
    GenerationConfig,
    ParameterSource,
    PlacementPolicy,
    generate_taskset,
)
from repro.generation.partitioning import (
    HEURISTICS,
    best_fit,
    cache_aware_worst_fit,
    first_fit,
    worst_fit,
)
from repro.generation.uunifast import uunifast

__all__ = [
    "GenerationConfig",
    "ParameterSource",
    "PlacementPolicy",
    "generate_taskset",
    "uunifast",
    "HEURISTICS",
    "best_fit",
    "cache_aware_worst_fit",
    "first_fit",
    "worst_fit",
]
