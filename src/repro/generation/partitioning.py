"""Task-to-core partitioning heuristics.

The paper assumes tasks are "statically assigned to a core at design time"
and its generator simply deals 8 tasks to each core.  A downstream user of
this library usually starts from an *unpartitioned* task list, so this
module provides the classic bin-packing heuristics plus a cache-aware
variant that exploits the persistence analysis:

* :func:`first_fit` / :func:`worst_fit` / :func:`best_fit` — utilisation
  driven bin packing (decreasing-utilisation order).
* :func:`cache_aware_worst_fit` — like worst fit, but among the cores with
  enough utilisation headroom it picks the one whose resident tasks'
  ECBs overlap the new task's PCBs the least.  Less overlap means smaller
  CPRO (Eq. 14) and smaller CRPD (Eq. 2), which directly tightens the
  persistence-aware analysis.

All heuristics return a *new* list of tasks with the ``core`` attribute
set; priorities are untouched (assign them afterwards, e.g. deadline
monotonic).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import GenerationError
from repro.model.platform import Platform
from repro.model.task import Task


def _sorted_by_utilization(tasks: Sequence[Task], d_mem: int) -> List[Task]:
    return sorted(tasks, key=lambda t: t.utilization(d_mem), reverse=True)


def _check_fit(task: Task, load: float, d_mem: int, capacity: float) -> bool:
    return load + task.utilization(d_mem) <= capacity + 1e-12


def _pack(
    tasks: Sequence[Task],
    platform: Platform,
    choose: Callable[[Task, List[float], List[List[Task]]], Optional[int]],
    capacity: float,
) -> List[Task]:
    d_mem = platform.d_mem
    loads = [0.0] * platform.num_cores
    assigned: List[List[Task]] = [[] for _ in platform.cores]
    result: List[Task] = []
    for task in _sorted_by_utilization(tasks, d_mem):
        core = choose(task, loads, assigned)
        if core is None:
            raise GenerationError(
                f"task {task.name!r} (u={task.utilization(d_mem):.3f}) does "
                f"not fit on any core (capacity {capacity})"
            )
        placed = task.with_core(core)
        loads[core] += task.utilization(d_mem)
        assigned[core].append(placed)
        result.append(placed)
    return result


def first_fit(
    tasks: Sequence[Task], platform: Platform, capacity: float = 1.0
) -> List[Task]:
    """First-fit decreasing: lowest-indexed core with room."""
    d_mem = platform.d_mem

    def choose(task, loads, assigned):
        for core, load in enumerate(loads):
            if _check_fit(task, load, d_mem, capacity):
                return core
        return None

    return _pack(tasks, platform, choose, capacity)


def best_fit(
    tasks: Sequence[Task], platform: Platform, capacity: float = 1.0
) -> List[Task]:
    """Best-fit decreasing: fullest core that still has room."""
    d_mem = platform.d_mem

    def choose(task, loads, assigned):
        candidates = [
            core
            for core, load in enumerate(loads)
            if _check_fit(task, load, d_mem, capacity)
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda core: loads[core])

    return _pack(tasks, platform, choose, capacity)


def worst_fit(
    tasks: Sequence[Task], platform: Platform, capacity: float = 1.0
) -> List[Task]:
    """Worst-fit decreasing: emptiest core (balances utilisation)."""
    d_mem = platform.d_mem

    def choose(task, loads, assigned):
        candidates = [
            core
            for core, load in enumerate(loads)
            if _check_fit(task, load, d_mem, capacity)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda core: loads[core])

    return _pack(tasks, platform, choose, capacity)


def _cache_overlap(task: Task, residents: Sequence[Task]) -> int:
    """How badly ``task`` and the core's residents disturb each other.

    Counts both directions: resident ECBs evicting the newcomer's PCBs and
    UCBs (future CPRO/CRPD of the newcomer) and the newcomer's ECBs
    evicting the residents' PCBs and UCBs.
    """
    overlap = 0
    for resident in residents:
        overlap += len(task.pcbs & resident.ecbs)
        overlap += len(task.ucbs & resident.ecbs)
        overlap += len(resident.pcbs & task.ecbs)
        overlap += len(resident.ucbs & task.ecbs)
    return overlap


def cache_aware_worst_fit(
    tasks: Sequence[Task],
    platform: Platform,
    capacity: float = 1.0,
    headroom: float = 0.1,
) -> List[Task]:
    """Worst fit with cache-overlap tie breaking.

    Among the cores whose load is within ``headroom`` of the emptiest one,
    pick the core minimising the mutual cache-footprint disturbance.  With
    ``headroom = 0`` this degenerates to plain worst fit; with a large
    ``headroom`` it greedily minimises overlap subject to fitting.
    """
    if headroom < 0:
        raise GenerationError(f"headroom must be non-negative, got {headroom}")
    d_mem = platform.d_mem

    def choose(task, loads, assigned):
        candidates = [
            core
            for core, load in enumerate(loads)
            if _check_fit(task, load, d_mem, capacity)
        ]
        if not candidates:
            return None
        emptiest = min(loads[core] for core in candidates)
        near_emptiest = [
            core for core in candidates if loads[core] <= emptiest + headroom
        ]
        return min(
            near_emptiest,
            key=lambda core: (_cache_overlap(task, assigned[core]), loads[core]),
        )

    return _pack(tasks, platform, choose, capacity)


#: Named registry of the partitioning heuristics.
HEURISTICS: Dict[str, Callable[..., List[Task]]] = {
    "first-fit": first_fit,
    "best-fit": best_fit,
    "worst-fit": worst_fit,
    "cache-aware": cache_aware_worst_fit,
}
