"""UUnifast utilisation generation (Bini & Buttazzo, 2005).

The paper generates task utilisations with UUnifast assuming an equal
utilisation target for each core.  UUnifast draws ``n`` utilisations that
sum exactly to the target, uniformly distributed over the corresponding
simplex — the standard unbiased generator for schedulability experiments.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import GenerationError


def uunifast(rng: random.Random, n_tasks: int, total_utilization: float) -> List[float]:
    """Draw ``n_tasks`` utilisations summing to ``total_utilization``.

    Args:
        rng: source of randomness (callers own seeding for reproducibility).
        n_tasks: number of tasks to draw for.
        total_utilization: target sum; must be positive.  Values above
            ``n_tasks`` are impossible to realise with per-task utilisation
            at most one and are rejected.

    Returns:
        A list of ``n_tasks`` positive utilisations summing (within
        floating-point error) to the target.
    """
    if n_tasks <= 0:
        raise GenerationError(f"n_tasks must be positive, got {n_tasks}")
    if total_utilization <= 0:
        raise GenerationError(
            f"total_utilization must be positive, got {total_utilization}"
        )
    if total_utilization > n_tasks:
        raise GenerationError(
            f"cannot split utilisation {total_utilization} over {n_tasks} tasks"
        )
    remaining = total_utilization
    utilizations: List[float] = []
    for i in range(1, n_tasks):
        next_remaining = remaining * rng.random() ** (1.0 / (n_tasks - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations
