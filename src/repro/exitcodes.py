"""Process exit codes shared by every ``repro`` command-line tool.

One documented mapping from the :class:`~repro.errors.ReproError`
hierarchy to distinct exit codes, so shell scripts and CI jobs can react
to *what kind* of failure occurred without scraping stderr:

==========================  ====  =============================================
meaning                     code  raised as
==========================  ====  =============================================
success                     0     —
unexpected ``ReproError``   1     any subclass not covered below
model / validation error    2     :class:`~repro.errors.ModelError`,
                                  :class:`~repro.errors.GenerationError`,
                                  :class:`~repro.errors.ProgramError`, and any
                                  bad command line / configuration
analysis error              3     :class:`~repro.errors.AnalysisError`,
                                  :class:`~repro.errors.SimulationError`
execution error             4     :class:`~repro.errors.ExecutionError`
                                  (worker crash, chunk timeout, journal
                                  corruption)
interrupted                 130   :class:`~repro.errors.SweepInterrupted`
                                  (mirrors the shell's 128+SIGINT)
==========================  ====  =============================================

The *phase* matters: CLI argument and configuration problems are always
reported as :data:`EXIT_USAGE` (2) regardless of which error class carried
them — that keeps the long-standing ``argparse`` convention — while errors
raised from a *running* command map by class via :func:`exit_code_for`.
"""

from __future__ import annotations

from repro.errors import (
    AnalysisError,
    ExecutionError,
    GenerationError,
    ModelError,
    ProgramError,
    ReproError,
    SimulationError,
    SweepInterrupted,
)

#: Command completed successfully.
EXIT_OK = 0

#: A :class:`~repro.errors.ReproError` with no more specific mapping.
EXIT_FAILURE = 1

#: Invalid input: bad command line, bad configuration, malformed model.
EXIT_USAGE = 2

#: The analysis or simulation itself failed (not its execution machinery).
EXIT_ANALYSIS = 3

#: The execution layer failed: worker crash, hang, journal corruption.
EXIT_EXECUTION = 4

#: Interrupted by SIGINT/SIGTERM after a clean journal flush.
EXIT_INTERRUPTED = 130


def exit_code_for(error: ReproError) -> int:
    """Exit code for an error raised while a command was *running*.

    The ``isinstance`` checks run most-specific first:
    :class:`~repro.errors.SweepInterrupted` is an
    :class:`~repro.errors.ExecutionError` but must keep the conventional
    128+signal code.
    """
    if isinstance(error, SweepInterrupted):
        return EXIT_INTERRUPTED
    if isinstance(error, ExecutionError):
        return EXIT_EXECUTION
    if isinstance(error, (ModelError, GenerationError, ProgramError)):
        return EXIT_USAGE
    if isinstance(error, (AnalysisError, SimulationError)):
        return EXIT_ANALYSIS
    return EXIT_FAILURE
