"""System model: tasks, task sets, and the multicore platform."""

from repro.model.platform import (
    BusPolicy,
    CacheGeometry,
    Platform,
    CYCLES_PER_US,
    PROCESSOR_HZ,
    cycles_to_microseconds,
    microseconds_to_cycles,
)
from repro.model.interference import (
    InterferenceTable,
    blocks_to_mask,
    mask_to_blocks,
)
from repro.model.task import (
    Task,
    TaskSet,
    assign_deadline_monotonic_priorities,
    assign_rate_monotonic_priorities,
)

__all__ = [
    "InterferenceTable",
    "blocks_to_mask",
    "mask_to_blocks",
    "BusPolicy",
    "CacheGeometry",
    "Platform",
    "CYCLES_PER_US",
    "PROCESSOR_HZ",
    "cycles_to_microseconds",
    "microseconds_to_cycles",
    "Task",
    "TaskSet",
    "assign_deadline_monotonic_priorities",
    "assign_rate_monotonic_priorities",
]
