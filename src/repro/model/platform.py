"""Hardware platform model.

The paper (Sec. II) considers a multicore platform with ``m`` identical
timing-compositional cores.  Each core owns a private direct-mapped L1
instruction cache; all cores share a single memory bus to main memory, and
one bus transaction (a cache-line refill) takes ``d_mem`` time units.

Time units
----------
Everywhere in this library, time is expressed in *processor cycles*.  The
paper's experiments use a default memory latency of 5 µs; following the
units convention documented in ``DESIGN.md`` we model the processor at
2 MHz, i.e. 1 cycle = 500 ns and 5 µs = 10 cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ModelError

#: Processor frequency assumed by the units convention (cycles per second).
#: 2 MHz puts the paper's default memory latency of 5 us at 10 cycles, which
#: pins down the two unit choices documented in DESIGN.md: (a) the request
#: counts obtained from Table I's cycle-valued MD columns use the same
#: latency (so the paper's period formula ``T = (PD + MD)/U`` with MD in
#: cycles coincides with the generator's ``T = (PD + md * d_mem)/U`` at the
#: default latency), and (b) set-based overheads (CRPD/CPRO, measured in
#: cache sets) stay small relative to the per-job request counts — matching
#: the paper's own worked example, where gamma = 2 against MD = 8.
PROCESSOR_HZ = 2_000_000

#: Number of cycles per microsecond under the units convention.
CYCLES_PER_US = PROCESSOR_HZ // 1_000_000


def microseconds_to_cycles(us: float) -> int:
    """Convert a duration in microseconds to processor cycles.

    >>> microseconds_to_cycles(5)
    10
    """
    return int(round(us * CYCLES_PER_US))


def cycles_to_microseconds(cycles: float) -> float:
    """Convert a duration in processor cycles to microseconds.

    >>> cycles_to_microseconds(10)
    5.0
    """
    return cycles / CYCLES_PER_US


class BusPolicy(enum.Enum):
    """Memory bus arbitration policies analysed in the paper.

    * ``FP`` -- fixed priority: bus requests inherit the priority of the
      requesting task (work conserving), Eq. (7).
    * ``RR`` -- round robin with ``slot_size`` consecutive memory access
      slots per core (work conserving), Eq. (8).
    * ``TDMA`` -- time division multiple access with ``slot_size`` slots per
      core per cycle of length ``num_cores * slot_size`` (non-work
      conserving), Eq. (9).
    * ``PERFECT`` -- an idealised contention-free bus used as an upper bound
      on achievable schedulability ("perfect bus" line in Fig. 2).
    """

    FP = "fp"
    RR = "rr"
    TDMA = "tdma"
    PERFECT = "perfect"

    @property
    def is_work_conserving(self) -> bool:
        """Whether the arbiter never idles the bus while requests are pending."""
        return self in (BusPolicy.FP, BusPolicy.RR, BusPolicy.PERFECT)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a private direct-mapped instruction cache.

    The paper's default platform has 256 cache sets with 32-byte lines
    (8 KiB per core).  Since the cache is direct mapped, a memory block
    ``b`` (a line-sized, line-aligned chunk of the address space) maps to
    cache set ``b % num_sets``.

    Attributes:
        num_sets: number of cache sets (= number of lines for direct mapped).
        block_size: line size in bytes.
    """

    num_sets: int = 256
    block_size: int = 32

    def __post_init__(self) -> None:
        if self.num_sets <= 0:
            raise ModelError(f"num_sets must be positive, got {self.num_sets}")
        if self.block_size <= 0:
            raise ModelError(f"block_size must be positive, got {self.block_size}")
        if self.num_sets & (self.num_sets - 1):
            raise ModelError(
                f"num_sets must be a power of two, got {self.num_sets}"
            )
        if self.block_size & (self.block_size - 1):
            raise ModelError(
                f"block_size must be a power of two, got {self.block_size}"
            )

    @property
    def capacity_bytes(self) -> int:
        """Total cache capacity in bytes."""
        return self.num_sets * self.block_size

    def block_of_address(self, address: int) -> int:
        """Memory block index containing a byte ``address``."""
        if address < 0:
            raise ModelError(f"address must be non-negative, got {address}")
        return address // self.block_size

    def set_of_block(self, block: int) -> int:
        """Cache set a memory block maps to (direct mapped: ``block % S``)."""
        if block < 0:
            raise ModelError(f"block index must be non-negative, got {block}")
        return block % self.num_sets

    def set_of_address(self, address: int) -> int:
        """Cache set a byte address maps to."""
        return self.set_of_block(self.block_of_address(address))

    def with_num_sets(self, num_sets: int) -> "CacheGeometry":
        """Return a copy of this geometry with a different set count."""
        return replace(self, num_sets=num_sets)


@dataclass(frozen=True)
class Platform:
    """A multicore platform as described in Sec. II of the paper.

    Attributes:
        num_cores: number of identical cores (``m``); paper default 4.
        cache: geometry of each core's private L1 instruction cache.
        d_mem: worst-case duration of one main-memory access, in cycles;
            paper default 5 µs = 10 cycles.
        bus_policy: memory bus arbitration policy.
        slot_size: number of consecutive memory access slots per core for
            the RR and TDMA arbiters (``s`` in Eq. (8)/(9)); paper default 2.
            Ignored by the FP and perfect arbiters.
    """

    num_cores: int = 4
    cache: CacheGeometry = field(default_factory=CacheGeometry)
    d_mem: int = microseconds_to_cycles(5)
    bus_policy: BusPolicy = BusPolicy.FP
    slot_size: int = 2

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ModelError(f"num_cores must be positive, got {self.num_cores}")
        if self.d_mem <= 0:
            raise ModelError(f"d_mem must be positive, got {self.d_mem}")
        if self.slot_size <= 0:
            raise ModelError(f"slot_size must be positive, got {self.slot_size}")
        if not isinstance(self.bus_policy, BusPolicy):
            raise ModelError(f"bus_policy must be a BusPolicy, got {self.bus_policy!r}")

    @property
    def tdma_cycle_slots(self) -> int:
        """Length of one TDMA cycle in slots (``L * s`` with ``L = m``)."""
        return self.num_cores * self.slot_size

    @property
    def cores(self) -> range:
        """Iterable of core identifiers ``0 .. m-1``."""
        return range(self.num_cores)

    def with_bus_policy(self, policy: BusPolicy) -> "Platform":
        """Return a copy of this platform with a different bus arbiter."""
        return replace(self, bus_policy=policy)

    def with_d_mem(self, d_mem: int) -> "Platform":
        """Return a copy of this platform with a different memory latency."""
        return replace(self, d_mem=d_mem)

    def with_num_cores(self, num_cores: int) -> "Platform":
        """Return a copy of this platform with a different core count."""
        return replace(self, num_cores=num_cores)

    def with_slot_size(self, slot_size: int) -> "Platform":
        """Return a copy of this platform with a different RR/TDMA slot size."""
        return replace(self, slot_size=slot_size)

    def with_cache(self, cache: CacheGeometry) -> "Platform":
        """Return a copy of this platform with a different cache geometry."""
        return replace(self, cache=cache)
