"""Packed-bitmask interference table over ECB/UCB/PCB cache-block sets.

Every cardinality the analysis evaluates — the CPRO union bound of
Eq. (14), the ECB-union CRPD of Eq. (2), the per-pair reload costs of the
multiset refinement — is at bottom ``|A ∩ (B_1 ∪ ... ∪ B_k)|`` over sets of
*cache set indices*.  Python ``frozenset`` algebra evaluates these with
per-element hashing; the classic trick of the CRPD tooling lineage
(Altmeyer & Davis's ECB/UCB analyses) is to pack each block set into an
integer bitmask — bit ``b`` set iff cache set ``b`` is touched — so an
intersection cardinality becomes one ``&`` plus one popcount
(``int.bit_count()``), and a union over a task group becomes a fold of
``|``.  Python's arbitrary-precision integers make this exact for any
cache size: indices beyond 63 simply spill into further limbs of the same
integer, so nothing special happens at the 64-bit word boundary.

:class:`InterferenceTable` is the per-task-set compilation of that idea:

* per-task ``ecb``/``ucb``/``pcb`` masks (and their popcounts),
* the per-(priority, core) union masks the bounds keep re-folding
  (:meth:`hep_ecb_mask` — the evicting union of Eq. 2/14),
* the pairwise eviction masks behind the CPRO bounds
  (:meth:`evicting_ecb_mask`, :meth:`core_ecb_mask_excluding`).

The table is a pure function of the (immutable) task set, so it is built
at most once per task set (shared via :meth:`~repro.model.task.TaskSet.
derived`) and reused by every analysis run, variant and calculator; the
build is counted by the ``bitset_table_builds`` perf counter.  The
set-based implementations in :mod:`repro.persistence.cpro`,
:mod:`repro.crpd.approaches` and :mod:`repro.crpd.multiset` are retained
as the reference path (``AnalysisConfig(bitset_kernel=False)``); the
``bitset-identity`` oracle of :mod:`repro.verify.oracles` proves the two
kernels bit-identical on every fuzz case and corpus entry.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.errors import ModelError
from repro.model.task import Task, TaskSet


def blocks_to_mask(blocks: Iterable[int]) -> int:
    """Pack a set of cache-set indices into an integer bitmask.

    Bit ``b`` of the result is set iff ``b`` is in ``blocks``.  Arbitrary
    indices are supported (Python integers have no word-size limit);
    negative indices are rejected — a cache set index is a non-negative
    position in the cache.
    """
    mask = 0
    for block in blocks:
        if block < 0:
            raise ModelError(
                f"cache set indices must be non-negative, got {block}"
            )
        mask |= 1 << block
    return mask


def mask_to_blocks(mask: int) -> FrozenSet[int]:
    """Inverse of :func:`blocks_to_mask` (testing / debugging aid)."""
    blocks = []
    index = 0
    while mask:
        if mask & 1:
            blocks.append(index)
        mask >>= 1
        index += 1
    return frozenset(blocks)


class InterferenceTable:
    """Precompiled bitmask views of one task set's cache-block sets.

    All task-indexed lookups are keyed by *priority* (unique per task set,
    exactly like the calculators' pair caches).  Union masks are computed
    lazily and cached: the WCRT fixed point asks for the same
    (priority, core) unions for every pair, so each is folded once.
    """

    def __init__(self, taskset: TaskSet):
        self._taskset = taskset
        self.ecb_mask: Dict[int, int] = {}
        self.ucb_mask: Dict[int, int] = {}
        self.pcb_mask: Dict[int, int] = {}
        self.pcb_count: Dict[int, int] = {}
        for task in taskset:
            key = task.priority
            self.ecb_mask[key] = blocks_to_mask(task.ecbs)
            self.ucb_mask[key] = blocks_to_mask(task.ucbs)
            self.pcb_mask[key] = blocks_to_mask(task.pcbs)
            self.pcb_count[key] = len(task.pcbs)
        self._hep_ecb_cache: Dict[Tuple[int, int], int] = {}
        self._evicting_cache: Dict[Tuple[int, int, int], int] = {}
        self._core_excl_cache: Dict[Tuple[int, int], int] = {}

    @classmethod
    def shared(
        cls, taskset: TaskSet, perf: Optional[object] = None
    ) -> "InterferenceTable":
        """The task set's shared table, built at most once.

        ``perf`` (a :class:`repro.perf.PerfCounters`) has its
        ``bitset_table_builds`` counter bumped only when this call actually
        constructs the table — cache hits are free and uncounted.
        """

        def build() -> "InterferenceTable":
            if perf is not None:
                perf.bitset_table_builds += 1
            return cls(taskset)

        return taskset.derived("interference-table", build)

    def union_ecb_mask(self, tasks: Iterable[Task]) -> int:
        """Fold of the ECB masks of ``tasks`` (uncached building block)."""
        mask = 0
        ecb = self.ecb_mask
        for task in tasks:
            mask |= ecb[task.priority]
        return mask

    def hep_ecb_mask(self, task: Task, core: int) -> int:
        """Bitmask form of :meth:`~repro.model.task.TaskSet.hep_ecb_union`.

        :math:`\\bigcup_{h \\in \\Gamma_{core} \\cap hep(task)} ECB_h` — the
        evicting union of the ECB-union CRPD bound (Eq. 2) and its multiset
        refinement.
        """
        key = (task.priority, core)
        mask = self._hep_ecb_cache.get(key)
        if mask is None:
            mask = self.union_ecb_mask(self._taskset.hep_on_core(task, core))
            self._hep_ecb_cache[key] = mask
        return mask

    def evicting_ecb_mask(self, task_j: Task, task_i: Task) -> int:
        """CPRO eviction mask of Eq. (14): ECBs of the tasks that can run
        between two jobs of ``task_j`` inside ``task_i``'s busy window —
        same-core tasks of priority :math:`\\geq` ``task_i``'s, minus
        ``task_j`` itself.
        """
        core = task_j.core
        key = (task_j.priority, task_i.priority, core)
        mask = self._evicting_cache.get(key)
        if mask is None:
            mask = self.union_ecb_mask(
                t
                for t in self._taskset.hep_on_core(task_i, core)
                if t is not task_j
            )
            self._evicting_cache[key] = mask
        return mask

    def core_ecb_mask_excluding(self, task_j: Task) -> int:
        """ECB union of every *other* task on ``task_j``'s core.

        The coarse eviction mask of the global CPRO ablation variant
        (:func:`repro.persistence.cpro.cpro_eviction_count_global`).
        """
        core = task_j.core
        key = (task_j.priority, core)
        mask = self._core_excl_cache.get(key)
        if mask is None:
            mask = self.union_ecb_mask(
                t for t in self._taskset.on_core(core) if t is not task_j
            )
            self._core_excl_cache[key] = mask
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InterferenceTable({len(self.ecb_mask)} tasks)"
