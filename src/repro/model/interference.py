"""Packed-bitmask interference table over ECB/UCB/PCB cache-block sets.

Every cardinality the analysis evaluates — the CPRO union bound of
Eq. (14), the ECB-union CRPD of Eq. (2), the per-pair reload costs of the
multiset refinement — is at bottom ``|A ∩ (B_1 ∪ ... ∪ B_k)|`` over sets of
*cache set indices*.  Python ``frozenset`` algebra evaluates these with
per-element hashing; the classic trick of the CRPD tooling lineage
(Altmeyer & Davis's ECB/UCB analyses) is to pack each block set into an
integer bitmask — bit ``b`` set iff cache set ``b`` is touched — so an
intersection cardinality becomes one ``&`` plus one popcount
(``int.bit_count()``), and a union over a task group becomes a fold of
``|``.  Python's arbitrary-precision integers make this exact for any
cache size: indices beyond 63 simply spill into further limbs of the same
integer, so nothing special happens at the 64-bit word boundary.

:class:`InterferenceTable` is the per-task-set compilation of that idea:

* per-task ``ecb``/``ucb``/``pcb`` masks (and their popcounts),
* the per-(priority, core) union masks the bounds keep re-folding
  (:meth:`hep_ecb_mask` — the evicting union of Eq. 2/14),
* the pairwise eviction masks behind the CPRO bounds
  (:meth:`evicting_ecb_mask`, :meth:`core_ecb_mask_excluding`).

The table is a pure function of the (immutable) task set, so it is built
at most once per task set (shared via :meth:`~repro.model.task.TaskSet.
derived`) and reused by every analysis run, variant and calculator; the
build is counted by the ``bitset_table_builds`` perf counter.  The
set-based implementations in :mod:`repro.persistence.cpro`,
:mod:`repro.crpd.approaches` and :mod:`repro.crpd.multiset` are retained
as the reference path (``AnalysisConfig(bitset_kernel=False)``); the
``bitset-identity`` oracle of :mod:`repro.verify.oracles` proves the two
kernels bit-identical on every fuzz case and corpus entry.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.model.task import Task, TaskSet

try:  # Optional acceleration only — never a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the import-block tests
    _np = None


def blocks_to_mask(blocks: Iterable[int]) -> int:
    """Pack a set of cache-set indices into an integer bitmask.

    Bit ``b`` of the result is set iff ``b`` is in ``blocks``.  Arbitrary
    indices are supported (Python integers have no word-size limit);
    negative indices are rejected — a cache set index is a non-negative
    position in the cache.
    """
    mask = 0
    for block in blocks:
        if block < 0:
            raise ModelError(
                f"cache set indices must be non-negative, got {block}"
            )
        mask |= 1 << block
    return mask


def mask_to_blocks(mask: int) -> FrozenSet[int]:
    """Inverse of :func:`blocks_to_mask` (testing / debugging aid)."""
    blocks = []
    index = 0
    while mask:
        if mask & 1:
            blocks.append(index)
        mask >>= 1
        index += 1
    return frozenset(blocks)


class InterferenceTable:
    """Precompiled bitmask views of one task set's cache-block sets.

    All task-indexed lookups are keyed by *priority* (unique per task set,
    exactly like the calculators' pair caches).  Union masks are computed
    lazily and cached: the WCRT fixed point asks for the same
    (priority, core) unions for every pair, so each is folded once.
    """

    def __init__(self, taskset: TaskSet):
        self._taskset = taskset
        self.ecb_mask: Dict[int, int] = {}
        self.ucb_mask: Dict[int, int] = {}
        self.pcb_mask: Dict[int, int] = {}
        self.pcb_count: Dict[int, int] = {}
        for task in taskset:
            key = task.priority
            self.ecb_mask[key] = blocks_to_mask(task.ecbs)
            self.ucb_mask[key] = blocks_to_mask(task.ucbs)
            self.pcb_mask[key] = blocks_to_mask(task.pcbs)
            self.pcb_count[key] = len(task.pcbs)
        self._hep_ecb_cache: Dict[Tuple[int, int], int] = {}
        self._evicting_cache: Dict[Tuple[int, int, int], int] = {}
        self._core_excl_cache: Dict[Tuple[int, int], int] = {}

    @classmethod
    def shared(
        cls, taskset: TaskSet, perf: Optional[object] = None
    ) -> "InterferenceTable":
        """The task set's shared table, built at most once.

        ``perf`` (a :class:`repro.perf.PerfCounters`) has its
        ``bitset_table_builds`` counter bumped only when this call actually
        constructs the table — cache hits are free and uncounted.
        """

        def build() -> "InterferenceTable":
            if perf is not None:
                perf.bitset_table_builds += 1
            return cls(taskset)

        return taskset.derived("interference-table", build)

    def union_ecb_mask(self, tasks: Iterable[Task]) -> int:
        """Fold of the ECB masks of ``tasks`` (uncached building block)."""
        mask = 0
        ecb = self.ecb_mask
        for task in tasks:
            mask |= ecb[task.priority]
        return mask

    def hep_ecb_mask(self, task: Task, core: int) -> int:
        """Bitmask form of :meth:`~repro.model.task.TaskSet.hep_ecb_union`.

        :math:`\\bigcup_{h \\in \\Gamma_{core} \\cap hep(task)} ECB_h` — the
        evicting union of the ECB-union CRPD bound (Eq. 2) and its multiset
        refinement.
        """
        key = (task.priority, core)
        mask = self._hep_ecb_cache.get(key)
        if mask is None:
            mask = self.union_ecb_mask(self._taskset.hep_on_core(task, core))
            self._hep_ecb_cache[key] = mask
        return mask

    def evicting_ecb_mask(self, task_j: Task, task_i: Task) -> int:
        """CPRO eviction mask of Eq. (14): ECBs of the tasks that can run
        between two jobs of ``task_j`` inside ``task_i``'s busy window —
        same-core tasks of priority :math:`\\geq` ``task_i``'s, minus
        ``task_j`` itself.
        """
        core = task_j.core
        key = (task_j.priority, task_i.priority, core)
        mask = self._evicting_cache.get(key)
        if mask is None:
            mask = self.union_ecb_mask(
                t
                for t in self._taskset.hep_on_core(task_i, core)
                if t is not task_j
            )
            self._evicting_cache[key] = mask
        return mask

    def core_ecb_mask_excluding(self, task_j: Task) -> int:
        """ECB union of every *other* task on ``task_j``'s core.

        The coarse eviction mask of the global CPRO ablation variant
        (:func:`repro.persistence.cpro.cpro_eviction_count_global`).
        """
        core = task_j.core
        key = (task_j.priority, core)
        mask = self._core_excl_cache.get(key)
        if mask is None:
            mask = self.union_ecb_mask(
                t for t in self._taskset.on_core(core) if t is not task_j
            )
            self._core_excl_cache[key] = mask
        return mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InterferenceTable({len(self.ecb_mask)} tasks)"


# -- batched sweep-point kernel ---------------------------------------------


def _array_popcounts_available() -> bool:
    """Whether the vectorised uint64 popcount backend can run at all."""
    return _np is not None and hasattr(_np, "bitwise_count")


_ARRAY_KERNEL_WARNED = False


def note_array_kernel_unavailable(perf: Optional[object] = None) -> None:
    """Record that a vectorised kernel was requested without numpy.

    ``AnalysisConfig(array_kernel=True)`` / ``lockstep_kernel=True`` are on
    by default, but the numpy backend behind them is an optional extra
    (``pip install .[fast]``).  The pure-Python fallbacks are bit-identical,
    so silently falling back would be *correct* — and would just as
    silently forfeit the speedup the caller asked for.  This hook makes the
    fallback observable instead: the first occurrence per process emits a
    ``RuntimeWarning`` and every occurrence bumps the
    ``array_kernel_unavailable`` perf counter (merged across sweep workers
    like every other counter, so ``--profile`` and the daemon's ``/stats``
    show fleet-wide totals).
    """
    global _ARRAY_KERNEL_WARNED
    if perf is not None:
        perf.array_kernel_unavailable += 1
    if not _ARRAY_KERNEL_WARNED:
        _ARRAY_KERNEL_WARNED = True
        import warnings

        warnings.warn(
            "array/lockstep kernel requested but numpy is not importable; "
            "running the bit-identical pure-Python fallback (install the "
            "optional extra: pip install '.[fast]' for the vectorised "
            "backend)",
            RuntimeWarning,
            stacklevel=3,
        )


class _PopcountBatch:
    """Flat buffer of AND-mask popcount jobs spanning a whole batch.

    Jobs are appended while the per-task-set compilation walks its running
    unions; :meth:`resolve` then evaluates every popcount in one pass —
    vectorised through numpy's ``uint64`` ``bitwise_count`` when available
    and every mask fits one machine word, a tight ``int.bit_count()`` loop
    otherwise.  Both backends are exact integer popcounts, so the choice is
    invisible in the results.
    """

    def __init__(self) -> None:
        self.masks: List[int] = []
        self._union = 0

    def add(self, mask: int) -> int:
        """Queue one popcount job; returns its index in the flat buffer."""
        self.masks.append(mask)
        self._union |= mask
        return len(self.masks) - 1

    @property
    def fits_uint64(self) -> bool:
        return (self._union >> 64) == 0

    def resolve(self, arrays: bool) -> Tuple[List[int], bool]:
        """All queued popcounts, plus whether the array backend ran."""
        if (
            arrays
            and self.masks
            and self.fits_uint64
            and _array_popcounts_available()
        ):
            flat = _np.array(self.masks, dtype=_np.uint64)
            return _np.bitwise_count(flat).tolist(), True
        return [mask.bit_count() for mask in self.masks], False


class BatchInterferenceTable:
    """Batch compilation of per-pair CRPD/CPRO tables across task sets.

    One sweep point analyses hundreds of task sets under the same platform
    and analysis configuration; each analysis keeps re-deriving the same
    kinds of per-pair quantities — hep/evicting/core-excluding ECB union
    masks and the CRPD (:math:`\\gamma`, Eq. 2) and CPRO (Eq. 14)
    cardinalities — through lazy per-lookup folds.  This class compiles
    them for a whole batch in three flat passes:

    1. *union masks*: one running-OR walk per (core, task set) fills every
       ``(priority, core)`` hep union (and the evicting/core-excluding
       variants) in O(tasks x cores) — no per-pair refolds;
    2. *popcounts*: every ``|A ∩ B|`` the pair tables need is queued as a
       single AND mask in a :class:`_PopcountBatch` and evaluated in one
       pass over the whole batch (numpy-vectorised for <= 64-set
       platforms when the optional ``fast`` extra is installed);
    3. *tables*: the per-pair values are derived from the flat counts with
       running maxima (CRPD bands) and scattered into the shared
       :class:`~repro.crpd.approaches.CrpdCalculator` /
       :class:`~repro.persistence.cpro.CproCalculator` caches, which the
       fixed point then hits without ever taking a lazy miss.

    Every value equals what the lazy bitset kernel would have computed, so
    the batch is invisible in the results — pinned by the
    ``batch-identity`` oracle and ``TestBatchKernelIsInvisible``.
    """

    def __init__(
        self,
        tasksets: Sequence[TaskSet],
        crpd_approach,
        cpro_approach,
        perf: Optional[object] = None,
        arrays: bool = True,
    ):
        self.tasksets = tuple(tasksets)
        self.crpd_approach = crpd_approach
        self.cpro_approach = cpro_approach
        self.used_arrays = False
        #: Per-task-set pair tables, keyed exactly like the calculators'
        #: caches: gamma by (priority_i, priority_j), CPRO eviction counts
        #: by (priority_j, priority_i).
        self.gamma_tables: List[Dict[Tuple[int, int], int]] = []
        self.cpro_tables: List[Dict[Tuple[int, int], int]] = []
        self._compile(perf, arrays)

    # The approach enums live above this module in the dependency graph
    # (their modules import InterferenceTable), so they are matched by name.
    _CRPD_BAND_MAX = ("ECB_UNION", "ECB_UNION_MULTISET", "UCB_ONLY")
    _CPRO_UNION = ("UNION", "MULTISET")

    def _compile(self, perf: Optional[object], arrays: bool) -> None:
        crpd = getattr(self.crpd_approach, "name", None)
        cpro = getattr(self.cpro_approach, "name", None)
        batch = _PopcountBatch()
        plans = []
        for taskset in self.tasksets:
            plans.append(self._plan(taskset, crpd, cpro, batch, perf))
        counts, self.used_arrays = batch.resolve(arrays)
        if arrays and _np is None:
            # The caller asked for the vectorised backend but the optional
            # ``.[fast]`` extra is absent: fall back loudly, not silently.
            note_array_kernel_unavailable(perf)
        for plan in plans:
            gamma, evictions = self._scatter(plan, crpd, cpro, counts)
            self.gamma_tables.append(gamma)
            self.cpro_tables.append(evictions)
        if perf is not None:
            perf.batch_analyses += len(self.tasksets)
            if self.used_arrays:
                perf.array_kernel_batches += 1

    def _plan(self, taskset, crpd, cpro, batch, perf):
        """Pass 1+2: running unions and popcount-job collection."""
        table = InterferenceTable.shared(taskset, perf)
        tasks = sorted(taskset, key=lambda t: t.priority)
        cores = sorted({t.core for t in tasks})
        on_core = {c: [t for t in tasks if t.core == c] for c in cores}
        ecb, ucb, pcb = table.ecb_mask, table.ucb_mask, table.pcb_mask

        # Running-OR hep unions for every (priority, core) pair.
        for core in cores:
            acc = 0
            for task in tasks:
                if task.core == core:
                    acc |= ecb[task.priority]
                table._hep_ecb_cache[(task.priority, core)] = acc

        crpd_rows = []  # (pri_j, core, [(pri_g, job_index), ...])
        if crpd in self._CRPD_BAND_MAX:
            for core in cores:
                for task_j in on_core[core]:
                    hep_j = table._hep_ecb_cache[(task_j.priority, core)]
                    jobs = []
                    for task_g in on_core[core]:
                        if crpd == "UCB_ONLY":
                            mask = ucb[task_g.priority]
                        else:
                            mask = ucb[task_g.priority] & hep_j
                        jobs.append((task_g.priority, batch.add(mask)))
                    crpd_rows.append((task_j.priority, core, jobs))
        elif crpd == "ECB_ONLY":
            for core in cores:
                for task_j in on_core[core]:
                    crpd_rows.append(
                        (
                            task_j.priority,
                            core,
                            [(task_j.priority, batch.add(ecb[task_j.priority]))],
                        )
                    )

        cpro_rows = []  # (pri_j, [(pri_i, job_index), ...])
        if cpro in self._CPRO_UNION:
            for core in cores:
                for task_j in on_core[core]:
                    acc = 0
                    pcb_j = pcb[task_j.priority]
                    jobs = []
                    # The running union only grows at same-core tasks, so
                    # one popcount job per distinct union state covers the
                    # whole run of other-core tasks that shares it.  The
                    # union masks themselves are not recorded anywhere:
                    # ``install`` hands the finished *counts* to the
                    # calculators, and the lazy per-mask cache refills on
                    # demand for whatever the batch did not cover.
                    index = batch.add(0)
                    for task_i in tasks:
                        if task_i.core == core and task_i is not task_j:
                            acc |= ecb[task_i.priority]
                            index = batch.add(pcb_j & acc)
                        jobs.append((task_i.priority, index))
                    cpro_rows.append((task_j.priority, jobs))
        elif cpro == "GLOBAL":
            for core in cores:
                for task_j in on_core[core]:
                    acc = 0
                    for other in on_core[core]:
                        if other is not task_j:
                            acc |= ecb[other.priority]
                    table._core_excl_cache[(task_j.priority, core)] = acc
                    jobs = [
                        (task_i.priority, batch.add(pcb[task_j.priority] & acc))
                        for task_i in tasks
                    ]
                    cpro_rows.append((task_j.priority, jobs))

        priorities = [t.priority for t in tasks]
        return (priorities, on_core, crpd_rows, cpro_rows)

    def _scatter(self, plan, crpd, cpro, counts):
        """Pass 3: derive the pair tables from the flat popcounts."""
        priorities, on_core, crpd_rows, cpro_rows = plan
        gamma: Dict[Tuple[int, int], int] = {}
        if crpd in self._CRPD_BAND_MAX:
            for pri_j, core, jobs in crpd_rows:
                # Band maximum gamma(i, j) = max C[g] over same-core g with
                # pri_j < pri_g <= pri_i, walked once in priority order.
                cursor = 0
                running = 0
                for pri_i in priorities:
                    while cursor < len(jobs) and jobs[cursor][0] <= pri_i:
                        pri_g, index = jobs[cursor]
                        if pri_g > pri_j:
                            running = max(running, counts[index])
                        cursor += 1
                    gamma[(pri_i, pri_j)] = running if pri_i > pri_j else 0
        elif crpd == "ECB_ONLY":
            for pri_j, core, jobs in crpd_rows:
                ecb_count = counts[jobs[0][1]]
                band = sorted(t.priority for t in on_core[core])
                cursor = 0
                affected = 0
                for pri_i in priorities:
                    while cursor < len(band) and band[cursor] <= pri_i:
                        if band[cursor] > pri_j:
                            affected += 1
                        cursor += 1
                    gamma[(pri_i, pri_j)] = (
                        ecb_count if pri_i > pri_j and affected else 0
                    )
        # The NONE approaches are left to their (constant-zero) lazy path.

        evictions: Dict[Tuple[int, int], int] = {}
        if cpro in self._CPRO_UNION or cpro == "GLOBAL":
            for pri_j, jobs in cpro_rows:
                for pri_i, index in jobs:
                    evictions[(pri_j, pri_i)] = counts[index]
        return gamma, evictions

    def install(self, perf: Optional[object] = None) -> None:
        """Scatter the compiled tables into the shared pair caches.

        Imported lazily: the calculator modules sit above this one in the
        dependency graph.  Only the bitset-kernel calculators are filled —
        the reference kernel must keep taking genuinely independent lazy
        paths for the differential oracles to mean anything.
        """
        from repro.crpd.approaches import CrpdCalculator
        from repro.persistence.cpro import CproCalculator

        for taskset, gamma, evictions in zip(
            self.tasksets, self.gamma_tables, self.cpro_tables
        ):
            if gamma:
                CrpdCalculator.shared(
                    taskset, self.crpd_approach, bitset=True
                ).prefill_pairs(gamma)
            if evictions:
                CproCalculator.shared(
                    taskset, self.cpro_approach, bitset=True
                ).prefill_pairs(evictions)


def prefill_batch(
    tasksets: Sequence[TaskSet],
    crpd_approach,
    cpro_approach,
    perf: Optional[object] = None,
    arrays: bool = True,
) -> Optional[BatchInterferenceTable]:
    """Batch-compile and install the pair tables for ``tasksets``.

    Idempotent per (task set, approach pair): already-compiled task sets
    are skipped via a marker in the task set's derived store, so calling
    this once per sweep point and again inside every
    :func:`~repro.analysis.wcrt.analyze_taskset` costs one dict probe.
    Returns the compiled batch (``None`` when everything was already
    done).
    """
    fresh = []
    for taskset in tasksets:
        marker = taskset.derived(
            ("batch-prefill", crpd_approach, cpro_approach), dict
        )
        if not marker:
            marker["done"] = True
            fresh.append(taskset)
    if not fresh:
        return None
    batch = BatchInterferenceTable(
        fresh, crpd_approach, cpro_approach, perf=perf, arrays=arrays
    )
    batch.install(perf)
    return batch
