"""ECB-Union *Multiset* CRPD bound (Altmeyer, Davis, Maiza, RTS 2012).

The per-job ECB-union bound of Eq. (2) charges *every* job of the
preempting task :math:`\\tau_j` with the worst affected task's reload cost.
The multiset refinement observes that an intermediate task :math:`\\tau_g`
can only be preempted by :math:`\\tau_j` as often as :math:`\\tau_g`
actually executes inside the analysed window, and each of its jobs at most
:math:`E_j(R_g)` times.  Formally, the total CRPD charged to
:math:`\\tau_j`'s jobs inside a window of length :math:`t` is the sum of
the :math:`E_j(t)` largest elements of the multiset

.. math::

    M_{i,j}(t) = \\biguplus_{g \\in \\Gamma_x \\cap aff(i,j)}
        \\Big\\{ \\underbrace{c_g, \\dots, c_g}_{E_j(R_g) \\cdot E_g(t)} \\Big\\},
    \\qquad
    c_g = \\Big| UCB_g \\cap \\bigcup_{h \\in \\Gamma_x \\cap hep(j)} ECB_h \\Big|

where :math:`R_g` is :math:`\\tau_g`'s current response-time estimate.
Because the multiset may contain fewer than :math:`E_j(t)` elements, the
bound can fall well below :math:`E_j(t) \\cdot \\gamma_{i,j,x}` — it never
exceeds it.

This is an *extension* beyond the DATE 2020 paper (which fixes the plain
ECB-union approach); it plugs into the same-core bound :math:`BAS` when
:class:`~repro.crpd.approaches.CrpdApproach.ECB_UNION_MULTISET` is
selected.  Remote-core terms keep per-job ECB-union CRPD (the multiset
construction has no published remote-window counterpart).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List

from repro.model.task import Task, TaskSet


def _ceil_div(numerator: int, denominator: int) -> int:
    return -((-numerator) // denominator)


def ecb_union_multiset_window(
    taskset: TaskSet,
    task_i: Task,
    task_j: Task,
    window: int,
    response_time_of: Callable[[Task], int],
) -> int:
    """Total CRPD accesses charged to ``task_j``'s jobs in ``window``.

    Args:
        taskset: the task set under analysis.
        task_i: the task whose busy window is analysed (on ``task_j.core``).
        task_j: the (higher-priority) preempting task.
        window: window length in cycles.
        response_time_of: current WCRT estimate accessor (the outer loop's
            estimates; monotonically refined exactly like Eq. 5/6 uses
            :math:`R_l`).
    """
    if window <= 0:
        return 0
    core = task_j.core
    affected = [t for t in taskset.aff(task_i, task_j) if t.core == core]
    if not affected:
        return 0
    evicting: FrozenSet[int] = frozenset().union(
        *(t.ecbs for t in taskset.hep_on_core(task_j, core))
    )
    preemptions_budget = _ceil_div(window, int(task_j.period))

    # Gather per-affected-task (cost, multiplicity) pairs; summing the
    # E_j(t) largest multiset elements then reduces to a greedy take from
    # the pairs in decreasing cost order.
    pairs: List[tuple] = []
    for task_g in affected:
        cost = len(task_g.ucbs & evicting)
        if cost == 0:
            continue
        jobs_of_g = _ceil_div(window, int(task_g.period))
        preemptions_per_job = _ceil_div(
            response_time_of(task_g), int(task_j.period)
        )
        multiplicity = jobs_of_g * preemptions_per_job
        if multiplicity > 0:
            pairs.append((cost, multiplicity))
    pairs.sort(reverse=True)

    total = 0
    remaining = preemptions_budget
    for cost, multiplicity in pairs:
        if remaining <= 0:
            break
        take = min(remaining, multiplicity)
        total += take * cost
        remaining -= take
    return total
