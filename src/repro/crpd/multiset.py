"""ECB-Union *Multiset* CRPD bound (Altmeyer, Davis, Maiza, RTS 2012).

The per-job ECB-union bound of Eq. (2) charges *every* job of the
preempting task :math:`\\tau_j` with the worst affected task's reload cost.
The multiset refinement observes that an intermediate task :math:`\\tau_g`
can only be preempted by :math:`\\tau_j` as often as :math:`\\tau_g`
actually executes inside the analysed window, and each of its jobs at most
:math:`E_j(R_g)` times.  Formally, the total CRPD charged to
:math:`\\tau_j`'s jobs inside a window of length :math:`t` is the sum of
the :math:`E_j(t)` largest elements of the multiset

.. math::

    M_{i,j}(t) = \\biguplus_{g \\in \\Gamma_x \\cap aff(i,j)}
        \\Big\\{ \\underbrace{c_g, \\dots, c_g}_{E_j(R_g) \\cdot E_g(t)} \\Big\\},
    \\qquad
    c_g = \\Big| UCB_g \\cap \\bigcup_{h \\in \\Gamma_x \\cap hep(j)} ECB_h \\Big|

where :math:`R_g` is :math:`\\tau_g`'s current response-time estimate.
Because the multiset may contain fewer than :math:`E_j(t)` elements, the
bound can fall well below :math:`E_j(t) \\cdot \\gamma_{i,j,x}` — it never
exceeds it.

This is an *extension* beyond the DATE 2020 paper (which fixes the plain
ECB-union approach); it plugs into the same-core bound :math:`BAS` when
:class:`~repro.crpd.approaches.CrpdApproach.ECB_UNION_MULTISET` is
selected.  Remote-core terms keep per-job ECB-union CRPD (the multiset
construction has no published remote-window counterpart).

Performance note: because :math:`M_{i,j}(t)` reads the response-time
estimates :math:`R_g` of *same-core* tasks, this approach is **not**
window oblivious — a task's Eq. (19) right-hand side depends on its
neighbours' (and its own) current estimates, not just on remote cores.
The analysis therefore excludes multiset runs from the fused array-kernel
evaluator and from the outer loop's remote-epoch convergence shortcut
(see ``AnalysisContext.window_oblivious`` in
:mod:`repro.businterference.context`); they run on the per-term memoized
path, where the epoch-keyed caches track exactly these dependencies.
The exclusion is load-bearing: skipping a multiset task on "no remote
change" evidence can declare convergence at a non-fixed point (caught by
the fault-injection suite via the ``warm-start-identity`` oracle).
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.model.interference import InterferenceTable
from repro.model.task import Task, TaskSet

#: Static per-pair multiset data: ``(cost, period_g, task_g)`` triples for
#: every affected task with a nonzero reload cost, sorted by decreasing
#: cost so the greedy take below needs no per-call sort.
MultisetPairData = Tuple[Tuple[int, int, Task], ...]


def _ceil_div(numerator: int, denominator: int) -> int:
    return -((-numerator) // denominator)


def multiset_pair_data(
    taskset: TaskSet, task_i: Task, task_j: Task
) -> MultisetPairData:
    """Window-independent part of the multiset bound for one task pair.

    The per-affected-task reload cost :math:`c_g` and the periods entering
    the multiplicities depend only on the (static) task set, so they are
    extracted once per pair; :func:`multiset_window_from_pairs` then
    evaluates the window-dependent greedy sum from them.
    """
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return ()
    evicting = taskset.hep_ecb_union(task_j, core)
    entries = [
        (cost, int(task_g.period), task_g)
        for task_g in affected
        if (cost := len(task_g.ucbs & evicting)) > 0
    ]
    entries.sort(key=lambda entry: entry[0], reverse=True)
    return tuple(entries)


def multiset_pair_data_bitset(
    table: InterferenceTable, taskset: TaskSet, task_i: Task, task_j: Task
) -> MultisetPairData:
    """Bitmask form of :func:`multiset_pair_data`.

    The per-affected-task reload cost :math:`c_g` is one AND+popcount of
    the cached UCB mask against the (priority, core)-cached evicting ECB
    union.  Entry order matches the reference builder exactly: affected
    tasks are enumerated in the same (priority) order and the sort is
    stable, so ties resolve identically.
    """
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return ()
    evicting = table.hep_ecb_mask(task_j, core)
    ucb = table.ucb_mask
    entries = [
        (cost, int(task_g.period), task_g)
        for task_g in affected
        if (cost := (ucb[task_g.priority] & evicting).bit_count()) > 0
    ]
    entries.sort(key=lambda entry: entry[0], reverse=True)
    return tuple(entries)


def multiset_window_from_pairs(
    entries: MultisetPairData,
    period_j: int,
    window: int,
    response_time_of: Callable[[Task], int],
) -> int:
    """Greedy evaluation of the multiset bound from precomputed pair data.

    Sums the :math:`E_j(t)` largest multiset elements: walk the per-task
    costs in decreasing order, each available with multiplicity
    :math:`E_j(R_g) \\cdot E_g(t)`, until the preemption budget is spent.
    """
    if window <= 0 or not entries:
        return 0
    remaining = _ceil_div(window, period_j)
    total = 0
    for cost, period_g, task_g in entries:
        if remaining <= 0:
            break
        multiplicity = _ceil_div(window, period_g) * _ceil_div(
            response_time_of(task_g), period_j
        )
        if multiplicity <= 0:
            continue
        take = min(remaining, multiplicity)
        total += take * cost
        remaining -= take
    return total


def ecb_union_multiset_window(
    taskset: TaskSet,
    task_i: Task,
    task_j: Task,
    window: int,
    response_time_of: Callable[[Task], int],
) -> int:
    """Total CRPD accesses charged to ``task_j``'s jobs in ``window``.

    Args:
        taskset: the task set under analysis.
        task_i: the task whose busy window is analysed (on ``task_j.core``).
        task_j: the (higher-priority) preempting task.
        window: window length in cycles.
        response_time_of: current WCRT estimate accessor (the outer loop's
            estimates; monotonically refined exactly like Eq. 5/6 uses
            :math:`R_l`).
    """
    return multiset_window_from_pairs(
        multiset_pair_data(taskset, task_i, task_j),
        int(task_j.period),
        window,
        response_time_of,
    )
