"""Cache-related preemption delay (CRPD) bounds.

The paper charges each preemption of a lower-priority task :math:`\\tau_i` by
a higher-priority task :math:`\\tau_j` on the same core :math:`\\pi_x` with a
CRPD term :math:`\\gamma_{i,j,x}` measured in *additional main-memory
requests* (reloads of evicted useful cache blocks).  The paper uses the
**ECB-union** approach of Altmeyer, Davis and Maiza (RTSS 2011), Eq. (2):

.. math::

    \\gamma_{i,j,x} = \\max_{g \\in \\Gamma_x \\cap aff(i,j)}
        \\Big| UCB_g \\cap \\bigcup_{h \\in \\Gamma_x \\cap hep(j)} ECB_h \\Big|

Two classic coarser bounds are provided for ablation studies:

* **UCB-only** — ignore what the preempting task actually evicts and charge
  all useful blocks of any affected task: :math:`\\max_g |UCB_g|`.
* **ECB-only** — ignore usefulness and charge every block the preempting
  task touches: :math:`|ECB_j|`.

All three return *numbers of memory requests*; the response-time analysis
multiplies by ``d_mem`` where needed.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.budget import Budget
from repro.crpd.multiset import (
    multiset_pair_data,
    multiset_pair_data_bitset,
    multiset_window_from_pairs,
)
from repro.model.interference import InterferenceTable
from repro.model.task import Task, TaskSet


class CrpdApproach(enum.Enum):
    """Selectable CRPD bounding approach.

    ``ECB_UNION_MULTISET`` selects the window-level multiset refinement of
    :mod:`repro.crpd.multiset` for the same-core bound; per-job values
    (used by the remote-core terms of Eq. 3-6) fall back to plain
    ECB-union.
    """

    ECB_UNION = "ecb-union"
    ECB_UNION_MULTISET = "ecb-union-multiset"
    UCB_ONLY = "ucb-only"
    ECB_ONLY = "ecb-only"
    NONE = "none"


def crpd_ecb_union(taskset: TaskSet, task_i: Task, task_j: Task) -> int:
    """ECB-union CRPD bound :math:`\\gamma_{i,j,x}` of Eq. (2).

    ``task_j`` is the (higher-priority) preempting task and ``task_i`` the
    task whose busy window is analysed; both must live on the same core.
    Returns 0 when ``task_j`` cannot preempt anything relevant (empty
    ``aff(i, j)``).
    """
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    evicting: FrozenSet[int] = taskset.hep_ecb_union(task_j, core)
    return max(len(t.ucbs & evicting) for t in affected)


def crpd_ucb_only(taskset: TaskSet, task_i: Task, task_j: Task) -> int:
    """UCB-only CRPD bound: the largest UCB set of any affected task."""
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    return max(len(t.ucbs) for t in affected)


def crpd_ecb_only(taskset: TaskSet, task_i: Task, task_j: Task) -> int:
    """ECB-only CRPD bound: every block the preempting task may evict.

    Sound because a single preemption cannot force more reloads than the
    number of cache sets the preempting task touches.  When ``aff(i, j)`` is
    empty no preemption of interest exists and the bound is 0.
    """
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    return len(task_j.ecbs)


_APPROACHES: Dict[CrpdApproach, Callable[[TaskSet, Task, Task], int]] = {
    CrpdApproach.ECB_UNION: crpd_ecb_union,
    # Per-job fallback for the multiset refinement (see module docstring of
    # repro.crpd.multiset): remote-core terms use plain ECB-union values.
    CrpdApproach.ECB_UNION_MULTISET: crpd_ecb_union,
    CrpdApproach.UCB_ONLY: crpd_ucb_only,
    CrpdApproach.ECB_ONLY: crpd_ecb_only,
    CrpdApproach.NONE: lambda taskset, task_i, task_j: 0,
}


# -- bitmask kernel (AND + popcount over the interference table) ------------


def _crpd_ecb_union_bitset(
    table: InterferenceTable, taskset: TaskSet, task_i: Task, task_j: Task
) -> int:
    """Bitmask form of :func:`crpd_ecb_union` (Eq. 2)."""
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    evicting = table.hep_ecb_mask(task_j, core)
    ucb = table.ucb_mask
    return max((ucb[t.priority] & evicting).bit_count() for t in affected)


def _crpd_ucb_only_bitset(
    table: InterferenceTable, taskset: TaskSet, task_i: Task, task_j: Task
) -> int:
    """UCB-only bound from cached popcounts (no intersection needed)."""
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    ucb = table.ucb_mask
    return max(ucb[t.priority].bit_count() for t in affected)


def _crpd_ecb_only_bitset(
    table: InterferenceTable, taskset: TaskSet, task_i: Task, task_j: Task
) -> int:
    """ECB-only bound from the preempting task's mask popcount."""
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    return table.ecb_mask[task_j.priority].bit_count()


_BITSET_APPROACHES: Dict[
    CrpdApproach, Callable[[InterferenceTable, TaskSet, Task, Task], int]
] = {
    CrpdApproach.ECB_UNION: _crpd_ecb_union_bitset,
    CrpdApproach.ECB_UNION_MULTISET: _crpd_ecb_union_bitset,
    CrpdApproach.UCB_ONLY: _crpd_ucb_only_bitset,
    CrpdApproach.ECB_ONLY: _crpd_ecb_only_bitset,
    CrpdApproach.NONE: lambda table, taskset, task_i, task_j: 0,
}


class CrpdCalculator:
    """Memoising front-end over the CRPD approaches.

    The WCRT fixed point evaluates :math:`\\gamma_{i,j,x}` for the same task
    pairs at every iteration; the values only depend on the (static) task
    set, so they are computed once and cached.

    With ``bitset=True`` (the default) :math:`\\gamma` and the multiset
    pair data are evaluated from the task set's
    :class:`~repro.model.interference.InterferenceTable` as AND+popcount
    operations; ``bitset=False`` selects the retained ``frozenset``
    reference path (``bitset-identity`` oracle of :mod:`repro.verify`).
    """

    def __init__(
        self,
        taskset: TaskSet,
        approach: CrpdApproach = CrpdApproach.ECB_UNION,
        bitset: bool = True,
    ):
        self._taskset = taskset
        self._approach = approach
        self._bitset = bitset
        self._fn = _APPROACHES[approach]
        self._bitset_fn = _BITSET_APPROACHES[approach]
        self._table: Optional[InterferenceTable] = (
            InterferenceTable.shared(taskset) if bitset else None
        )
        self._cache: Dict[Tuple[int, int], int] = {}
        self._multiset_cache: Dict[Tuple[int, int], Tuple[int, tuple]] = {}

    @classmethod
    def shared(
        cls,
        taskset: TaskSet,
        approach: CrpdApproach = CrpdApproach.ECB_UNION,
        bitset: bool = True,
    ) -> "CrpdCalculator":
        """The task set's shared calculator for ``(approach, bitset)``.

        CRPD values are pure functions of the (immutable) task set, so one
        calculator per (task set, approach, kernel) triple serves every
        analysis run and keeps its pair cache warm across them.  The two
        kernels do not share caches, keeping the differential oracle's
        comparison independent.
        """
        return taskset.derived(
            ("crpd-calculator", approach, bitset),
            lambda: cls(taskset, approach, bitset),
        )

    @property
    def approach(self) -> CrpdApproach:
        """The CRPD approach this calculator applies."""
        return self._approach

    @property
    def bitset(self) -> bool:
        """Whether this calculator runs on the bitmask kernel."""
        return self._bitset

    def prefill_pairs(self, pairs: Dict[Tuple[int, int], int]) -> None:
        """Adopt batch-compiled gamma values, keyed ``(pri_i, pri_j)``.

        Fed by :class:`~repro.model.interference.BatchInterferenceTable`;
        every value equals what :meth:`gamma` would compute lazily, so
        adopting them only removes cache misses.  Lazily-computed entries
        already present are identical and simply retained.
        """
        for key, value in pairs.items():
            self._cache.setdefault(key, value)

    def gamma(self, task_i: Task, task_j: Task) -> int:
        """CRPD (in memory requests) charged per preemption by ``task_j``.

        ``task_i`` identifies the busy window under analysis (its priority
        bounds the set of affected tasks); ``task_j`` is the preempting task
        and determines the core.  Mirrors :math:`\\gamma_{i,j,x}` with
        :math:`x =` ``task_j.core``.
        """
        key = (task_i.priority, task_j.priority)
        if key not in self._cache:
            if self._table is not None:
                value = self._bitset_fn(self._table, self._taskset, task_i, task_j)
            else:
                value = self._fn(self._taskset, task_i, task_j)
            self._cache[key] = value
        return self._cache[key]

    def multiset_window(
        self,
        task_i: Task,
        task_j: Task,
        window: int,
        response_time_of: Callable[[Task], int],
        budget: Optional[Budget] = None,
    ) -> int:
        """Window-level multiset CRPD (see :mod:`repro.crpd.multiset`).

        The static per-pair data (reload costs, periods) is extracted once
        per (task_i, task_j) pair; only the window-dependent greedy sum runs
        per call.  ``budget`` adds one cooperative cancellation point per
        fold without affecting the computed value.
        """
        if budget is not None:
            budget.check()
        key = (task_i.priority, task_j.priority)
        data = self._multiset_cache.get(key)
        if data is None:
            if self._table is not None:
                entries = multiset_pair_data_bitset(
                    self._table, self._taskset, task_i, task_j
                )
            else:
                entries = multiset_pair_data(self._taskset, task_i, task_j)
            data = (int(task_j.period), entries)
            self._multiset_cache[key] = data
        period_j, entries = data
        return multiset_window_from_pairs(
            entries, period_j, window, response_time_of
        )
