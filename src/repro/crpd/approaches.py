"""Cache-related preemption delay (CRPD) bounds.

The paper charges each preemption of a lower-priority task :math:`\\tau_i` by
a higher-priority task :math:`\\tau_j` on the same core :math:`\\pi_x` with a
CRPD term :math:`\\gamma_{i,j,x}` measured in *additional main-memory
requests* (reloads of evicted useful cache blocks).  The paper uses the
**ECB-union** approach of Altmeyer, Davis and Maiza (RTSS 2011), Eq. (2):

.. math::

    \\gamma_{i,j,x} = \\max_{g \\in \\Gamma_x \\cap aff(i,j)}
        \\Big| UCB_g \\cap \\bigcup_{h \\in \\Gamma_x \\cap hep(j)} ECB_h \\Big|

Two classic coarser bounds are provided for ablation studies:

* **UCB-only** — ignore what the preempting task actually evicts and charge
  all useful blocks of any affected task: :math:`\\max_g |UCB_g|`.
* **ECB-only** — ignore usefulness and charge every block the preempting
  task touches: :math:`|ECB_j|`.

All three return *numbers of memory requests*; the response-time analysis
multiplies by ``d_mem`` where needed.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Tuple

from repro.crpd.multiset import multiset_pair_data, multiset_window_from_pairs
from repro.model.task import Task, TaskSet


class CrpdApproach(enum.Enum):
    """Selectable CRPD bounding approach.

    ``ECB_UNION_MULTISET`` selects the window-level multiset refinement of
    :mod:`repro.crpd.multiset` for the same-core bound; per-job values
    (used by the remote-core terms of Eq. 3-6) fall back to plain
    ECB-union.
    """

    ECB_UNION = "ecb-union"
    ECB_UNION_MULTISET = "ecb-union-multiset"
    UCB_ONLY = "ucb-only"
    ECB_ONLY = "ecb-only"
    NONE = "none"


def crpd_ecb_union(taskset: TaskSet, task_i: Task, task_j: Task) -> int:
    """ECB-union CRPD bound :math:`\\gamma_{i,j,x}` of Eq. (2).

    ``task_j`` is the (higher-priority) preempting task and ``task_i`` the
    task whose busy window is analysed; both must live on the same core.
    Returns 0 when ``task_j`` cannot preempt anything relevant (empty
    ``aff(i, j)``).
    """
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    evicting: FrozenSet[int] = taskset.hep_ecb_union(task_j, core)
    return max(len(t.ucbs & evicting) for t in affected)


def crpd_ucb_only(taskset: TaskSet, task_i: Task, task_j: Task) -> int:
    """UCB-only CRPD bound: the largest UCB set of any affected task."""
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    return max(len(t.ucbs) for t in affected)


def crpd_ecb_only(taskset: TaskSet, task_i: Task, task_j: Task) -> int:
    """ECB-only CRPD bound: every block the preempting task may evict.

    Sound because a single preemption cannot force more reloads than the
    number of cache sets the preempting task touches.  When ``aff(i, j)`` is
    empty no preemption of interest exists and the bound is 0.
    """
    core = task_j.core
    affected = taskset.aff_on_core(task_i, task_j, core)
    if not affected:
        return 0
    return len(task_j.ecbs)


_APPROACHES: Dict[CrpdApproach, Callable[[TaskSet, Task, Task], int]] = {
    CrpdApproach.ECB_UNION: crpd_ecb_union,
    # Per-job fallback for the multiset refinement (see module docstring of
    # repro.crpd.multiset): remote-core terms use plain ECB-union values.
    CrpdApproach.ECB_UNION_MULTISET: crpd_ecb_union,
    CrpdApproach.UCB_ONLY: crpd_ucb_only,
    CrpdApproach.ECB_ONLY: crpd_ecb_only,
    CrpdApproach.NONE: lambda taskset, task_i, task_j: 0,
}


class CrpdCalculator:
    """Memoising front-end over the CRPD approaches.

    The WCRT fixed point evaluates :math:`\\gamma_{i,j,x}` for the same task
    pairs at every iteration; the values only depend on the (static) task
    set, so they are computed once and cached.
    """

    def __init__(
        self,
        taskset: TaskSet,
        approach: CrpdApproach = CrpdApproach.ECB_UNION,
    ):
        self._taskset = taskset
        self._approach = approach
        self._fn = _APPROACHES[approach]
        self._cache: Dict[Tuple[int, int], int] = {}
        self._multiset_cache: Dict[Tuple[int, int], Tuple[int, tuple]] = {}

    @classmethod
    def shared(
        cls, taskset: TaskSet, approach: CrpdApproach = CrpdApproach.ECB_UNION
    ) -> "CrpdCalculator":
        """The task set's shared calculator for ``approach``.

        CRPD values are pure functions of the (immutable) task set, so one
        calculator per (task set, approach) pair serves every analysis run
        and keeps its pair cache warm across them.
        """
        return taskset.derived(
            ("crpd-calculator", approach), lambda: cls(taskset, approach)
        )

    @property
    def approach(self) -> CrpdApproach:
        """The CRPD approach this calculator applies."""
        return self._approach

    def gamma(self, task_i: Task, task_j: Task) -> int:
        """CRPD (in memory requests) charged per preemption by ``task_j``.

        ``task_i`` identifies the busy window under analysis (its priority
        bounds the set of affected tasks); ``task_j`` is the preempting task
        and determines the core.  Mirrors :math:`\\gamma_{i,j,x}` with
        :math:`x =` ``task_j.core``.
        """
        key = (task_i.priority, task_j.priority)
        if key not in self._cache:
            self._cache[key] = self._fn(self._taskset, task_i, task_j)
        return self._cache[key]

    def multiset_window(
        self,
        task_i: Task,
        task_j: Task,
        window: int,
        response_time_of: Callable[[Task], int],
    ) -> int:
        """Window-level multiset CRPD (see :mod:`repro.crpd.multiset`).

        The static per-pair data (reload costs, periods) is extracted once
        per (task_i, task_j) pair; only the window-dependent greedy sum runs
        per call.
        """
        key = (task_i.priority, task_j.priority)
        data = self._multiset_cache.get(key)
        if data is None:
            data = (
                int(task_j.period),
                multiset_pair_data(self._taskset, task_i, task_j),
            )
            self._multiset_cache[key] = data
        period_j, entries = data
        return multiset_window_from_pairs(
            entries, period_j, window, response_time_of
        )
