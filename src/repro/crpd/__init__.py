"""Cache-related preemption delay (CRPD) analyses."""

from repro.crpd.approaches import (
    CrpdApproach,
    CrpdCalculator,
    crpd_ecb_only,
    crpd_ecb_union,
    crpd_ucb_only,
)
from repro.crpd.multiset import ecb_union_multiset_window

__all__ = [
    "CrpdApproach",
    "CrpdCalculator",
    "crpd_ecb_only",
    "crpd_ecb_union",
    "crpd_ucb_only",
    "ecb_union_multiset_window",
]
