"""Crash-safe file writes for every JSON/text artifact the repo persists.

A bare ``open(...).write`` or ``Path.write_text`` truncates the target
before the new bytes land, so a crash, kill -9 or full disk between the
two leaves a corrupt artifact — fatal for files other machinery trusts
(saved task sets, reproducer corpus entries, benchmark thresholds).

:func:`atomic_write_text` follows the standard recipe instead: write to a
temporary file *in the destination directory* (``os.replace`` is only
atomic within one filesystem), flush and ``fsync`` it, then rename over
the target.  Readers therefore always see either the complete old
contents or the complete new contents, never a prefix.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    The temporary file is created next to the destination and cleaned up
    on any failure, so an interrupted write leaves no droppings and the
    existing file untouched.
    """
    target = Path(path)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: PathLike, document: Any, **dumps_kwargs) -> None:
    """Atomically write ``document`` as JSON (trailing newline included)."""
    atomic_write_text(path, json.dumps(document, **dumps_kwargs) + "\n")
