"""Graceful-degradation ladder over the soundness lattice of the bounds.

The paper's persistence-aware WCRT (Lemmas 1-2) refines the baseline
Davis et al. Eq. (1)/(3) bound, and both over-approximate the true
response times.  That lattice means a deadline-pressed service never has
to answer with nothing: a cheaper, looser tier that still completes
returns *sound* per-task upper bounds, and a "schedulable" verdict from
any sound over-approximation implies the exact analysis agrees (its
bounds are pointwise tighter, hence also under the deadlines).

:class:`AnalysisLadder` orders three tiers:

``exact``
    The request's own :class:`~repro.analysis.config.AnalysisConfig` —
    the paper configuration, bit-identical to a direct
    :func:`~repro.analysis.wcrt.analyze_taskset` call.
``baseline``
    ``persistence=False``: the Davis et al. baseline.  Skipped when the
    request already asked for the baseline (it would duplicate ``exact``).
    Dominance over the exact tier is the ``persistence-tightens``
    property the fuzzer has pinned since PR 4.
``coarse``
    A single-outer-round sufficient test: every *remote* response-time
    estimate is pinned at its task's deadline (the largest value any
    schedulable fixed point can reach) and each task runs one inner
    Eq. (19) fixed point against that frozen context.  The interference
    terms are non-decreasing in the remote estimates — the same
    monotonicity the outer loop's soundness rests on — so the resting
    values dominate the exact fixed point, and "every bound under its
    deadline" soundly implies schedulability.  One outer round, no
    cross-core iteration, order-independent.

Each tier runs under a :meth:`~repro.budget.Budget.child` slice of the
request budget, so an expensive tier aborting cannot starve the cheaper
fallbacks behind it.  The result is a typed :class:`LadderResult` whose
``soundness`` is ``"exact"`` (tier 1 completed), ``"degraded-sound"``
(a looser tier completed; bounds are sound over-approximations, and a
"schedulable" verdict agrees with the exact analysis) or ``"unknown"``
(nothing completed; only the partial estimates of the deepest attempt
are available).  The ``ladder-dominance`` oracle in
:mod:`repro.verify.oracles` replays the dominance claims on the fuzz
grid and the historical corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import (
    WarmHint,
    WcrtResult,
    _make_context,
    _task_fixed_point,
    analyze_taskset,
)
from repro.budget import Budget
from repro.errors import AnalysisAborted, BudgetExceeded, Cancelled
from repro.model.platform import Platform
from repro.model.task import TaskSet
from repro.perf import PerfCounters

#: Tier names, in degradation order.
TIER_EXACT = "exact"
TIER_BASELINE = "baseline"
TIER_COARSE = "coarse"

#: Soundness classes a :class:`LadderResult` can carry.
SOUND_EXACT = "exact"
SOUND_DEGRADED = "degraded-sound"
SOUND_UNKNOWN = "unknown"


@dataclass(frozen=True)
class LadderTier:
    """One rung: a tier name and its slice of the *remaining* budget."""

    name: str
    #: Fraction of the budget still unspent when this tier starts (not of
    #: the original total), handed to :meth:`Budget.child`.  The last
    #: tier conventionally takes 1.0 — everything that is left.
    fraction: float


#: Default ladder: 60% of the budget on the exact paper configuration,
#: 75% of the remainder (30% of the total) on the baseline, the rest on
#: the coarse single-round test.
DEFAULT_TIERS: Tuple[LadderTier, ...] = (
    LadderTier(TIER_EXACT, 0.6),
    LadderTier(TIER_BASELINE, 0.75),
    LadderTier(TIER_COARSE, 1.0),
)


@dataclass
class LadderResult:
    """Typed outcome of a ladder descent.

    Attributes:
        tier: name of the tier that produced ``result``; ``None`` when no
            tier completed.
        soundness: ``"exact"`` / ``"degraded-sound"`` / ``"unknown"``.
        result: the completed :class:`WcrtResult`, or the partial
            estimates of the deepest aborted attempt for ``"unknown"``.
        tiers_tried: tier names attempted, in order.
        abort: the final tier's abort, kept so service layers can build
            their typed budget-exceeded response from it.
    """

    tier: Optional[str]
    soundness: str
    result: Optional[WcrtResult]
    tiers_tried: Tuple[str, ...] = ()
    abort: Optional[AnalysisAborted] = None

    @property
    def degraded(self) -> bool:
        """Whether the answer came from anything but the exact tier."""
        return self.tier != TIER_EXACT


class AnalysisLadder:
    """Ordered degradation tiers executed under budget slices."""

    def __init__(self, tiers: Sequence[LadderTier] = DEFAULT_TIERS) -> None:
        if not tiers:
            raise ValueError("ladder needs at least one tier")
        self.tiers = tuple(tiers)

    def _config_for(
        self, tier: LadderTier, config: AnalysisConfig
    ) -> Optional[AnalysisConfig]:
        """The tier's analysis configuration, or ``None`` to skip it."""
        if tier.name == TIER_EXACT:
            return config
        if tier.name == TIER_BASELINE:
            if not config.persistence:
                # The request already runs the baseline; re-running it
                # under a smaller slice could only waste budget.
                return None
            return config.with_persistence(False)
        return config  # coarse derives its own context

    def run(
        self,
        taskset: TaskSet,
        platform: Platform,
        config: AnalysisConfig = AnalysisConfig(),
        budget: Optional[Budget] = None,
        perf: Optional[PerfCounters] = None,
        warm_hint: Optional[WarmHint] = None,
    ) -> LadderResult:
        """Descend the ladder until a tier completes.

        Without a budget only the exact tier runs (there is no pressure
        to degrade under) and the call is observationally identical to
        :func:`analyze_taskset`.  With a budget, each tier gets a
        :meth:`Budget.child` slice; a tier aborting on its slice falls
        through to the next, a tier aborting because the *parent* is
        exhausted ends the descent (the next slice would be empty).
        :class:`~repro.errors.Cancelled` always propagates — a cancelled
        caller does not want a degraded answer either.
        """
        tried = []
        abort: Optional[AnalysisAborted] = None
        for tier in self.tiers:
            tier_config = self._config_for(tier, config)
            if tier_config is None:
                continue
            slice_budget: Optional[Budget] = None
            if budget is not None:
                try:
                    slice_budget = budget.child(tier.fraction)
                except BudgetExceeded:
                    break  # parent exhausted: nothing left to slice
            tried.append(tier.name)
            if perf is not None:
                perf.ladder_tier_runs += 1
            try:
                if tier.name == TIER_COARSE:
                    result = coarse_bound(
                        taskset,
                        platform,
                        tier_config,
                        perf=perf,
                        budget=slice_budget,
                    )
                else:
                    result = analyze_taskset(
                        taskset,
                        platform,
                        tier_config,
                        perf=perf,
                        budget=slice_budget,
                        warm_hint=(
                            warm_hint if tier.name == TIER_EXACT else None
                        ),
                    )
            except Cancelled:
                raise
            except BudgetExceeded as error:
                abort = error
                continue
            soundness = (
                SOUND_EXACT if tier.name == TIER_EXACT else SOUND_DEGRADED
            )
            return LadderResult(tier.name, soundness, result, tuple(tried))
        partial = abort.partial if abort is not None else None
        return LadderResult(
            None, SOUND_UNKNOWN, partial, tuple(tried), abort=abort
        )


def run_ladder(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    budget: Optional[Budget] = None,
    perf: Optional[PerfCounters] = None,
    warm_hint: Optional[WarmHint] = None,
) -> LadderResult:
    """Convenience wrapper: run the default ladder once."""
    return AnalysisLadder().run(
        taskset, platform, config, budget=budget, perf=perf, warm_hint=warm_hint
    )


def coarse_bound(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
) -> WcrtResult:
    """Single-outer-round coarse sufficient test (the ladder's last rung).

    Pins every response-time estimate at its task's deadline — the
    largest value any schedulable fixed point can reach — and runs each
    task's inner Eq. (19) fixed point once against that frozen context.
    Because the interference terms are non-decreasing in the remote
    estimates, each resting value dominates the task's exact bound, so

    * every resting value under its deadline ⇒ ``schedulable`` with
      sound per-task bounds (the exact analysis agrees), while
    * any task overrunning is reported with the *conservative* verdict
      shape (``schedulable=False, failed_task=None``) the rest of the
      code base uses for exhausted outer loops: "not provably
      schedulable at this tier", not "provably unschedulable".

    The one genuinely exact negative — a task whose contention-free
    isolated WCET already overruns — is reported with its ``failed_task``
    set, exactly as the full analysis would.  The context is never
    updated between tasks, so the test is order-independent and costs at
    most one inner fixed point per task.  ``persistence=False`` and
    ``warm_start=False`` keep the tier cheap and seed-free.
    """
    counters = PerfCounters()
    counters.analyses += 1
    if budget is not None:
        budget.start()
    coarse_config = replace(config, persistence=False, warm_start=False)
    ctx = _make_context(taskset, platform, coarse_config, counters, budget)
    d_mem = platform.d_mem
    try:
        with counters.phase("analysis"):
            for task in taskset:
                isolated = int(task.pd) + task.md * d_mem
                if isolated > task.deadline:
                    ctx.set_response_time(task, isolated)
                    result = WcrtResult(
                        schedulable=False,
                        response_times=dict(ctx.response_times),
                        failed_task=task,
                    )
                    break
            else:
                for task in taskset:
                    ctx.set_response_time(task, int(task.deadline))
                counters.outer_iterations += 1
                bounds = {}
                overrun = False
                for task in taskset:
                    isolated = int(task.pd) + task.md * d_mem
                    value = _task_fixed_point(
                        ctx, task, isolated, coarse_config
                    )
                    if value is None:
                        bounds[task] = int(task.deadline) + 1
                        overrun = True
                        break
                    bounds[task] = value
                if overrun:
                    for task in taskset:
                        bounds.setdefault(task, int(task.deadline))
                result = WcrtResult(
                    schedulable=not overrun,
                    response_times=bounds,
                    failed_task=None,
                    outer_iterations=1,
                )
    except AnalysisAborted as error:
        counters.budget_aborts += 1
        error.partial = WcrtResult(
            schedulable=False,
            response_times=dict(ctx.response_times),
            outer_iterations=counters.outer_iterations,
            perf=counters,
        )
        if budget is not None:
            error.iterations = budget.iterations
            error.elapsed = budget.elapsed()
        if perf is not None:
            perf.merge(counters)
        raise
    result.perf = counters
    if perf is not None:
        perf.merge(counters)
    return result
