"""Schedulability analyses: WCRT fixed point, tests, weighted measure."""

from repro.analysis.config import AnalysisConfig, BASELINE, PERSISTENCE_AWARE
from repro.analysis.decomposition import (
    WcrtBreakdown,
    decompose,
    decompose_taskset,
)
from repro.analysis.ladder import (
    AnalysisLadder,
    LadderResult,
    LadderTier,
    coarse_bound,
    run_ladder,
)
from repro.analysis.lockstep import LaneOutcome, analyze_taskset_batch
from repro.analysis.sensitivity import breakdown_d_mem, breakdown_period_scale
from repro.analysis.schedulability import (
    SchedulabilityVerdict,
    check_schedulability,
    check_schedulability_batch,
    is_schedulable,
)
from repro.analysis.wcrt import WcrtResult, analyze_taskset
from repro.analysis.weighted import weighted_schedulability

__all__ = [
    "AnalysisConfig",
    "BASELINE",
    "PERSISTENCE_AWARE",
    "WcrtBreakdown",
    "decompose",
    "decompose_taskset",
    "breakdown_d_mem",
    "breakdown_period_scale",
    "SchedulabilityVerdict",
    "check_schedulability",
    "check_schedulability_batch",
    "is_schedulable",
    "AnalysisLadder",
    "LadderResult",
    "LadderTier",
    "coarse_bound",
    "run_ladder",
    "LaneOutcome",
    "WcrtResult",
    "analyze_taskset",
    "analyze_taskset_batch",
    "weighted_schedulability",
]
