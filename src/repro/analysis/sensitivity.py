"""Sensitivity analysis: how far can a task set be pushed?

Classic schedulability tooling built on top of the WCRT analysis:

* :func:`breakdown_period_scale` — the smallest uniform period/deadline
  scaling factor that keeps the task set schedulable (a factor of 1 means
  "exactly as given"; 0.5 means every period could be halved).  Binary
  search over a monotone predicate.
* :func:`breakdown_d_mem` — the largest memory latency the task set
  tolerates, with periods *fixed* (deadlines do not stretch when the
  memory slows down).  Useful to compare how much latency headroom the
  persistence-aware analysis buys over the baseline.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.schedulability import is_schedulable
from repro.errors import AnalysisError
from repro.model.platform import Platform
from repro.model.task import TaskSet


def _scaled_taskset(taskset: TaskSet, factor: float) -> TaskSet:
    tasks = []
    for task in taskset:
        period = max(1, int(round(task.period * factor)))
        deadline = max(1, int(round(task.deadline * factor)))
        deadline = min(deadline, period)
        tasks.append(task.with_timing(period, deadline))
    return TaskSet(tasks)


def breakdown_period_scale(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    precision: float = 0.01,
    lower: float = 0.05,
    upper: float = 4.0,
) -> Optional[float]:
    """Smallest period scale factor keeping the set schedulable.

    Returns ``None`` when the set is unschedulable even at ``upper`` (the
    most relaxed scaling probed).  Smaller results mean more headroom.
    """
    if precision <= 0:
        raise AnalysisError(f"precision must be positive, got {precision}")
    if not 0 < lower < upper:
        raise AnalysisError("need 0 < lower < upper")

    def schedulable_at(factor: float) -> bool:
        return is_schedulable(_scaled_taskset(taskset, factor), platform, config)

    if not schedulable_at(upper):
        return None
    if schedulable_at(lower):
        return lower
    low, high = lower, upper  # unschedulable at low, schedulable at high
    while high - low > precision:
        mid = (low + high) / 2
        if schedulable_at(mid):
            high = mid
        else:
            low = mid
    return high


def breakdown_d_mem(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    upper: int = 10_000,
) -> Optional[int]:
    """Largest memory latency (cycles) the task set tolerates.

    Periods and deadlines stay fixed; only the platform's ``d_mem`` varies.
    Returns ``None`` when the set is unschedulable even at ``d_mem = 1``.
    Schedulability is monotone in ``d_mem`` (every interference term grows
    with it), so binary search applies.
    """
    if upper < 1:
        raise AnalysisError(f"upper must be at least 1, got {upper}")

    def schedulable_at(d_mem: int) -> bool:
        return is_schedulable(taskset, platform.with_d_mem(d_mem), config)

    if not schedulable_at(1):
        return None
    if schedulable_at(upper):
        return upper
    low, high = 1, upper  # schedulable at low, unschedulable at high
    while high - low > 1:
        mid = (low + high) // 2
        if schedulable_at(mid):
            low = mid
        else:
            high = mid
    return low
