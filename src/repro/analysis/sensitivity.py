"""Sensitivity analysis: how far can a task set be pushed?

Classic schedulability tooling built on top of the WCRT analysis:

* :func:`breakdown_period_scale` — the smallest uniform period/deadline
  scaling factor that keeps the task set schedulable (a factor of 1 means
  "exactly as given"; 0.5 means every period could be halved).  Binary
  search over a monotone predicate.
* :func:`breakdown_d_mem` — the largest memory latency the task set
  tolerates, with periods *fixed* (deadlines do not stretch when the
  memory slows down).  Useful to compare how much latency headroom the
  persistence-aware analysis buys over the baseline.

Both bisections chain warm hints between consecutive probes: each
schedulable probe's converged response-time map is offered as a
:class:`~repro.analysis.wcrt.WarmHint` to the next one.  Hints are
strictly re-verified (one exact outer round, cold fallback on any
mismatch — see :mod:`repro.analysis.wcrt`), so every probe's verdict, and
therefore every breakdown value, is bit-identical to hint-free probing;
only the executed work can shrink.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.schedulability import (
    check_schedulability,
    check_schedulability_batch,
)
from repro.analysis.wcrt import WarmHint
from repro.errors import AnalysisError
from repro.model.platform import Platform
from repro.model.task import TaskSet
from repro.perf import PerfCounters


def _chained_probe(hint_cell: List[Optional[WarmHint]], verdict) -> bool:
    """Record a probe's converged map as the next probe's warm hint."""
    wcrt = verdict.wcrt
    if wcrt is not None and wcrt.schedulable:
        hint_cell[0] = WarmHint(
            response_times={
                task.priority: value
                for task, value in wcrt.response_times.items()
            },
            outer_iterations=wcrt.outer_iterations,
        )
    else:
        hint_cell[0] = None
    return verdict.schedulable


def _scaled_taskset(taskset: TaskSet, factor: float) -> TaskSet:
    tasks = []
    for task in taskset:
        period = max(1, int(round(task.period * factor)))
        deadline = max(1, int(round(task.deadline * factor)))
        deadline = min(deadline, period)
        tasks.append(task.with_timing(period, deadline))
    return TaskSet(tasks)


def breakdown_period_scale(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    precision: float = 0.01,
    lower: float = 0.05,
    upper: float = 4.0,
    perf: Optional[PerfCounters] = None,
) -> Optional[float]:
    """Smallest period scale factor keeping the set schedulable.

    Returns ``None`` when the set is unschedulable even at ``upper`` (the
    most relaxed scaling probed).  Smaller results mean more headroom.
    ``perf`` optionally accumulates every probe's analysis counters.
    """
    if precision <= 0:
        raise AnalysisError(f"precision must be positive, got {precision}")
    if not 0 < lower < upper:
        raise AnalysisError("need 0 < lower < upper")

    hint_cell: List[Optional[WarmHint]] = [None]

    def schedulable_at(factor: float) -> bool:
        verdict = check_schedulability(
            _scaled_taskset(taskset, factor), platform, config,
            perf=perf, warm_hint=hint_cell[0],
        )
        return _chained_probe(hint_cell, verdict)

    # The two bracket probes are independent task sets on one platform —
    # exactly a two-lane lockstep batch.  Verdicts (and the hint-cell
    # state the bisection starts from) are bit-identical to probing them
    # one at a time: _chained_probe is applied in the scalar order, and a
    # failed upper probe returns before the lower lane's outcome — even
    # an exceptional one, which the scalar path would never have seen —
    # is consulted.  (breakdown_d_mem cannot batch its probes: its lanes
    # differ in platform, which a lockstep batch shares.)
    if config.lockstep_kernel:
        bracket = check_schedulability_batch(
            [_scaled_taskset(taskset, upper), _scaled_taskset(taskset, lower)],
            platform, config, perf=perf,
        )
        if isinstance(bracket[0], BaseException):
            raise bracket[0]
        if not _chained_probe(hint_cell, bracket[0]):
            return None
        if isinstance(bracket[1], BaseException):
            raise bracket[1]
        if _chained_probe(hint_cell, bracket[1]):
            return lower
    else:
        if not schedulable_at(upper):
            return None
        if schedulable_at(lower):
            return lower
    low, high = lower, upper  # unschedulable at low, schedulable at high
    while high - low > precision:
        mid = (low + high) / 2
        if schedulable_at(mid):
            high = mid
        else:
            low = mid
    return high


def breakdown_d_mem(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    upper: int = 10_000,
    perf: Optional[PerfCounters] = None,
) -> Optional[int]:
    """Largest memory latency (cycles) the task set tolerates.

    Periods and deadlines stay fixed; only the platform's ``d_mem`` varies.
    Returns ``None`` when the set is unschedulable even at ``d_mem = 1``.
    Schedulability is monotone in ``d_mem`` (every interference term grows
    with it), so binary search applies.  ``perf`` optionally accumulates
    every probe's analysis counters.
    """
    if upper < 1:
        raise AnalysisError(f"upper must be at least 1, got {upper}")

    hint_cell: List[Optional[WarmHint]] = [None]

    def schedulable_at(d_mem: int) -> bool:
        verdict = check_schedulability(
            taskset, platform.with_d_mem(d_mem), config,
            perf=perf, warm_hint=hint_cell[0],
        )
        return _chained_probe(hint_cell, verdict)

    if not schedulable_at(1):
        return None
    if schedulable_at(upper):
        return upper
    low, high = 1, upper  # schedulable at low, unschedulable at high
    while high - low > 1:
        mid = (low + high) // 2
        if schedulable_at(mid):
            low = mid
        else:
            high = mid
    return low
