"""Worst-case response time analysis (Eq. 19 + outer loop, Sec. IV).

The WCRT of :math:`\\tau_i \\in \\Gamma_x` is the least fixed point of

.. math::

    R_i = PD_i
        + \\sum_{\\tau_j \\in \\Gamma_x \\cap hp(i)}
              \\lceil R_i / T_j \\rceil \\cdot PD_j
        + BAT^x_i(R_i) \\cdot d_{mem}

where :math:`BAT` depends on the bus policy (Eq. 7-9) and, through
Eq. (5)-(6), on the response times of tasks on *other* cores.  The paper
resolves this circular dependency with an outer loop around per-task fixed
points: every response time is initialised to the task's isolated WCET
:math:`PD_i + MD_i \\cdot d_{mem}` and the whole system is iterated until
nothing changes or some task overruns its deadline.

Both loops are monotone (all interference terms are non-decreasing in every
response-time estimate and in the window length), so:

* estimates only ever grow across outer iterations,
* once a task's estimate exceeds its deadline it will never shrink back,
  making "deem unschedulable and stop" sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.config import AnalysisConfig
from repro.budget import Budget
from repro.businterference.arbiters import total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.crpd.approaches import CrpdCalculator
from repro.errors import AnalysisAborted, ConvergenceError
from repro.model.interference import InterferenceTable
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet
from repro.perf import PerfCounters
from repro.persistence.cpro import CproCalculator

#: Warm-start seed recorded per (platform, config): the converged
#: response-time map of a schedulable cold analysis plus the number of
#: outer rounds that analysis took (reported again on warm replays so
#: results stay observationally identical).
_WarmSeed = Tuple[Dict[Task, int], int]


@dataclass
class WcrtResult:
    """Outcome of a whole-task-set WCRT analysis.

    Attributes:
        schedulable: ``True`` iff every task's WCRT converged within its
            deadline.
        response_times: WCRT bound per task; for an unschedulable set the
            mapping holds the estimates reached when analysis stopped and
            the failing task maps to a value exceeding its deadline.
        failed_task: first task found unschedulable, if any.
        outer_iterations: outer-loop rounds executed.
        perf: iteration and memo-cache counters of this analysis run.
            Excluded from equality so memoized and reference runs with
            identical verdicts compare equal.
    """

    schedulable: bool
    response_times: Dict[Task, int] = field(default_factory=dict)
    failed_task: Optional[Task] = None
    outer_iterations: int = 0
    perf: Optional[PerfCounters] = field(default=None, compare=False, repr=False)

    def response_time(self, task: Task) -> int:
        """WCRT bound computed for ``task``."""
        return self.response_times[task]


def _task_fixed_point(
    ctx: AnalysisContext,
    task: Task,
    start: int,
    config: AnalysisConfig,
) -> Optional[int]:
    """Iterate Eq. (19) for one task from ``start``.

    Returns the fixed point, or ``None`` as soon as the estimate exceeds the
    task's deadline (the iteration is non-decreasing, so it can never come
    back below the deadline).
    """
    d_mem = ctx.platform.d_mem
    hp_rows = ctx._hp_rows.get(task.priority)
    if hp_rows is None:
        hp_rows = tuple(
            (int(tj.period), int(tj.pd))
            for tj in ctx.taskset.hp_on_core(task, task.core)
        )
        ctx._hp_rows[task.priority] = hp_rows
    pd_i = int(task.pd)
    deadline = int(task.deadline)
    perf = ctx.perf
    budget = ctx.budget
    r = start
    for _ in range(config.max_inner_iterations):
        # The tick sits at the iteration boundary, *before* any work of the
        # iteration: an abort therefore never leaves a half-evaluated term
        # behind, and the boundary index is bit-identical across the
        # memoization/bitset/warm-start kernel variants.
        if budget is not None:
            budget.tick()
        perf.inner_iterations += 1
        core_interference = sum(
            -((-r) // period) * pd_j for period, pd_j in hp_rows
        )
        r_new = pd_i + core_interference + total_bus_accesses(ctx, task, r) * d_mem
        if r_new > deadline:
            return None
        if r_new <= r:
            return r
        r = r_new
    raise ConvergenceError(
        f"WCRT iteration for task {task.name!r} did not converge within "
        f"{config.max_inner_iterations} steps"
    )


def _make_context(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
    counters: PerfCounters,
    budget: Optional[Budget] = None,
) -> AnalysisContext:
    """Fresh analysis context over the task set's shared calculators."""
    return AnalysisContext(
        taskset=taskset,
        platform=platform,
        persistence=config.persistence,
        crpd=CrpdCalculator.shared(
            taskset, config.crpd_approach, config.bitset_kernel
        ),
        cpro=CproCalculator.shared(
            taskset, config.cpro_approach, config.bitset_kernel
        ),
        persistence_in_low=config.persistence_in_low,
        tdma_slot_alignment=config.tdma_slot_alignment,
        memoize=config.memoization,
        perf=counters,
        budget=budget,
    )


def analyze_taskset(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
) -> WcrtResult:
    """Compute WCRT bounds for every task of ``taskset`` on ``platform``.

    Implements the outer loop of Sec. IV.  Analysis stops early — reporting
    the set unschedulable — as soon as any task's estimate exceeds its
    deadline, which is sound because estimates are non-decreasing.

    With ``config.warm_start`` (the default), a repeat analysis of the same
    (task set, platform, config) triple is seeded from the previously
    converged response-time map and merely *re-verified*: monotonicity of
    Eq. (19) means a converged map passes one outer round unchanged, so the
    replay costs one inner iteration per task instead of the full fixed
    point.  The returned result is bit-identical to the cold run's (it even
    reports the cold run's ``outer_iterations``); only the perf counters
    reveal the shortcut.  If re-verification observes *any* change the seed
    is discarded and a cold run is performed — so a stale seed can slow an
    analysis down but never alter its outcome.

    Each call collects a fresh set of :class:`~repro.perf.PerfCounters`
    (returned as ``result.perf``); pass ``perf`` to additionally accumulate
    them into a caller-owned aggregate, e.g. across a sweep.

    ``budget`` (optional) threads a :class:`~repro.budget.Budget` through
    the fixed points: every inner iteration ticks it, so an over-budget or
    cancelled analysis aborts at the next iteration boundary with a typed
    :class:`~repro.errors.BudgetExceeded` / :class:`~repro.errors.Cancelled`
    whose ``partial`` attribute holds the estimates reached so far.  A
    budget generous enough for the analysis to finish is invisible: the
    result is bit-identical to a budget-less run, and all shared caches
    (derived tables, calculator caches, warm-start seeds) stay exactly as
    consistent after an abort as after a cold start — aborted runs never
    record a warm-start seed, and the per-run memo caches die with the
    run's context.
    """
    counters = PerfCounters()
    if config.bitset_kernel:
        # Build (or fetch) the task set's interference table up front so the
        # construction is attributed to this run's counters rather than
        # hiding inside the first calculator access.
        InterferenceTable.shared(taskset, perf=counters)
    counters.analyses += 1
    if budget is not None:
        budget.start()
    seeds: Optional[Dict[Tuple[Platform, AnalysisConfig], _WarmSeed]] = (
        taskset.derived("warm-start-seeds", dict) if config.warm_start else None
    )
    seed_key = (platform, config)
    result: Optional[WcrtResult] = None
    ctx: Optional[AnalysisContext] = None
    try:
        with counters.phase("analysis"):
            if seeds is not None and (stored := seeds.get(seed_key)) is not None:
                ctx = _make_context(taskset, platform, config, counters, budget)
                result = _warm_verify(ctx, stored, config)
            if result is None:
                ctx = _make_context(taskset, platform, config, counters, budget)
                result = _analyze(ctx, taskset, platform, config)
                if seeds is not None and result.schedulable:
                    # Only schedulable maps are replayable: an unschedulable
                    # run stops mid-refinement, and reseeding from its partial
                    # map would not retrace the cold iteration order.
                    seeds[seed_key] = (
                        dict(result.response_times),
                        result.outer_iterations,
                    )
    except AnalysisAborted as abort:
        # Attach the partial result and accounting, then propagate.  No
        # seed was recorded and every shared cache holds only values that
        # are pure functions of the task set, so a rerun is bit-identical
        # to a cold run (pinned by tests/test_budget.py).
        counters.budget_aborts += 1
        abort.partial = WcrtResult(
            schedulable=False,
            response_times=dict(ctx.response_times) if ctx is not None else {},
            outer_iterations=counters.outer_iterations,
            perf=counters,
        )
        if budget is not None:
            abort.iterations = budget.iterations
            abort.elapsed = budget.elapsed()
        if perf is not None:
            perf.merge(counters)
        raise
    result.perf = counters
    if perf is not None:
        perf.merge(counters)
    return result


def _warm_verify(
    ctx: AnalysisContext,
    stored: _WarmSeed,
    config: AnalysisConfig,
) -> Optional[WcrtResult]:
    """Re-verify a previously converged response-time map in one round.

    Seeds every task's estimate with the stored converged value and runs a
    single outer round.  Because Eq. (19) is monotone and the map was a
    fixed point of *identical* inputs, every per-task iteration terminates
    immediately with the seeded value; any deviation means the seed does
    not fit (it should not happen for identical inputs, but correctness
    must not depend on that) and the caller falls back to a cold run.

    Returns the (bit-identical) schedulable result, or ``None`` to request
    the cold fallback.
    """
    seed_map, cold_outer = stored
    taskset = ctx.taskset
    if len(seed_map) != len(taskset):
        return None
    for task in taskset:
        value = seed_map.get(task)
        if value is None:
            return None
        ctx.set_response_time(task, value)
    ctx.perf.outer_iterations += 1
    for task in taskset:
        previous = ctx.response_time(task)
        verified = _task_fixed_point(ctx, task, previous, config)
        if verified != previous:
            return None
    perf = ctx.perf
    perf.warm_starts += 1
    perf.warm_start_iterations_saved += max(0, cold_outer - 1)
    return WcrtResult(
        schedulable=True,
        response_times=dict(ctx.response_times),
        outer_iterations=cold_outer,
    )


def _analyze(
    ctx: AnalysisContext,
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
) -> WcrtResult:
    d_mem = platform.d_mem
    for task in taskset:
        isolated = int(task.pd) + task.md * d_mem
        if isolated > task.deadline:
            # Even a contention-free job overruns: trivially unschedulable.
            ctx.set_response_time(task, isolated)
            return WcrtResult(
                schedulable=False,
                response_times=dict(ctx.response_times),
                failed_task=task,
            )
        ctx.set_response_time(task, isolated)

    outer = 0
    for outer in range(1, config.max_outer_iterations + 1):
        ctx.perf.outer_iterations += 1
        changed = False
        for task in taskset:
            previous = ctx.response_time(task)
            result = _task_fixed_point(ctx, task, previous, config)
            if result is None:
                ctx.set_response_time(task, int(task.deadline) + 1)
                return WcrtResult(
                    schedulable=False,
                    response_times=dict(ctx.response_times),
                    failed_task=task,
                    outer_iterations=outer,
                )
            if result != previous:
                ctx.set_response_time(task, result)
                changed = True
        if not changed:
            return WcrtResult(
                schedulable=True,
                response_times=dict(ctx.response_times),
                outer_iterations=outer,
            )
    # The outer loop is monotone over bounded integers, so it does converge
    # eventually; running out of the iteration budget first is answered with
    # the conservative (sound for a sufficient test) verdict "unschedulable".
    return WcrtResult(
        schedulable=False,
        response_times=dict(ctx.response_times),
        failed_task=None,
        outer_iterations=outer,
    )
