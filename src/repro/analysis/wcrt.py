"""Worst-case response time analysis (Eq. 19 + outer loop, Sec. IV).

The WCRT of :math:`\\tau_i \\in \\Gamma_x` is the least fixed point of

.. math::

    R_i = PD_i
        + \\sum_{\\tau_j \\in \\Gamma_x \\cap hp(i)}
              \\lceil R_i / T_j \\rceil \\cdot PD_j
        + BAT^x_i(R_i) \\cdot d_{mem}

where :math:`BAT` depends on the bus policy (Eq. 7-9) and, through
Eq. (5)-(6), on the response times of tasks on *other* cores.  The paper
resolves this circular dependency with an outer loop around per-task fixed
points: every response time is initialised to the task's isolated WCET
:math:`PD_i + MD_i \\cdot d_{mem}` and the whole system is iterated until
nothing changes or some task overruns its deadline.

Both loops are monotone (all interference terms are non-decreasing in every
response-time estimate and in the window length), so:

* estimates only ever grow across outer iterations,
* once a task's estimate exceeds its deadline it will never shrink back,
  making "deem unschedulable and stop" sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.config import AnalysisConfig
from repro.businterference.arbiters import total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.crpd.approaches import CrpdCalculator
from repro.errors import ConvergenceError
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet
from repro.perf import PerfCounters
from repro.persistence.cpro import CproCalculator


@dataclass
class WcrtResult:
    """Outcome of a whole-task-set WCRT analysis.

    Attributes:
        schedulable: ``True`` iff every task's WCRT converged within its
            deadline.
        response_times: WCRT bound per task; for an unschedulable set the
            mapping holds the estimates reached when analysis stopped and
            the failing task maps to a value exceeding its deadline.
        failed_task: first task found unschedulable, if any.
        outer_iterations: outer-loop rounds executed.
        perf: iteration and memo-cache counters of this analysis run.
            Excluded from equality so memoized and reference runs with
            identical verdicts compare equal.
    """

    schedulable: bool
    response_times: Dict[Task, int] = field(default_factory=dict)
    failed_task: Optional[Task] = None
    outer_iterations: int = 0
    perf: Optional[PerfCounters] = field(default=None, compare=False, repr=False)

    def response_time(self, task: Task) -> int:
        """WCRT bound computed for ``task``."""
        return self.response_times[task]


def _task_fixed_point(
    ctx: AnalysisContext,
    task: Task,
    start: int,
    config: AnalysisConfig,
) -> Optional[int]:
    """Iterate Eq. (19) for one task from ``start``.

    Returns the fixed point, or ``None`` as soon as the estimate exceeds the
    task's deadline (the iteration is non-decreasing, so it can never come
    back below the deadline).
    """
    d_mem = ctx.platform.d_mem
    hp_rows = ctx._hp_rows.get(task.priority)
    if hp_rows is None:
        hp_rows = tuple(
            (int(tj.period), int(tj.pd))
            for tj in ctx.taskset.hp_on_core(task, task.core)
        )
        ctx._hp_rows[task.priority] = hp_rows
    pd_i = int(task.pd)
    deadline = int(task.deadline)
    perf = ctx.perf
    r = start
    for _ in range(config.max_inner_iterations):
        perf.inner_iterations += 1
        core_interference = sum(
            -((-r) // period) * pd_j for period, pd_j in hp_rows
        )
        r_new = pd_i + core_interference + total_bus_accesses(ctx, task, r) * d_mem
        if r_new > deadline:
            return None
        if r_new <= r:
            return r
        r = r_new
    raise ConvergenceError(
        f"WCRT iteration for task {task.name!r} did not converge within "
        f"{config.max_inner_iterations} steps"
    )


def analyze_taskset(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
) -> WcrtResult:
    """Compute WCRT bounds for every task of ``taskset`` on ``platform``.

    Implements the outer loop of Sec. IV.  Analysis stops early — reporting
    the set unschedulable — as soon as any task's estimate exceeds its
    deadline, which is sound because estimates are non-decreasing.

    Each call collects a fresh set of :class:`~repro.perf.PerfCounters`
    (returned as ``result.perf``); pass ``perf`` to additionally accumulate
    them into a caller-owned aggregate, e.g. across a sweep.
    """
    ctx = AnalysisContext(
        taskset=taskset,
        platform=platform,
        persistence=config.persistence,
        crpd=CrpdCalculator.shared(taskset, config.crpd_approach),
        cpro=CproCalculator.shared(taskset, config.cpro_approach),
        persistence_in_low=config.persistence_in_low,
        tdma_slot_alignment=config.tdma_slot_alignment,
        memoize=config.memoization,
    )
    counters = ctx.perf
    counters.analyses += 1
    with counters.phase("analysis"):
        result = _analyze(ctx, taskset, platform, config)
    result.perf = counters
    if perf is not None:
        perf.merge(counters)
    return result


def _analyze(
    ctx: AnalysisContext,
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
) -> WcrtResult:
    d_mem = platform.d_mem
    for task in taskset:
        isolated = int(task.pd) + task.md * d_mem
        if isolated > task.deadline:
            # Even a contention-free job overruns: trivially unschedulable.
            ctx.set_response_time(task, isolated)
            return WcrtResult(
                schedulable=False,
                response_times=dict(ctx.response_times),
                failed_task=task,
            )
        ctx.set_response_time(task, isolated)

    outer = 0
    for outer in range(1, config.max_outer_iterations + 1):
        ctx.perf.outer_iterations += 1
        changed = False
        for task in taskset:
            previous = ctx.response_time(task)
            result = _task_fixed_point(ctx, task, previous, config)
            if result is None:
                ctx.set_response_time(task, int(task.deadline) + 1)
                return WcrtResult(
                    schedulable=False,
                    response_times=dict(ctx.response_times),
                    failed_task=task,
                    outer_iterations=outer,
                )
            if result != previous:
                ctx.set_response_time(task, result)
                changed = True
        if not changed:
            return WcrtResult(
                schedulable=True,
                response_times=dict(ctx.response_times),
                outer_iterations=outer,
            )
    # The outer loop is monotone over bounded integers, so it does converge
    # eventually; running out of the iteration budget first is answered with
    # the conservative (sound for a sufficient test) verdict "unschedulable".
    return WcrtResult(
        schedulable=False,
        response_times=dict(ctx.response_times),
        failed_task=None,
        outer_iterations=outer,
    )
