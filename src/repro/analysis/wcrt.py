"""Worst-case response time analysis (Eq. 19 + outer loop, Sec. IV).

The WCRT of :math:`\\tau_i \\in \\Gamma_x` is the least fixed point of

.. math::

    R_i = PD_i
        + \\sum_{\\tau_j \\in \\Gamma_x \\cap hp(i)}
              \\lceil R_i / T_j \\rceil \\cdot PD_j
        + BAT^x_i(R_i) \\cdot d_{mem}

where :math:`BAT` depends on the bus policy (Eq. 7-9) and, through
Eq. (5)-(6), on the response times of tasks on *other* cores.  The paper
resolves this circular dependency with an outer loop around per-task fixed
points: every response time is initialised to the task's isolated WCET
:math:`PD_i + MD_i \\cdot d_{mem}` and the whole system is iterated until
nothing changes or some task overruns its deadline.

Both loops are monotone (all interference terms are non-decreasing in every
response-time estimate and in the window length), so:

* estimates only ever grow across outer iterations,
* once a task's estimate exceeds its deadline it will never shrink back,
  making "deem unschedulable and stop" sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.analysis.config import AnalysisConfig
from repro.budget import Budget
from repro.businterference.arbiters import make_bat, total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.crpd.approaches import CrpdCalculator
from repro.errors import AnalysisAborted, ConvergenceError
from repro.model.interference import InterferenceTable, prefill_batch
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet
from repro.perf import PerfCounters
from repro.persistence.cpro import CproCalculator

#: Warm-start seed recorded per (platform, config): the converged
#: response-time map of a schedulable cold analysis plus the number of
#: outer rounds that analysis took (reported again on warm replays so
#: results stay observationally identical).
_WarmSeed = Tuple[Dict[Task, int], int]


@dataclass(frozen=True)
class WarmHint:
    """A converged response-time map offered to seed an *adjacent* analysis.

    Unlike the same-triple warm-start seeds the analysis records for
    itself, a hint crosses an analysis boundary: a neighbouring sweep
    point's sample, the previous probe of a sensitivity bisection, or a
    dominating analysis variant of the same task set.  ``response_times``
    is keyed by task *priority* (unique per task set) so a hint survives
    task-object identity changes between equivalent task sets.

    Every hint is verified with one strict outer round before it is
    trusted: each task must satisfy Eq. (19) *exactly* at the hinted value
    (``f(r) == r``, see :func:`_apply_once`), and the hint is discarded on
    the first mismatch.  Exact fixedness — rather than the pre-fixed-point
    test ``f(r) <= r`` the same-triple warm start uses — is what keeps
    foreign maps safe: the cold ascent's resting point is trajectory
    dependent (the window functions are not monotone in the estimate, so
    the inner ascent can overshoot), and a foreign pre-fixed point above
    the cold resting point would verify under ``<=`` yet differ from the
    cold map.  A rejected hint falls back to an untouched cold run on a
    fresh context, so hints can only ever save work, never change a
    result.

    ``outer_iterations`` carries the donor's executed round count.  An
    accepted hint reports it as the result's ``outer_iterations`` —
    mirroring how the same-triple warm start reports its stored cold
    count — and uses it to account
    ``adjacent_warm_start_iterations_saved``; when donor and recipient
    analyse identical inputs the hinted result is therefore bit-identical
    to the donor, ``WcrtResult`` equality included.
    """

    response_times: Mapping[int, int]
    outer_iterations: int = 0


@dataclass
class WcrtResult:
    """Outcome of a whole-task-set WCRT analysis.

    Attributes:
        schedulable: ``True`` iff every task's WCRT converged within its
            deadline.
        response_times: WCRT bound per task; for an unschedulable set the
            mapping holds the estimates reached when analysis stopped and
            the failing task maps to a value exceeding its deadline.
        failed_task: first task found unschedulable, if any.
        outer_iterations: outer-loop rounds executed.
        perf: iteration and memo-cache counters of this analysis run.
            Excluded from equality so memoized and reference runs with
            identical verdicts compare equal.
    """

    schedulable: bool
    response_times: Dict[Task, int] = field(default_factory=dict)
    failed_task: Optional[Task] = None
    outer_iterations: int = 0
    perf: Optional[PerfCounters] = field(default=None, compare=False, repr=False)

    def response_time(self, task: Task) -> int:
        """WCRT bound computed for ``task``."""
        return self.response_times[task]


def _hp_rows_for(ctx: AnalysisContext, task: Task) -> Tuple[Tuple[int, int], ...]:
    """The (period, PD) rows of ``task``'s same-core higher-priority tasks."""
    hp_rows = ctx._hp_rows.get(task.priority)
    if hp_rows is None:
        hp_rows = tuple(
            (int(tj.period), int(tj.pd))
            for tj in ctx.taskset.hp_on_core(task, task.core)
        )
        ctx._hp_rows[task.priority] = hp_rows
    return hp_rows


def _apply_once(ctx: AnalysisContext, task: Task, r: int) -> int:
    """One application of Eq. (19) at estimate ``r`` — no convergence logic.

    The strict verification round of a :class:`WarmHint` must test *exact*
    fixedness (``f(r) == r``).  It cannot reuse :func:`_task_fixed_point`,
    which returns ``r`` for any ``f(r) <= r`` and would therefore accept
    estimates strictly above the cold resting point.  Note the converse
    also exists: the window functions are not monotone in ``r``, so a cold
    ascent can overshoot and rest on an ``r`` with ``f(r) < r`` — such a
    map *fails* the strict test and the hint is (harmlessly) discarded.
    Strictness trades a few missed reuses for exactness: an accepted map
    is an exact solution of Eq. (19), the only kind of map a cold run can
    agree with regardless of its trajectory — pinned bit-identical by the
    differential grids and the ``adjacent-warmstart-identity`` oracle.
    """
    if ctx.budget is not None:
        ctx.budget.tick()
    ctx.perf.inner_iterations += 1
    value = int(task.pd) + total_bus_accesses(ctx, task, r) * ctx.platform.d_mem
    for period, pd_j in _hp_rows_for(ctx, task):
        value += -((-r) // period) * pd_j
    return value


def _task_fixed_point(
    ctx: AnalysisContext,
    task: Task,
    start: int,
    config: AnalysisConfig,
) -> Optional[int]:
    """Iterate Eq. (19) for one task from ``start``.

    Returns the fixed point, or ``None`` as soon as the estimate exceeds the
    task's deadline (the iteration is non-decreasing, so it can never come
    back below the deadline).
    """
    d_mem = ctx.platform.d_mem
    hp_rows = _hp_rows_for(ctx, task)
    pd_i = int(task.pd)
    deadline = int(task.deadline)
    perf = ctx.perf
    budget = ctx.budget
    bat = ctx._bat_fns.get(task.priority)
    if bat is None:
        bat = make_bat(ctx, task)
        ctx._bat_fns[task.priority] = bat
    r = start
    for _ in range(config.max_inner_iterations):
        # The tick sits at the iteration boundary, *before* any work of the
        # iteration: an abort therefore never leaves a half-evaluated term
        # behind, and the boundary index is bit-identical across the
        # memoization/bitset/warm-start kernel variants.
        if budget is not None:
            budget.tick()
        perf.inner_iterations += 1
        r_new = pd_i + bat(r) * d_mem
        for period, pd_j in hp_rows:
            r_new += -((-r) // period) * pd_j
        if r_new > deadline:
            return None
        if r_new <= r:
            return r
        r = r_new
    raise ConvergenceError(
        f"WCRT iteration for task {task.name!r} did not converge within "
        f"{config.max_inner_iterations} steps"
    )


def _make_context(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
    counters: PerfCounters,
    budget: Optional[Budget] = None,
) -> AnalysisContext:
    """Fresh analysis context over the task set's shared calculators."""
    return AnalysisContext(
        taskset=taskset,
        platform=platform,
        persistence=config.persistence,
        crpd=CrpdCalculator.shared(
            taskset, config.crpd_approach, config.bitset_kernel
        ),
        cpro=CproCalculator.shared(
            taskset, config.cpro_approach, config.bitset_kernel
        ),
        persistence_in_low=config.persistence_in_low,
        tdma_slot_alignment=config.tdma_slot_alignment,
        memoize=config.memoization,
        array_kernel=config.array_kernel,
        perf=counters,
        budget=budget,
    )


def analyze_taskset(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
    warm_hint: Optional[WarmHint] = None,
) -> WcrtResult:
    """Compute WCRT bounds for every task of ``taskset`` on ``platform``.

    Implements the outer loop of Sec. IV.  Analysis stops early — reporting
    the set unschedulable — as soon as any task's estimate exceeds its
    deadline, which is sound because estimates are non-decreasing.

    With ``config.warm_start`` (the default), a repeat analysis of the same
    (task set, platform, config) triple is seeded from the previously
    converged response-time map and merely *re-verified*: monotonicity of
    Eq. (19) means a converged map passes one outer round unchanged, so the
    replay costs one inner iteration per task instead of the full fixed
    point.  The returned result is bit-identical to the cold run's (it even
    reports the cold run's ``outer_iterations``); only the perf counters
    reveal the shortcut.  If re-verification observes *any* change the seed
    is discarded and a cold run is performed — so a stale seed can slow an
    analysis down but never alter its outcome.

    Each call collects a fresh set of :class:`~repro.perf.PerfCounters`
    (returned as ``result.perf``); pass ``perf`` to additionally accumulate
    them into a caller-owned aggregate, e.g. across a sweep.

    ``budget`` (optional) threads a :class:`~repro.budget.Budget` through
    the fixed points: every inner iteration ticks it, so an over-budget or
    cancelled analysis aborts at the next iteration boundary with a typed
    :class:`~repro.errors.BudgetExceeded` / :class:`~repro.errors.Cancelled`
    whose ``partial`` attribute holds the estimates reached so far.  A
    budget generous enough for the analysis to finish is invisible: the
    result is bit-identical to a budget-less run, and all shared caches
    (derived tables, calculator caches, warm-start seeds) stay exactly as
    consistent after an abort as after a cold start — aborted runs never
    record a warm-start seed, and the per-run memo caches die with the
    run's context.

    ``warm_hint`` (optional) offers an *adjacent* converged map — see
    :class:`WarmHint` — consulted only when no same-triple seed exists and
    ``config.warm_start`` is on.  An accepted hint changes nothing but the
    executed work; a hinted run reports the outer rounds it actually
    executed in ``outer_iterations`` (fewer than the cold count —
    documented semantics change, see docs/PERFORMANCE.md).
    """
    counters = PerfCounters()
    if config.bitset_kernel:
        # Build (or fetch) the task set's interference table up front so the
        # construction is attributed to this run's counters rather than
        # hiding inside the first calculator access.
        InterferenceTable.shared(taskset, perf=counters)
        if config.array_kernel:
            # Batch-compile the per-pair CRPD/CPRO tables (no-op when the
            # sweep layer already compiled this task set's point batch).
            prefill_batch(
                (taskset,),
                config.crpd_approach,
                config.cpro_approach,
                perf=counters,
            )
    counters.analyses += 1
    if budget is not None:
        budget.start()
    seeds: Optional[Dict[Tuple[Platform, AnalysisConfig], _WarmSeed]] = (
        taskset.derived("warm-start-seeds", dict) if config.warm_start else None
    )
    seed_key = (platform, config)
    result: Optional[WcrtResult] = None
    ctx: Optional[AnalysisContext] = None
    try:
        with counters.phase("analysis"):
            if seeds is not None and (stored := seeds.get(seed_key)) is not None:
                ctx = _make_context(taskset, platform, config, counters, budget)
                result = _warm_verify(ctx, stored, config)
            if (
                result is None
                and warm_hint is not None
                and config.warm_start
            ):
                ctx = _make_context(taskset, platform, config, counters, budget)
                result = _hint_seeded(ctx, warm_hint, config)
                if result is not None and seeds is not None:
                    # The hinted run converged to the exact fixed point;
                    # record it so same-triple replays stay warm (they will
                    # re-report this run's executed round count).
                    seeds[seed_key] = (
                        dict(result.response_times),
                        result.outer_iterations,
                    )
            if result is None:
                ctx = _make_context(taskset, platform, config, counters, budget)
                result = _analyze(ctx, taskset, platform, config)
                if seeds is not None and result.schedulable:
                    # Only schedulable maps are replayable: an unschedulable
                    # run stops mid-refinement, and reseeding from its partial
                    # map would not retrace the cold iteration order.
                    seeds[seed_key] = (
                        dict(result.response_times),
                        result.outer_iterations,
                    )
    except AnalysisAborted as abort:
        # Attach the partial result and accounting, then propagate.  No
        # seed was recorded and every shared cache holds only values that
        # are pure functions of the task set, so a rerun is bit-identical
        # to a cold run (pinned by tests/test_budget.py).
        counters.budget_aborts += 1
        abort.partial = WcrtResult(
            schedulable=False,
            response_times=dict(ctx.response_times) if ctx is not None else {},
            outer_iterations=counters.outer_iterations,
            perf=counters,
        )
        if budget is not None:
            abort.iterations = budget.iterations
            abort.elapsed = budget.elapsed()
        if perf is not None:
            perf.merge(counters)
        raise
    result.perf = counters
    if perf is not None:
        perf.merge(counters)
    return result


def _warm_verify(
    ctx: AnalysisContext,
    stored: _WarmSeed,
    config: AnalysisConfig,
) -> Optional[WcrtResult]:
    """Re-verify a previously converged response-time map in one round.

    Seeds every task's estimate with the stored converged value and runs a
    single outer round.  Because Eq. (19) is monotone and the map was a
    fixed point of *identical* inputs, every per-task iteration terminates
    immediately with the seeded value; any deviation means the seed does
    not fit (it should not happen for identical inputs, but correctness
    must not depend on that) and the caller falls back to a cold run.

    Returns the (bit-identical) schedulable result, or ``None`` to request
    the cold fallback.
    """
    seed_map, cold_outer = stored
    taskset = ctx.taskset
    if len(seed_map) != len(taskset):
        return None
    for task in taskset:
        value = seed_map.get(task)
        if value is None:
            return None
        ctx.set_response_time(task, value)
    ctx.perf.outer_iterations += 1
    for task in taskset:
        previous = ctx.response_time(task)
        verified = _task_fixed_point(ctx, task, previous, config)
        if verified != previous:
            return None
    perf = ctx.perf
    perf.warm_starts += 1
    perf.warm_start_iterations_saved += max(0, cold_outer - 1)
    return WcrtResult(
        schedulable=True,
        response_times=dict(ctx.response_times),
        outer_iterations=cold_outer,
    )


def _hint_seeded(
    ctx: AnalysisContext,
    hint: WarmHint,
    config: AnalysisConfig,
) -> Optional[WcrtResult]:
    """Attempt an adjacent-hint-seeded analysis; ``None`` requests cold.

    Returning ``None`` always leaves the caller to rerun on a *fresh*
    context: the hinted attempt may have advanced estimates past their
    cold trajectory, and the epoch-keyed memo entries recorded against
    them must not leak into the fallback.

    The hint gets one strict verification round (see :func:`_apply_once`)
    and is discarded on the first mismatch; any failure shape (deadline
    miss, isolated overrun) is likewise left entirely to the cold
    reference path so rejected hints reproduce it bit-for-bit.
    """
    taskset = ctx.taskset
    d_mem = ctx.platform.d_mem
    hinted = hint.response_times
    starts: Dict[Task, int] = {}
    for task in taskset:
        value = hinted.get(task.priority)
        if value is None:
            return None
        isolated = int(task.pd) + task.md * d_mem
        if isolated > task.deadline:
            # Cold analysis short-circuits before estimates matter; let it.
            return None
        start = max(isolated, int(value))
        if start > task.deadline:
            # The hint claims an over-deadline bound; the verdict (and the
            # failure shape) must come from the cold reference path.
            return None
        starts[task] = start

    perf = ctx.perf
    for task, start in starts.items():
        ctx.set_response_time(task, start)
    perf.outer_iterations += 1
    for task, start in starts.items():
        if _apply_once(ctx, task, start) != start:
            return None
    perf.adjacent_warm_starts += 1
    perf.adjacent_warm_start_iterations_saved += max(0, hint.outer_iterations - 1)
    return WcrtResult(
        schedulable=True,
        response_times=dict(ctx.response_times),
        # Report the donor's round count, exactly as the same-triple warm
        # start reports its stored cold count: a hint between identical
        # problems then reproduces the donor bit for bit.
        outer_iterations=max(1, hint.outer_iterations),
    )


def _analyze(
    ctx: AnalysisContext,
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
) -> WcrtResult:
    d_mem = platform.d_mem
    for task in taskset:
        isolated = int(task.pd) + task.md * d_mem
        if isolated > task.deadline:
            # Even a contention-free job overruns: trivially unschedulable.
            ctx.set_response_time(task, isolated)
            return WcrtResult(
                schedulable=False,
                response_times=dict(ctx.response_times),
                failed_task=task,
            )
        ctx.set_response_time(task, isolated)

    # Remote-epoch snapshots for the convergence shortcut below.  With both
    # approaches window oblivious, a task's Eq. (19) right-hand side
    # depends, besides its own estimate ``r``, only on the response-time
    # estimates of *other* cores (the same-core terms read static
    # parameters and ``r`` itself).  ``ctx.epoch`` minus the task's own
    # core epoch is exactly the number of remote-estimate revisions, so if
    # that count is unchanged since the task's last converged evaluation,
    # re-running the fixed point from the unchanged estimate would
    # terminate immediately with the same value — the round can skip it
    # without evaluating anything.  The multiset approaches void the
    # premise (their window terms read same-core estimates — see
    # ``AnalysisContext.window_oblivious``), so the shortcut stays off
    # there.  Where it applies it fires identically across the kernel
    # variants (it reads no kernel state), so results and iteration
    # boundaries stay bit-identical between them.
    may_skip = ctx.window_oblivious
    # The TDMA and perfect buses read no remote estimates at all — their
    # BAT is a function of the window length and static parameters only —
    # so a task is exactly converged after its first fixed point and every
    # later round can skip it outright, not just while remote estimates
    # hold still.  Freezing the remote count at a constant makes the mark
    # comparison below degrade to "was this task evaluated before".
    local_only = may_skip and ctx.platform.bus_policy in (
        BusPolicy.TDMA,
        BusPolicy.PERFECT,
    )
    core_epochs = ctx._core_epoch
    remote_marks: Dict[Task, int] = {}

    outer = 0
    for outer in range(1, config.max_outer_iterations + 1):
        ctx.perf.outer_iterations += 1
        changed = False
        for task in taskset:
            remote_now = (
                0 if local_only else ctx.epoch - core_epochs.get(task.core, 0)
            )
            if may_skip and remote_marks.get(task) == remote_now:
                continue
            previous = ctx.response_time(task)
            result = _task_fixed_point(ctx, task, previous, config)
            if result is None:
                ctx.set_response_time(task, int(task.deadline) + 1)
                return WcrtResult(
                    schedulable=False,
                    response_times=dict(ctx.response_times),
                    failed_task=task,
                    outer_iterations=outer,
                )
            if result != previous:
                ctx.set_response_time(task, result)
                changed = True
            # Recording the own estimate bumps the own-core and global
            # epochs in lockstep, so the remote count is unchanged by it.
            remote_marks[task] = (
                0 if local_only else ctx.epoch - core_epochs.get(task.core, 0)
            )
        if not changed:
            return WcrtResult(
                schedulable=True,
                response_times=dict(ctx.response_times),
                outer_iterations=outer,
            )
    # The outer loop is monotone over bounded integers, so it does converge
    # eventually; running out of the iteration budget first is answered with
    # the conservative (sound for a sufficient test) verdict "unschedulable".
    return WcrtResult(
        schedulable=False,
        response_times=dict(ctx.response_times),
        failed_task=None,
        outer_iterations=outer,
    )
