"""Decomposition of a task's WCRT bound into its interference sources.

The fixed point of Eq. (19) hides *why* a task's response time is what it
is.  For debugging analyses, explaining schedulability verdicts and
building intuition (which term dominates? how much does persistence save?),
this module re-evaluates every component of the bound at the task's final
response time and reports them separately:

=====================  ====================================================
``processing``         the task's own processing demand ``PD_i``
``core_interference``  same-core higher-priority processing time
``own_demand``         the task's own memory demand ``MD_i`` (time)
``same_core_memory``   same-core higher-priority memory demand (time),
                       after the persistence ``min`` of Lemma 1
``same_core_crpd``     CRPD reloads charged on the task's core (time)
``remote_memory``      higher/equal-priority remote-core demand (time),
                       after the persistence ``min`` of Lemma 2, including
                       carry-out jobs
``remote_crpd``        CRPD reloads charged to remote jobs (time)
``arbitration``        policy-specific extra delay: FP lower-priority
                       blocking, RR slot passes beyond counted demand,
                       TDMA wait slots, plus the ``+1`` blocking access
=====================  ====================================================

The components are exact in the sense that they sum to the recurrence's
right-hand side evaluated at the reported response time.  That sum can be
*strictly below* the stored WCRT bound: the persistence-aware remote bound
(Lemma 2) is not monotone at carry-out boundaries (a new full job enters
the persistence ``min`` while the — persistence-oblivious — carry-out term
resets), and the fixed-point iteration conservatively keeps the larger
value when the recurrence dips.  ``total <= response_time`` always holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import WcrtResult, analyze_taskset
from repro.budget import Budget
from repro.businterference.arbiters import total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.businterference.requests import (
    bao,
    bas,
    carried_out_accesses,
    full_jobs_in_window,
    jobs_in_window,
)
from repro.crpd.approaches import CrpdApproach, CrpdCalculator
from repro.crpd.multiset import ecb_union_multiset_window
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import CproCalculator
from repro.persistence.demand import multi_job_demand


@dataclass(frozen=True)
class WcrtBreakdown:
    """All components of one task's WCRT bound, in cycles."""

    task: Task
    response_time: int
    processing: int
    core_interference: int
    own_demand: int
    same_core_memory: int
    same_core_crpd: int
    remote_memory: int
    remote_crpd: int
    arbitration: int

    @property
    def total(self) -> int:
        """Sum of all components: the recurrence value at ``response_time``.

        Equals ``response_time`` when the stored bound is an exact fixed
        point and is strictly smaller when the outer loop kept a
        conservative value (see the module docstring).
        """
        return (
            self.processing
            + self.core_interference
            + self.own_demand
            + self.same_core_memory
            + self.same_core_crpd
            + self.remote_memory
            + self.remote_crpd
            + self.arbitration
        )

    def shares(self) -> Dict[str, float]:
        """Each component as a fraction of the response time."""
        denominator = max(self.response_time, 1)
        return {
            "processing": self.processing / denominator,
            "core_interference": self.core_interference / denominator,
            "own_demand": self.own_demand / denominator,
            "same_core_memory": self.same_core_memory / denominator,
            "same_core_crpd": self.same_core_crpd / denominator,
            "remote_memory": self.remote_memory / denominator,
            "remote_crpd": self.remote_crpd / denominator,
            "arbitration": self.arbitration / denominator,
        }

    def render(self) -> str:
        """One-task text report."""
        lines = [
            f"WCRT breakdown for {self.task.name!r} "
            f"(R = {self.response_time} cycles)",
        ]
        for label, share in self.shares().items():
            value = getattr(self, label)
            lines.append(f"  {label:<18} {value:>12}  ({share:6.1%})")
        return "\n".join(lines)


def _same_core_parts(
    ctx: AnalysisContext, task: Task, t: int
) -> Tuple[int, int, int]:
    """(hp processing, hp memory accesses, hp CRPD accesses) on own core."""
    processing = 0
    memory = 0
    crpd = 0
    multiset_crpd = ctx.crpd.approach is CrpdApproach.ECB_UNION_MULTISET
    for task_j in ctx.taskset.hp_on_core(task, task.core):
        n_jobs = jobs_in_window(t, int(task_j.period))
        processing += n_jobs * int(task_j.pd)
        isolated = n_jobs * task_j.md
        if ctx.persistence:
            persistent = multi_job_demand(task_j, n_jobs) + ctx.cpro.rho_window(
                task_j, task, n_jobs, t, budget=ctx.budget
            )
            memory += min(isolated, persistent)
        else:
            memory += isolated
        if multiset_crpd:
            crpd += ecb_union_multiset_window(
                ctx.taskset, task, task_j, t, ctx.response_time
            )
        else:
            crpd += n_jobs * ctx.crpd.gamma(task, task_j)
    return processing, memory, crpd


def _remote_parts(ctx: AnalysisContext, task: Task, t: int) -> Tuple[int, int]:
    """(remote memory accesses incl. carry-out, remote CRPD accesses).

    Counts the same jobs as :func:`repro.businterference.requests.bao` for
    every remote core, split into demand and CRPD.
    """
    memory = 0
    crpd = 0
    for core in ctx.platform.cores:
        if core == task.core:
            continue
        for task_l in ctx.taskset.hep_on_core(task, core):
            n_full = full_jobs_in_window(ctx, task, task_l, t)
            gamma = ctx.crpd.gamma(task, task_l)
            isolated = n_full * task_l.md
            if ctx.persistence:
                persistent = multi_job_demand(task_l, n_full) + ctx.cpro.rho_window(
                    task_l, task, n_full, t, carry_in=True, budget=ctx.budget
                )
                memory += min(isolated, persistent)
            else:
                memory += isolated
            memory += carried_out_accesses(ctx, task, task_l, t, n_full)
            crpd += n_full * gamma
    return memory, crpd


def decompose(
    ctx: AnalysisContext, task: Task, response_time: int
) -> WcrtBreakdown:
    """Split the right-hand side of Eq. (19) at window ``response_time``.

    Honours ``ctx.budget`` (one check per task): a breakdown of a huge
    task set under a tight deadline aborts between tasks rather than
    running to completion.
    """
    if ctx.budget is not None:
        ctx.budget.check()
    d_mem = ctx.platform.d_mem
    t = response_time
    core_processing, same_memory, same_crpd = _same_core_parts(ctx, task, t)
    remote_memory, remote_crpd = _remote_parts(ctx, task, t)

    total_accesses = total_bus_accesses(ctx, task, t)
    counted = task.md + same_memory + same_crpd
    policy = ctx.platform.bus_policy
    if policy is BusPolicy.FP or policy is BusPolicy.RR:
        counted += remote_memory + remote_crpd
    if policy is BusPolicy.TDMA or policy is BusPolicy.PERFECT:
        # TDMA/perfect never count remote demand; their remote share is 0.
        remote_memory = 0
        remote_crpd = 0
    if policy is BusPolicy.RR:
        # The slot cap may truncate the remote demand: recompute exactly.
        own = bas(ctx, task, t)
        lowest = ctx.taskset.lowest_priority_task
        capped_remote = sum(
            min(bao(ctx, core, lowest, t), ctx.platform.slot_size * own)
            for core in ctx.platform.cores
            if core != task.core
        )
        counted = own + capped_remote
        remote_memory = capped_remote
        remote_crpd = 0  # folded into the capped remote term
    arbitration_accesses = total_accesses - counted
    if arbitration_accesses < 0:
        raise AnalysisError(
            f"decomposition mismatch for {task.name!r}: "
            f"counted {counted} > total {total_accesses}"
        )
    return WcrtBreakdown(
        task=task,
        response_time=response_time,
        processing=int(task.pd),
        core_interference=core_processing,
        own_demand=task.md * d_mem,
        same_core_memory=same_memory * d_mem,
        same_core_crpd=same_crpd * d_mem,
        remote_memory=remote_memory * d_mem,
        remote_crpd=remote_crpd * d_mem,
        arbitration=arbitration_accesses * d_mem,
    )


def decompose_taskset(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    result: Optional[WcrtResult] = None,
    budget: Optional[Budget] = None,
) -> List[WcrtBreakdown]:
    """Breakdowns for every task, running the analysis if needed.

    For unschedulable sets, tasks analysed before the failure are included
    with their final estimates; the failing task appears with its
    over-deadline estimate.  ``budget`` covers the implied analysis (if
    any) *and* the per-task decomposition passes under one allowance.
    """
    if budget is not None:
        budget.start()
    if result is None:
        result = analyze_taskset(taskset, platform, config, budget=budget)
    # Reuse the task set's shared calculators (same kernel as the analysis
    # run) so the decomposition re-evaluates the recurrence from the very
    # caches the fixed point warmed up.
    ctx = AnalysisContext(
        taskset=taskset,
        platform=platform,
        persistence=config.persistence,
        crpd=CrpdCalculator.shared(
            taskset, config.crpd_approach, config.bitset_kernel
        ),
        cpro=CproCalculator.shared(
            taskset, config.cpro_approach, config.bitset_kernel
        ),
        persistence_in_low=config.persistence_in_low,
        tdma_slot_alignment=config.tdma_slot_alignment,
        budget=budget,
    )
    for task, estimate in result.response_times.items():
        ctx.set_response_time(task, estimate)
    breakdowns = []
    for task in taskset:
        estimate = result.response_times.get(task)
        if estimate is None:
            continue
        breakdowns.append(decompose(ctx, task, estimate))
    return breakdowns
