"""Lockstep multi-sample WCRT engine: many cold fixed points, one loop.

A sweep point analyses tens to hundreds of task sets under the same
platform and :class:`~repro.analysis.config.AnalysisConfig`; the scalar
path of :mod:`repro.analysis.wcrt` walks them one analysis at a time, to
completion, before touching the next.  This module iterates the *cold*
fixed points of a whole batch together as structure-of-arrays **lanes**:

* each lane owns one task set's full scalar state (its
  :class:`~repro.businterference.context.AnalysisContext`, outer-round
  cursor, remote-epoch convergence marks, per-task inner iteration), and
* the driver round-robins the active lanes at task-fixed-point
  granularity: every driver pass runs exactly one task's complete
  Eq. (19) inner fixed point per active lane, so lanes retire, abort and
  tick their budgets interleaved instead of strictly sequentially.

The interleaving granularity is deliberate.  Each inner iteration is
dominated by the lane's bus-arbitration closure (``BAT(r)``), which is a
per-lane compiled plan the fold cannot share, so synchronising lanes at
*iteration* granularity would buy nothing and pay a cross-lane
bookkeeping toll on every step.  The same-core row sum
``Σ ceil(r/T_j) * PD_j`` *is* foldable, and is vectorised per positioned
task over its ``int64`` period/PD row arrays when numpy (the optional
``.[fast]`` extra) is importable and the row set is wide enough to beat
the tight integer loop (:data:`_SOA_MIN_ROWS`); the pure-Python loop is
the reference and the fallback.  Both folds are exact integer
arithmetic, so the backend choice is invisible in the results.

Bit-identity discipline
-----------------------

Every lane executes *exactly* the operation sequence of the scalar
reference (:func:`repro.analysis.wcrt.analyze_taskset` with
``lockstep_kernel=False``): the same per-analysis preamble (interference
table build, batch prefill, warm-seed verification, adjacent-hint
seeding), the same isolated-WCET precheck, the same outer-round /
remote-epoch skip structure, the same inner-iteration boundaries — each
lane's :class:`~repro.budget.Budget` is ticked at its own boundary, its
perf counters bump per lane, and a lane retires the moment the scalar path
would have returned (convergence, deadline miss, budget abort, iteration
exhaustion) without perturbing any other lane.  Only the *interleaving*
across lanes differs, and lanes share no mutable state beyond the
``TaskSet.derived`` stores, whose entries are pure functions of the task
set.  The ``lockstep-identity`` oracle of :mod:`repro.verify` and
``TestLockstepIsInvisible`` pin the equivalence on every fuzz case, with
numpy present and absent.

Budget semantics: iteration ceilings are exact per lane (each lane ticks
only at its own boundaries).  Wall-clock budgets measure real elapsed
time, which in a lockstep batch includes the co-scheduled work of the
other lanes — a wall budget generous enough for the batch is invisible,
exactly as a budget generous enough for a scalar run is, and an abort
still leaves every shared cache and warm-seed store sound.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import (
    WarmHint,
    WcrtResult,
    _hint_seeded,
    _hp_rows_for,
    _make_context,
    _warm_verify,
    analyze_taskset,
)
from repro.budget import Budget
from repro.businterference.arbiters import make_bat
from repro.businterference.context import AnalysisContext
from repro.errors import AnalysisAborted, AnalysisError, ConvergenceError
from repro.model.interference import (
    InterferenceTable,
    note_array_kernel_unavailable,
    prefill_batch,
)
from repro.model.platform import BusPolicy, Platform
from repro.model.task import TaskSet
from repro.perf import PerfCounters

try:  # Optional acceleration only — never a hard dependency.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

#: Conservative magnitude ceiling for the vectorised ``int64`` fold: any
#: operand or partial sum at or above this falls back to the (exact)
#: pure-Python fold for the affected step.  ``2**62`` leaves a full bit of
#: headroom over the worst-case sum of two guarded operands.
_INT64_GUARD = 2 ** 62

#: Minimum higher-priority row count before the vectorised fold engages.
#: Below this the tight Python integer loop wins outright — numpy's
#: per-call overhead (three ufunc dispatches plus an array build per
#: positioning) only amortises over wide rows.
_SOA_MIN_ROWS = 24


@dataclass
class LaneOutcome:
    """Terminal state of one lane of a batch analysis.

    Exactly one of ``result``/``error`` is set: ``result`` carries the
    lane's :class:`~repro.analysis.wcrt.WcrtResult` (bit-identical to the
    scalar path's), ``error`` the exception the scalar path would have
    raised for this task set — an :class:`~repro.errors.AnalysisAborted`
    with its ``partial`` attached, a
    :class:`~repro.errors.ConvergenceError`, or whatever else the analysis
    surfaced.  Errors are per-lane data here so one poisoned sample cannot
    take down its batch; callers re-raise where scalar semantics demand it.
    """

    result: Optional[WcrtResult] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _Lane:
    """Scalar-path state of one task set, advanced one inner step at a time."""

    __slots__ = (
        "taskset", "ctx", "config", "budget", "counters", "seeds",
        "seed_key", "tasks", "n_tasks", "may_skip", "local_only",
        "core_epochs", "remote_marks", "outer", "cursor", "changed",
        "task", "r", "previous", "pd_i", "deadline_i", "hp_rows", "bat",
        "inner_done", "result", "error",
    )

    def __init__(self, taskset, ctx, config, budget, counters, seeds, seed_key):
        self.taskset = taskset
        self.ctx = ctx
        self.config = config
        self.budget = budget
        self.counters = counters
        self.seeds = seeds
        self.seed_key = seed_key
        self.tasks = tuple(taskset)
        self.n_tasks = len(self.tasks)
        self.task = None
        self.result = None
        self.error = None


def _retire(lane: _Lane, result: WcrtResult) -> None:
    lane.result = result
    lane.counters.lane_retirements += 1


def _retire_abort(lane: _Lane, abort: AnalysisAborted) -> None:
    """Mirror of ``analyze_taskset``'s ``except AnalysisAborted`` block."""
    lane.counters.budget_aborts += 1
    abort.partial = WcrtResult(
        schedulable=False,
        response_times=dict(lane.ctx.response_times),
        outer_iterations=lane.counters.outer_iterations,
        perf=lane.counters,
    )
    if lane.budget is not None:
        abort.iterations = lane.budget.iterations
        abort.elapsed = lane.budget.elapsed()
    lane.error = abort
    lane.counters.lane_retirements += 1


def _retire_error(lane: _Lane, error: BaseException) -> None:
    lane.error = error
    lane.counters.lane_retirements += 1


def _lane_start(lane: _Lane) -> bool:
    """The isolated-WCET precheck and round bookkeeping of ``_analyze``.

    Returns ``False`` when the lane retired on iteration zero (some task
    overruns its deadline even contention free).
    """
    ctx = lane.ctx
    d_mem = ctx.platform.d_mem
    for task in lane.taskset:
        isolated = int(task.pd) + task.md * d_mem
        if isolated > task.deadline:
            ctx.set_response_time(task, isolated)
            _retire(
                lane,
                WcrtResult(
                    schedulable=False,
                    response_times=dict(ctx.response_times),
                    failed_task=task,
                ),
            )
            return False
        ctx.set_response_time(task, isolated)
    lane.may_skip = ctx.window_oblivious
    lane.local_only = lane.may_skip and ctx.platform.bus_policy in (
        BusPolicy.TDMA,
        BusPolicy.PERFECT,
    )
    lane.core_epochs = ctx._core_epoch
    lane.remote_marks = {}
    lane.outer = 0
    lane.cursor = lane.n_tasks  # forces the first round on the next advance
    lane.changed = True
    return True


def _advance(lane: _Lane) -> bool:
    """Position the lane at its next inner iteration (round/skip logic).

    Walks the outer-round structure of ``_analyze`` — end-of-round
    convergence and exhaustion exits, remote-epoch skips — until the lane
    either retires (returns ``False``) or rests at the first inner
    iteration of some task's fixed point (returns ``True``).
    """
    ctx = lane.ctx
    while True:
        if lane.cursor >= lane.n_tasks:
            if not lane.changed:
                _retire(
                    lane,
                    WcrtResult(
                        schedulable=True,
                        response_times=dict(ctx.response_times),
                        outer_iterations=lane.outer,
                    ),
                )
                return False
            if lane.outer >= lane.config.max_outer_iterations:
                # Ran out of outer budget: conservative (sound) verdict.
                _retire(
                    lane,
                    WcrtResult(
                        schedulable=False,
                        response_times=dict(ctx.response_times),
                        failed_task=None,
                        outer_iterations=lane.outer,
                    ),
                )
                return False
            lane.outer += 1
            lane.counters.outer_iterations += 1
            lane.changed = False
            lane.cursor = 0
            continue  # re-check: an empty round must fall out, not index
        task = lane.tasks[lane.cursor]
        remote_now = (
            0
            if lane.local_only
            else ctx.epoch - lane.core_epochs.get(task.core, 0)
        )
        if lane.may_skip and lane.remote_marks.get(task) == remote_now:
            lane.cursor += 1
            continue
        lane.task = task
        lane.previous = ctx.response_time(task)
        lane.r = lane.previous
        lane.pd_i = int(task.pd)
        lane.deadline_i = int(task.deadline)
        lane.hp_rows = _hp_rows_for(ctx, task)
        bat = ctx._bat_fns.get(task.priority)
        if bat is None:
            bat = make_bat(ctx, task)
            ctx._bat_fns[task.priority] = bat
        lane.bat = bat
        lane.inner_done = 0
        return True


def _finish_task(lane: _Lane, result: int) -> None:
    """Per-task epilogue of the outer loop (estimate + remote mark)."""
    ctx = lane.ctx
    task = lane.task
    if result != lane.previous:
        ctx.set_response_time(task, result)
        lane.changed = True
    lane.remote_marks[task] = (
        0 if lane.local_only else ctx.epoch - lane.core_epochs.get(task.core, 0)
    )
    lane.cursor += 1
    lane.task = None


def _fold_rows(lane: _Lane):
    """Bind the positioned task's vectorised fold rows, or ``None``.

    Returns the ``(periods, pds)`` ``int64`` arrays when the vectorised
    row fold is engaged for this positioning; ``None`` sends every
    iteration through the tight Python integer loop instead — numpy
    absent, rows narrower than :data:`_SOA_MIN_ROWS`, a non-positive
    period (which must surface the scalar path's ``ZeroDivisionError``),
    or static magnitudes that could push an ``int64`` intermediate at or
    past :data:`_INT64_GUARD`.  Estimates never exceed the task deadline
    while a fixed point runs, so ``Σ ceil(deadline/T_j) * PD_j`` bounds
    the row sum exactly.
    """
    if _np is None or len(lane.hp_rows) < _SOA_MIN_ROWS:
        return None
    if lane.deadline_i >= _INT64_GUARD:
        return None
    bound = 0
    for period, pd_j in lane.hp_rows:
        if period <= 0:
            return None
        bound += -((-lane.deadline_i) // period) * pd_j
    if bound >= _INT64_GUARD:
        return None
    periods = _np.array([p for p, _ in lane.hp_rows], dtype=_np.int64)
    pds = _np.array([pd for _, pd in lane.hp_rows], dtype=_np.int64)
    return periods, pds


def _run_fixed_point(lane: _Lane, d_mem: int) -> bool:
    """Run the positioned task's inner fixed point to its scalar exit.

    The loop body mirrors the scalar path exactly — the budget tick sits
    at each iteration boundary *before* any work, then the Eq. (19) fold,
    the deadline exit, convergence, and the iteration ceiling — with the
    same-core row sum dispatched to the vectorised fold whenever
    :func:`_fold_rows` engaged it for this positioning.  Returns ``True``
    when the lane survives (the task's fixed point converged), ``False``
    when it retired here.
    """
    ctx = lane.ctx
    task = lane.task
    budget = lane.budget
    counters = lane.counters
    bat = lane.bat
    hp_rows = lane.hp_rows
    pd_i = lane.pd_i
    deadline_i = lane.deadline_i
    max_inner = lane.config.max_inner_iterations
    rows = _fold_rows(lane)
    r = lane.r
    inner_done = 0
    try:
        while True:
            if budget is not None:
                budget.tick()
            counters.inner_iterations += 1
            base = pd_i + bat(r) * d_mem
            if rows is not None and base < _INT64_GUARD:
                periods, pds = rows
                r_new = base + int(
                    (-((-r) // periods) * pds).sum(dtype=_np.int64)
                )
            else:
                r_new = base
                for period, pd_j in hp_rows:
                    r_new += -((-r) // period) * pd_j
            if r_new > deadline_i:
                ctx.set_response_time(task, int(task.deadline) + 1)
                _retire(
                    lane,
                    WcrtResult(
                        schedulable=False,
                        response_times=dict(ctx.response_times),
                        failed_task=task,
                        outer_iterations=lane.outer,
                    ),
                )
                return False
            if r_new <= r:
                _finish_task(lane, r)
                return True
            inner_done += 1
            if inner_done >= max_inner:
                _retire_error(
                    lane,
                    ConvergenceError(
                        f"WCRT iteration for task {task.name!r} did "
                        f"not converge within {max_inner} steps"
                    ),
                )
                return False
            r = r_new
    except AnalysisAborted as abort:
        _retire_abort(lane, abort)
        return False
    except Exception as error:  # noqa: BLE001 — per-lane isolation
        _retire_error(lane, error)
        return False


def _run_lockstep(lanes: List[_Lane], d_mem: int) -> None:
    """Drive every lane's cold fixed points to retirement, in lockstep.

    Each pass of the driver loop gives every active lane one outer round:
    positioning (round/skip bookkeeping, where the lane may retire on
    end-of-round convergence or outer exhaustion) and then task fixed
    points until the lane's cursor wraps.  The round is the natural
    lockstep quantum — lanes advance their outer recurrences together,
    a pathological sample cannot starve its batch mates by more than one
    round, and each lane's context stays hot for a whole pass over its
    tasks (interleaving at *task* granularity measurably thrashes the
    lanes' working sets against each other).  A skip-heavy positioning
    can roll a lane through more than one round in a pass; the bound is
    "at least one round per pass", not "exactly one".
    """
    active = [lane for lane in lanes if _lane_start(lane)]
    while active:
        survivors: List[_Lane] = []
        for lane in active:
            survived = None
            while survived is None:
                if lane.task is None and not _advance(lane):
                    survived = False
                elif not _run_fixed_point(lane, d_mem):
                    survived = False
                elif lane.cursor >= lane.n_tasks:
                    survived = True  # round boundary: yield to batch mates
            if survived:
                survivors.append(lane)
        active = survivors


def _lane_preamble(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
    budget: Optional[Budget],
    warm_hint: Optional[WarmHint],
):
    """Everything ``analyze_taskset`` does before the cold ``_analyze``.

    Returns ``(outcome, lane)``: a terminal :class:`LaneOutcome` when the
    warm-seed/hint machinery (or an abort inside it) resolved the lane, or
    a cold :class:`_Lane` ready for the lockstep loop.
    """
    counters = PerfCounters()
    if config.bitset_kernel:
        InterferenceTable.shared(taskset, perf=counters)
        if config.array_kernel:
            prefill_batch(
                (taskset,),
                config.crpd_approach,
                config.cpro_approach,
                perf=counters,
            )
    counters.analyses += 1
    if budget is not None:
        budget.start()
    seeds = (
        taskset.derived("warm-start-seeds", dict) if config.warm_start else None
    )
    seed_key = (platform, config)
    result: Optional[WcrtResult] = None
    ctx: Optional[AnalysisContext] = None
    try:
        with counters.phase("analysis"):
            if seeds is not None and (stored := seeds.get(seed_key)) is not None:
                ctx = _make_context(taskset, platform, config, counters, budget)
                result = _warm_verify(ctx, stored, config)
            if result is None and warm_hint is not None and config.warm_start:
                ctx = _make_context(taskset, platform, config, counters, budget)
                result = _hint_seeded(ctx, warm_hint, config)
                if result is not None and seeds is not None:
                    seeds[seed_key] = (
                        dict(result.response_times),
                        result.outer_iterations,
                    )
    except AnalysisAborted as abort:
        counters.budget_aborts += 1
        abort.partial = WcrtResult(
            schedulable=False,
            response_times=dict(ctx.response_times) if ctx is not None else {},
            outer_iterations=counters.outer_iterations,
            perf=counters,
        )
        if budget is not None:
            abort.iterations = budget.iterations
            abort.elapsed = budget.elapsed()
        return LaneOutcome(error=abort), None
    except Exception as error:  # noqa: BLE001 — per-lane isolation
        return LaneOutcome(error=error), None
    if result is not None:
        result.perf = counters
        return LaneOutcome(result=result), None
    ctx = _make_context(taskset, platform, config, counters, budget)
    return None, _Lane(taskset, ctx, config, budget, counters, seeds, seed_key)


def analyze_taskset_batch(
    tasksets: Sequence[TaskSet],
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budgets: Optional[Sequence[Optional[Budget]]] = None,
    warm_hints: Optional[Sequence[Optional[WarmHint]]] = None,
) -> List[LaneOutcome]:
    """Analyse every task set of a batch, lockstepping the cold lanes.

    The batch equivalent of calling
    :func:`~repro.analysis.wcrt.analyze_taskset` once per task set, in
    order: per-lane results (and per-lane exceptions, returned as
    :class:`LaneOutcome.error` instead of raised) are bit-identical to the
    scalar sequence.  ``budgets``/``warm_hints`` (optional, parallel to
    ``tasksets``) carry each lane's :class:`~repro.budget.Budget` and
    adjacent :class:`~repro.analysis.wcrt.WarmHint`.

    With ``config.lockstep_kernel`` off — or a batch of at most one — the
    scalar path runs per lane unchanged (the differential reference).
    Otherwise lanes the warm-seed/hint preamble does not resolve iterate
    together in one structure-of-arrays loop (``lockstep_batches`` /
    ``lane_retirements`` perf counters); numpy's absence engages the
    bit-identical pure-Python fold and is reported through
    :func:`~repro.model.interference.note_array_kernel_unavailable`.
    """
    tasksets = list(tasksets)
    n = len(tasksets)
    budgets = list(budgets) if budgets is not None else [None] * n
    warm_hints = list(warm_hints) if warm_hints is not None else [None] * n
    if len(budgets) != n or len(warm_hints) != n:
        raise AnalysisError(
            f"batch shape mismatch: {n} tasksets, {len(budgets)} budgets, "
            f"{len(warm_hints)} hints"
        )
    outcomes: List[Optional[LaneOutcome]] = [None] * n
    if not config.lockstep_kernel or n <= 1:
        for i, taskset in enumerate(tasksets):
            try:
                result = analyze_taskset(
                    taskset,
                    platform,
                    config,
                    perf=perf,
                    budget=budgets[i],
                    warm_hint=warm_hints[i],
                )
                outcomes[i] = LaneOutcome(result=result)
            except Exception as error:  # noqa: BLE001 — per-lane isolation
                outcomes[i] = LaneOutcome(error=error)
        return outcomes

    if _np is None:
        note_array_kernel_unavailable(perf)
    lanes: List[Tuple[int, _Lane]] = []
    for i, taskset in enumerate(tasksets):
        resolved, lane = _lane_preamble(
            taskset, platform, config, budgets[i], warm_hints[i]
        )
        if resolved is not None:
            outcomes[i] = resolved
            if resolved.result is not None or isinstance(
                resolved.error, AnalysisAborted
            ):
                # The scalar path merges counters into the caller's
                # aggregate on success and on budget aborts only.
                if perf is not None:
                    perf.merge(
                        resolved.result.perf
                        if resolved.result is not None
                        else resolved.error.partial.perf
                    )
        else:
            lanes.append((i, lane))

    if lanes:
        batch_counters = PerfCounters()
        batch_counters.lockstep_batches += 1
        # A batch keeps every lane's context alive at once, so each
        # generational collection triggered inside the loop traverses the
        # whole batch — measured at 10-25% of the loop for 20 lanes.  The
        # loop's own garbage is modest (ints, small dicts), so collection
        # is paused for its duration, never globally.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            with batch_counters.phase("analysis"):
                _run_lockstep([lane for _, lane in lanes], platform.d_mem)
        finally:
            if gc_was_enabled:
                gc.enable()
        if perf is not None:
            perf.merge(batch_counters)

    for i, lane in lanes:
        if lane.error is not None:
            outcomes[i] = LaneOutcome(error=lane.error)
            if isinstance(lane.error, AnalysisAborted) and perf is not None:
                perf.merge(lane.counters)
            continue
        result = lane.result
        if lane.seeds is not None and result.schedulable:
            # Same rule as the scalar path: only schedulable (converged)
            # maps are replayable seeds.
            lane.seeds[lane.seed_key] = (
                dict(result.response_times),
                result.outer_iterations,
            )
        result.perf = lane.counters
        if perf is not None:
            perf.merge(lane.counters)
        outcomes[i] = LaneOutcome(result=result)
    return outcomes
