"""Configuration of a schedulability analysis run."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crpd.approaches import CrpdApproach
from repro.errors import AnalysisError
from repro.persistence.cpro import CproApproach


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs of the WCRT analysis (Sec. IV).

    Attributes:
        persistence: use the cache-persistence-aware bounds of Lemmas 1-2
            instead of the baseline Eq. (1)/(3) of Davis et al.
        crpd_approach: CRPD bound used for :math:`\\gamma` (paper: ECB-union).
        cpro_approach: CPRO bound used for :math:`\\hat{\\rho}`
            (paper: CPRO-union).
        persistence_in_low: extend persistence awareness to the FP bus's
            lower-priority remote term (off in the paper; see Eq. 7).
        tdma_slot_alignment: charge each access one extra slot of TDMA
            waiting.  Eq. (9) implicitly assumes requests are issued at
            slot boundaries; against a bus that serves a request anywhere
            inside the owner's window, each access can additionally wait
            out the unusable tail of a window.  Off by default (faithful
            to the paper); the simulator validation enables it.
        max_outer_iterations: bound on the outer loop that resolves the
            circular dependency between task response times.
        max_inner_iterations: bound on the per-task fixed point of Eq. (19).
        memoization: cache the window-level interference terms
            (:math:`W`, :math:`BAO`, :math:`BAO_{low}`, multiset CRPD) on
            their inputs plus the epoch of the response-time estimates they
            read.  Bit-identical results either way — the un-memoized path
            exists as the reference for the differential correctness test
            and costs a multiple of the run time.
        bitset_kernel: evaluate the cache-set intersection/union terms
            (Eq. 2 CRPD, Eq. 14 CPRO, the multiset refinements) from the
            task set's precompiled
            :class:`~repro.model.interference.InterferenceTable` as packed
            integer AND+popcount operations instead of ``frozenset``
            algebra.  Bit-identical results either way — the set-based
            path is retained as the reference for the ``bitset-identity``
            differential oracle of :mod:`repro.verify`.
        array_kernel: batch-compile the per-pair CRPD/CPRO cardinality
            tables of a task set (and, when analysing a whole sweep
            point, of every sampled task set at once) through
            :class:`~repro.model.interference.BatchInterferenceTable`
            before the fixed point runs, instead of filling the pair
            caches lazily one lookup at a time.  When numpy is importable
            (optional extra: ``pip install .[fast]``) and every cache
            mask fits in 64 bits, the popcounts of a batch are lowered to
            one vectorised ``uint64`` ``bitwise_count`` call; otherwise a
            tight pure-Python loop over the packed masks is used.  Either
            way the counts are exact integers, so results are
            bit-identical to the lazy path — which is retained as the
            reference for the ``batch-identity`` differential oracle.
            Requires ``bitset_kernel``; ignored without it.
        lockstep_kernel: allow the lockstep multi-sample engine
            (:mod:`repro.analysis.lockstep`) to iterate the cold fixed
            points of *several* task sets together as structure-of-arrays
            lanes — one inner Eq. (19) step per lane per round, with the
            same-core interference folds evaluated across all active
            lanes at once (vectorised via numpy when the optional
            ``.[fast]`` extra is importable, through a bit-identical
            pure-Python array fallback otherwise).  Every lane executes
            exactly the operation sequence of the scalar path — same
            iteration boundaries, same budget ticks, same early exits —
            so results are bit-identical; the scalar path is retained as
            the differential reference under ``lockstep_kernel=False``
            and pinned by the ``lockstep-identity`` oracle.  Only
            consulted by the batch entry points
            (:func:`repro.analysis.lockstep.analyze_taskset_batch`,
            :func:`repro.analysis.schedulability.check_schedulability_batch`);
            single-analysis calls never pay lane bookkeeping.
        warm_start: seed each task's response-time iteration from the
            converged estimates of a previous analysis of the *same*
            (task set, platform, config) triple, re-verifying the fixed
            point instead of re-deriving it from the cold isolated-WCET
            seeds.  Monotonicity of Eq. (19) makes re-verification exact:
            a converged map passes one outer round unchanged; any change
            (non-convergence) falls back to a cold run.  Results are
            bit-identical to a cold run except for ``outer_iterations``
            in the perf counters.  Seeds are only kept for schedulable
            results — an unschedulable run leaves a partially-refined map
            whose replay would not be order-independent.
    """

    persistence: bool = True
    crpd_approach: CrpdApproach = CrpdApproach.ECB_UNION
    cpro_approach: CproApproach = CproApproach.UNION
    persistence_in_low: bool = False
    tdma_slot_alignment: bool = False
    max_outer_iterations: int = 64
    max_inner_iterations: int = 4096
    memoization: bool = True
    bitset_kernel: bool = True
    array_kernel: bool = True
    lockstep_kernel: bool = True
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.max_outer_iterations <= 0:
            raise AnalysisError(
                f"max_outer_iterations must be positive, "
                f"got {self.max_outer_iterations}"
            )
        if self.max_inner_iterations <= 0:
            raise AnalysisError(
                f"max_inner_iterations must be positive, "
                f"got {self.max_inner_iterations}"
            )

    def with_persistence(self, persistence: bool) -> "AnalysisConfig":
        """Copy of this configuration with persistence toggled."""
        return replace(self, persistence=persistence)


#: The paper's persistence-aware analysis (Lemmas 1-2 + ECB-union + CPRO-union).
PERSISTENCE_AWARE = AnalysisConfig(persistence=True)

#: The baseline analysis of Davis et al. (CRPD only, no persistence).
BASELINE = AnalysisConfig(persistence=False)
