"""Weighted schedulability measure (Bastoni, Brandenburg, Anderson, 2010).

Used for the multi-parameter sweeps of Fig. 3.  For a parameter value ``p``
and a set of experiments, each consisting of a task set with total
utilisation :math:`u_\\tau` and a boolean schedulability verdict
:math:`S(\\tau, p)`:

.. math::

    W(p) = \\frac{\\sum_\\tau u_\\tau \\cdot S(\\tau, p)}{\\sum_\\tau u_\\tau}

Weighting by utilisation condenses a 3-D plot (parameter x utilisation x
schedulability ratio) into 2-D while emphasising the harder, high-utilisation
task sets.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.errors import AnalysisError


def weighted_schedulability(results: Iterable[Tuple[float, bool]]) -> float:
    """Compute :math:`W(p)` from ``(utilisation, schedulable)`` pairs.

    Raises :class:`~repro.errors.AnalysisError` when the pairs carry no
    weight at all (empty input or all-zero utilisations), since the measure
    is undefined there.
    """
    total_weight = 0.0
    achieved = 0.0
    for utilization, schedulable in results:
        if utilization < 0:
            raise AnalysisError(
                f"utilisation must be non-negative, got {utilization}"
            )
        total_weight += utilization
        if schedulable:
            achieved += utilization
    if total_weight == 0.0:
        raise AnalysisError("weighted schedulability of zero total utilisation")
    return achieved / total_weight
