"""Task-set schedulability tests, including the "perfect bus" reference.

:func:`is_schedulable` is the predicate evaluated for every generated task
set in the paper's experiments.  For the FP/RR/TDMA arbiters it is the WCRT
analysis of Eq. (19); for :data:`~repro.model.platform.BusPolicy.PERFECT`
it reproduces the "perfect bus" line of Fig. 2: the memory bus is assumed
contention free whenever its long-run utilisation does not exceed one, so a
task set is deemed schedulable iff

* the steady-state bus utilisation is at most 1, and
* every task meets its deadline under contention-free memory accesses
  (each still costing ``d_mem``).

Because the perfect bus is meant as an *upper bound* on what any arbiter
could achieve, its bus-utilisation check charges each task its residual
demand ``MDr`` — the steady-state per-job demand once all persistent blocks
are cached — rather than the cold-start demand ``MD``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import WarmHint, WcrtResult, analyze_taskset
from repro.budget import Budget
from repro.errors import ModelError
from repro.perf import PerfCounters
from repro.model.platform import BusPolicy, Platform
from repro.model.task import TaskSet
from repro.resultcache import (
    ResultCache,
    request_fingerprint,
    result_from_payload,
    result_payload,
)


@dataclass
class SchedulabilityVerdict:
    """Outcome of a schedulability test with supporting detail."""

    schedulable: bool
    wcrt: Optional[WcrtResult] = None
    bus_utilization: Optional[float] = None
    reason: str = ""


def _analyze(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
    perf: Optional[PerfCounters],
    budget: Optional[Budget],
    warm_hint: Optional[WarmHint],
    result_cache: Optional[ResultCache],
) -> WcrtResult:
    """Run (or durably recall) one WCRT analysis.

    With a ``result_cache`` the request is fingerprinted
    (:func:`repro.resultcache.request_fingerprint`) and served from disk
    when a valid entry exists — the rebuilt result is bit-identical to a
    cold compute because the bounds are deterministic functions of the
    fingerprinted triple.  Completed verdicts are written back; budget
    aborts raise out of :func:`analyze_taskset` before the store, so
    partials never land in the cache.
    """
    if result_cache is None:
        return analyze_taskset(
            taskset, platform, config, perf=perf, budget=budget,
            warm_hint=warm_hint,
        )
    fingerprint = request_fingerprint(taskset, platform, config)
    payload = result_cache.get(fingerprint, perf=perf)
    if payload is not None:
        try:
            return result_from_payload(taskset, payload)
        except ModelError:
            # An entry that validated but does not line up with this task
            # set (possible only under fingerprint collision or a foreign
            # file renamed into place): drop it and recompute.
            result_cache.invalidate(fingerprint)
    result = analyze_taskset(
        taskset, platform, config, perf=perf, budget=budget,
        warm_hint=warm_hint,
    )
    result_cache.put(fingerprint, result_payload(result), perf=perf)
    return result


def check_schedulability(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
    warm_hint: Optional[WarmHint] = None,
    result_cache: Optional[ResultCache] = None,
) -> SchedulabilityVerdict:
    """Full schedulability verdict with the underlying WCRT result.

    ``perf`` optionally accumulates the analysis' performance counters
    into a caller-owned aggregate (see :mod:`repro.perf`).  Repeat calls
    with the same (task set, platform, config) reuse the task set's shared
    interference table, calculator caches and warm-start seeds (see
    :func:`repro.analysis.wcrt.analyze_taskset`), so re-checking a verdict
    is much cheaper than the first check — and bit-identical to it.
    ``budget`` threads a :class:`~repro.budget.Budget` through the WCRT
    analysis (see :mod:`repro.budget`); ``warm_hint`` offers an adjacent
    converged map to seed it (see
    :class:`~repro.analysis.wcrt.WarmHint`); ``result_cache`` consults a
    persistent :class:`~repro.resultcache.ResultCache` before running the
    WCRT iteration and stores completed verdicts back into it.
    """
    d_mem = platform.d_mem

    # Quick necessary condition: the processing-plus-memory demand of every
    # core must fit, otherwise the WCRT iteration would only discover the
    # overload after walking all the way to the first deadline miss.
    for core in taskset.cores:
        if taskset.core_utilization(core, d_mem) > 1.0:
            return SchedulabilityVerdict(
                schedulable=False,
                reason=f"core {core} utilisation exceeds 1",
            )

    if platform.bus_policy is BusPolicy.PERFECT:
        bus_util = taskset.bus_utilization(d_mem, residual=True)
        if bus_util > 1.0:
            return SchedulabilityVerdict(
                schedulable=False,
                bus_utilization=bus_util,
                reason="bus utilisation exceeds 1",
            )
        result = _analyze(
            taskset, platform, config, perf, budget, warm_hint, result_cache
        )
        return SchedulabilityVerdict(
            schedulable=result.schedulable,
            wcrt=result,
            bus_utilization=bus_util,
            reason="" if result.schedulable else "deadline miss (perfect bus)",
        )

    result = _analyze(
        taskset, platform, config, perf, budget, warm_hint, result_cache
    )
    if result.schedulable:
        return SchedulabilityVerdict(schedulable=True, wcrt=result)
    failed = result.failed_task.name if result.failed_task else "<outer loop>"
    return SchedulabilityVerdict(
        schedulable=False,
        wcrt=result,
        reason=f"deadline miss: {failed}",
    )


def is_schedulable(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
    warm_hint: Optional[WarmHint] = None,
    result_cache: Optional[ResultCache] = None,
) -> bool:
    """Boolean schedulability predicate used by the experiment sweeps."""
    return check_schedulability(
        taskset, platform, config, perf=perf, budget=budget,
        warm_hint=warm_hint, result_cache=result_cache,
    ).schedulable
