"""Task-set schedulability tests, including the "perfect bus" reference.

:func:`is_schedulable` is the predicate evaluated for every generated task
set in the paper's experiments.  For the FP/RR/TDMA arbiters it is the WCRT
analysis of Eq. (19); for :data:`~repro.model.platform.BusPolicy.PERFECT`
it reproduces the "perfect bus" line of Fig. 2: the memory bus is assumed
contention free whenever its long-run utilisation does not exceed one, so a
task set is deemed schedulable iff

* the steady-state bus utilisation is at most 1, and
* every task meets its deadline under contention-free memory accesses
  (each still costing ``d_mem``).

Because the perfect bus is meant as an *upper bound* on what any arbiter
could achieve, its bus-utilisation check charges each task its residual
demand ``MDr`` — the steady-state per-job demand once all persistent blocks
are cached — rather than the cold-start demand ``MD``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import WarmHint, WcrtResult, analyze_taskset
from repro.budget import Budget
from repro.errors import ModelError
from repro.perf import PerfCounters
from repro.model.platform import BusPolicy, Platform
from repro.model.task import TaskSet
from repro.resultcache import (
    ResultCache,
    request_fingerprint,
    result_from_payload,
    result_payload,
)


@dataclass
class SchedulabilityVerdict:
    """Outcome of a schedulability test with supporting detail."""

    schedulable: bool
    wcrt: Optional[WcrtResult] = None
    bus_utilization: Optional[float] = None
    reason: str = ""


def _analyze(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig,
    perf: Optional[PerfCounters],
    budget: Optional[Budget],
    warm_hint: Optional[WarmHint],
    result_cache: Optional[ResultCache],
) -> WcrtResult:
    """Run (or durably recall) one WCRT analysis.

    With a ``result_cache`` the request is fingerprinted
    (:func:`repro.resultcache.request_fingerprint`) and served from disk
    when a valid entry exists — the rebuilt result is bit-identical to a
    cold compute because the bounds are deterministic functions of the
    fingerprinted triple.  Completed verdicts are written back; budget
    aborts raise out of :func:`analyze_taskset` before the store, so
    partials never land in the cache.
    """
    if result_cache is None:
        return analyze_taskset(
            taskset, platform, config, perf=perf, budget=budget,
            warm_hint=warm_hint,
        )
    fingerprint = request_fingerprint(taskset, platform, config)
    payload = result_cache.get(fingerprint, perf=perf)
    if payload is not None:
        try:
            return result_from_payload(taskset, payload)
        except ModelError:
            # An entry that validated but does not line up with this task
            # set (possible only under fingerprint collision or a foreign
            # file renamed into place): drop it and recompute.
            result_cache.invalidate(fingerprint)
    result = analyze_taskset(
        taskset, platform, config, perf=perf, budget=budget,
        warm_hint=warm_hint,
    )
    result_cache.put(fingerprint, result_payload(result), perf=perf)
    return result


def check_schedulability(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
    warm_hint: Optional[WarmHint] = None,
    result_cache: Optional[ResultCache] = None,
) -> SchedulabilityVerdict:
    """Full schedulability verdict with the underlying WCRT result.

    ``perf`` optionally accumulates the analysis' performance counters
    into a caller-owned aggregate (see :mod:`repro.perf`).  Repeat calls
    with the same (task set, platform, config) reuse the task set's shared
    interference table, calculator caches and warm-start seeds (see
    :func:`repro.analysis.wcrt.analyze_taskset`), so re-checking a verdict
    is much cheaper than the first check — and bit-identical to it.
    ``budget`` threads a :class:`~repro.budget.Budget` through the WCRT
    analysis (see :mod:`repro.budget`); ``warm_hint`` offers an adjacent
    converged map to seed it (see
    :class:`~repro.analysis.wcrt.WarmHint`); ``result_cache`` consults a
    persistent :class:`~repro.resultcache.ResultCache` before running the
    WCRT iteration and stores completed verdicts back into it.
    """
    d_mem = platform.d_mem

    # Quick necessary condition: the processing-plus-memory demand of every
    # core must fit, otherwise the WCRT iteration would only discover the
    # overload after walking all the way to the first deadline miss.
    for core in taskset.cores:
        if taskset.core_utilization(core, d_mem) > 1.0:
            return SchedulabilityVerdict(
                schedulable=False,
                reason=f"core {core} utilisation exceeds 1",
            )

    if platform.bus_policy is BusPolicy.PERFECT:
        bus_util = taskset.bus_utilization(d_mem, residual=True)
        if bus_util > 1.0:
            return SchedulabilityVerdict(
                schedulable=False,
                bus_utilization=bus_util,
                reason="bus utilisation exceeds 1",
            )
        result = _analyze(
            taskset, platform, config, perf, budget, warm_hint, result_cache
        )
        return SchedulabilityVerdict(
            schedulable=result.schedulable,
            wcrt=result,
            bus_utilization=bus_util,
            reason="" if result.schedulable else "deadline miss (perfect bus)",
        )

    result = _analyze(
        taskset, platform, config, perf, budget, warm_hint, result_cache
    )
    if result.schedulable:
        return SchedulabilityVerdict(schedulable=True, wcrt=result)
    failed = result.failed_task.name if result.failed_task else "<outer loop>"
    return SchedulabilityVerdict(
        schedulable=False,
        wcrt=result,
        reason=f"deadline miss: {failed}",
    )


def check_schedulability_batch(
    tasksets,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budgets=None,
    warm_hints=None,
    result_cache: Optional[ResultCache] = None,
):
    """Schedulability verdicts for a whole batch of task sets.

    The batch equivalent of calling :func:`check_schedulability` once per
    task set, in order — same prechecks, same reasons, same result-cache
    interaction — except that the cold WCRT fixed points of the batch run
    together through the lockstep engine
    (:func:`repro.analysis.lockstep.analyze_taskset_batch`) when
    ``config.lockstep_kernel`` allows.  Returns one
    :class:`SchedulabilityVerdict` *or* exception per lane (exceptions are
    returned, not raised, so one poisoned sample cannot take down its
    batch — callers re-raise where scalar semantics demand it).
    """
    from repro.analysis.lockstep import analyze_taskset_batch

    tasksets = list(tasksets)
    n = len(tasksets)
    budgets = list(budgets) if budgets is not None else [None] * n
    warm_hints = list(warm_hints) if warm_hints is not None else [None] * n
    d_mem = platform.d_mem
    perfect = platform.bus_policy is BusPolicy.PERFECT

    verdicts = [None] * n
    bus_utils = [None] * n
    pending = []  # lanes that need the WCRT analysis
    for i, taskset in enumerate(tasksets):
        overloaded = None
        for core in taskset.cores:
            if taskset.core_utilization(core, d_mem) > 1.0:
                overloaded = core
                break
        if overloaded is not None:
            verdicts[i] = SchedulabilityVerdict(
                schedulable=False,
                reason=f"core {overloaded} utilisation exceeds 1",
            )
            continue
        if perfect:
            bus_util = taskset.bus_utilization(d_mem, residual=True)
            if bus_util > 1.0:
                verdicts[i] = SchedulabilityVerdict(
                    schedulable=False,
                    bus_utilization=bus_util,
                    reason="bus utilisation exceeds 1",
                )
                continue
            bus_utils[i] = bus_util
        pending.append(i)

    # Durable recall first, in lane order, exactly as the scalar wrapper.
    analyses = []  # lanes the cache could not serve
    fingerprints = {}
    results = {}
    for i in pending:
        if result_cache is None:
            analyses.append(i)
            continue
        fingerprint = request_fingerprint(tasksets[i], platform, config)
        fingerprints[i] = fingerprint
        payload = result_cache.get(fingerprint, perf=perf)
        if payload is not None:
            try:
                results[i] = result_from_payload(tasksets[i], payload)
                continue
            except ModelError:
                result_cache.invalidate(fingerprint)
        analyses.append(i)

    outcomes = analyze_taskset_batch(
        [tasksets[i] for i in analyses],
        platform,
        config,
        perf=perf,
        budgets=[budgets[i] for i in analyses],
        warm_hints=[warm_hints[i] for i in analyses],
    )
    for i, outcome in zip(analyses, outcomes):
        if outcome.error is not None:
            verdicts[i] = outcome.error
            continue
        results[i] = outcome.result
        if result_cache is not None:
            result_cache.put(
                fingerprints[i], result_payload(outcome.result), perf=perf
            )

    for i in pending:
        result = results.get(i)
        if result is None:
            continue  # errored lane, verdict already holds the exception
        if perfect:
            verdicts[i] = SchedulabilityVerdict(
                schedulable=result.schedulable,
                wcrt=result,
                bus_utilization=bus_utils[i],
                reason=(
                    "" if result.schedulable else "deadline miss (perfect bus)"
                ),
            )
        elif result.schedulable:
            verdicts[i] = SchedulabilityVerdict(schedulable=True, wcrt=result)
        else:
            failed = (
                result.failed_task.name if result.failed_task else "<outer loop>"
            )
            verdicts[i] = SchedulabilityVerdict(
                schedulable=False,
                wcrt=result,
                reason=f"deadline miss: {failed}",
            )
    return verdicts


def is_schedulable(
    taskset: TaskSet,
    platform: Platform,
    config: AnalysisConfig = AnalysisConfig(),
    perf: Optional[PerfCounters] = None,
    budget: Optional[Budget] = None,
    warm_hint: Optional[WarmHint] = None,
    result_cache: Optional[ResultCache] = None,
) -> bool:
    """Boolean schedulability predicate used by the experiment sweeps."""
    return check_schedulability(
        taskset, platform, config, perf=perf, budget=budget,
        warm_hint=warm_hint, result_cache=result_cache,
    ).schedulable
