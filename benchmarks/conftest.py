"""Shared fixtures for the benchmark harness.

Every figure/table of the paper has one benchmark module.  The experiment
benchmarks run at a reduced scale by default (the paper uses 1000 task sets
per sweep point, which takes hours in pure Python); set ``REPRO_SAMPLES``
to raise the scale, e.g.::

    REPRO_SAMPLES=1000 pytest benchmarks/ --benchmark-only -s

The regenerated series are attached to each benchmark's ``extra_info`` and
printed to stdout, so ``-s`` shows the tables the paper's figures plot.
"""

import os

import pytest

from repro.experiments.config import SweepSettings


def _env_samples(default: int) -> int:
    return int(os.environ.get("REPRO_SAMPLES", default))


@pytest.fixture(scope="session")
def fig2_settings() -> SweepSettings:
    """Sweep settings for the Fig. 2 utilisation curves."""
    return SweepSettings(
        samples=_env_samples(40),
        seed=2020,
        utilizations=tuple(round(0.1 * step, 1) for step in range(1, 11)),
    )


@pytest.fixture(scope="session")
def weighted_settings() -> SweepSettings:
    """Sweep settings for the Fig. 3 weighted-schedulability sweeps."""
    return SweepSettings(
        samples=_env_samples(15),
        seed=2020,
        utilizations=tuple(round(0.1 * step, 1) for step in range(1, 10)),
    )


def attach_series(benchmark, result) -> None:
    """Record a result object's series in the benchmark report."""
    if hasattr(result, "ratios"):
        benchmark.extra_info["series"] = {
            label: [round(v, 4) for v in series]
            for label, series in result.ratios.items()
        }
    elif hasattr(result, "measures"):
        benchmark.extra_info["series"] = {
            label: [round(v, 4) for v in series]
            for label, series in result.measures.items()
        }
