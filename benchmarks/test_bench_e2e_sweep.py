"""End-to-end sweep benchmark: the full Fig. 2 pipeline, wall to wall.

One measured round is one complete Fig. 2-scale campaign — task-set
generation for every (point, sample) item, batched pair-table compilation
per sweep point, the dominance-ordered variant evaluation with
cross-point warm-start chains, and the final ratio aggregation.  This is
the regime the batched sweep-point kernel was built for, so its median is
gated by the bench-smoke job (``benchmarks/thresholds.json``, see
``scripts/bench_smoke.py``): a regression here means the compounding of
the kernel layers broke, even if every micro benchmark still looks fine.

The two variants deliberately gate the two production regimes:

* ``test_bench_e2e_fig2_sweep`` (sequential) measures the
  *resident-replay* regime.  The process-global
  :class:`~repro.experiments.stateplane.StatePlane` survives between
  rounds, so round one pays the full cold pipeline while later rounds
  replay resident task sets through the (strictly re-verified,
  bit-identical) warm-start path — exactly what a resident sweep worker
  or ``repro.service.pool`` worker sees on repeat analyses.  The median
  of three rounds therefore sits on the warm side; a regression here
  means the residency or warm-replay layers broke.
* ``test_bench_e2e_fig2_sweep_jobs2`` measures the *cold parallel*
  regime: each round spawns a fresh two-worker pool, so the workers'
  state planes start empty every round and the full generation + compile
  + cold-analysis pipeline is paid each time (warmth only accrues within
  a round, across the chunks each worker serves).
"""

from dataclasses import replace

from conftest import attach_series

from repro.experiments.fig2 import run_fig2


def _check_curves(result, settings):
    # Sanity only — the full shape assertions live in test_bench_fig2.py.
    # Every curve is a valid ratio series over the ten utilisation points,
    # persistence-aware FP dominates its baseline, and the perfect bus
    # dominates everything.
    for label, series in result.ratios.items():
        assert len(series) == len(settings.utilizations), label
        assert all(0.0 <= value <= 1.0 for value in series), label
    assert all(
        a >= b for a, b in zip(result.ratios["FP-P"], result.ratios["FP"])
    )
    perfect = result.ratios["Perfect"]
    for label, series in result.ratios.items():
        assert all(p >= v for p, v in zip(perfect, series)), label


def test_bench_e2e_fig2_sweep(benchmark, fig2_settings):
    result = benchmark.pedantic(
        run_fig2, args=(fig2_settings,), rounds=3, iterations=1
    )
    attach_series(benchmark, result)
    _check_curves(result, fig2_settings)


def test_bench_e2e_fig2_sweep_jobs2(benchmark, fig2_settings):
    """The same campaign through the two-worker resident supervisor.

    Gated at the same 3x factor as the sequential run: a regression here
    with the sequential bench healthy points at the parallel plane itself
    (pool spawn cost, chunk sizing, the resident LRU, work stealing).
    """
    settings = replace(fig2_settings, jobs=2)
    result = benchmark.pedantic(
        run_fig2, args=(settings,), rounds=3, iterations=1
    )
    attach_series(benchmark, result)
    _check_curves(result, settings)
