"""End-to-end sweep benchmark: the full Fig. 2 pipeline, wall to wall.

One measured round is one complete Fig. 2-scale campaign — task-set
generation for every (point, sample) item, batched pair-table compilation
per sweep point, the dominance-ordered variant evaluation with
cross-point warm-start chains, and the final ratio aggregation.  This is
the regime the batched sweep-point kernel was built for, so its median is
gated by the bench-smoke job (``benchmarks/thresholds.json``, see
``scripts/bench_smoke.py``): a regression here means the compounding of
the kernel layers broke, even if every micro benchmark still looks fine.

Unlike ``test_bench_micro.py``'s warm-re-analysis regime, every round
here is cold: the task sets are regenerated from the sweep seeds, so no
derived tables, warm-start seeds or pair caches survive between rounds.
"""

from conftest import attach_series

from repro.experiments.fig2 import run_fig2


def test_bench_e2e_fig2_sweep(benchmark, fig2_settings):
    result = benchmark.pedantic(
        run_fig2, args=(fig2_settings,), rounds=3, iterations=1
    )
    attach_series(benchmark, result)

    # Sanity only — the full shape assertions live in test_bench_fig2.py.
    # Every curve is a valid ratio series over the ten utilisation points,
    # persistence-aware FP dominates its baseline, and the perfect bus
    # dominates everything.
    for label, series in result.ratios.items():
        assert len(series) == len(fig2_settings.utilizations), label
        assert all(0.0 <= value <= 1.0 for value in series), label
    assert all(
        a >= b for a, b in zip(result.ratios["FP-P"], result.ratios["FP"])
    )
    perfect = result.ratios["Perfect"]
    for label, series in result.ratios.items():
        assert all(p >= v for p, v in zip(perfect, series)), label
