"""Benchmark E4 — regenerate Fig. 3a (weighted schedulability vs cores).

Paper shape: more cores mean more bus interference, so every curve falls;
persistence-aware analyses dominate their baselines at every core count.
"""

from conftest import attach_series

from repro.experiments.fig3 import run_fig3a

CORES = (2, 4, 6, 8)


def test_bench_fig3a(benchmark, weighted_settings):
    result = benchmark.pedantic(
        run_fig3a,
        args=(weighted_settings,),
        kwargs={"core_counts": CORES},
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    print()
    print(result.render())

    for policy in ("FP", "RR", "TDMA"):
        aware = result.series(f"{policy}-P")
        base = result.series(policy)
        # Persistence-aware dominates at every core count.
        assert all(a >= b for a, b in zip(aware, base))
        # Schedulability collapses as cores are added (2 -> 8 cores).
        assert aware[-1] < aware[0]
        assert base[-1] <= base[0]

    # The gap is visible on the strongest arbiter at the default core count.
    four_core = CORES.index(4)
    assert result.series("FP-P")[four_core] > result.series("FP")[four_core]
