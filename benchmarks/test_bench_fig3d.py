"""Benchmark E7 — regenerate Fig. 3d (weighted schedulability vs slot size).

Paper shape: larger RR/TDMA slot counts per core increase the worst-case
waiting of every access (Eq. 8/9), so all four curves fall with ``s``, and
the persistence-aware gain is largest at small ``s``.
"""

from conftest import attach_series

from repro.experiments.fig3 import run_fig3d

SLOTS = (1, 2, 3, 4, 5, 6)


def test_bench_fig3d(benchmark, weighted_settings):
    result = benchmark.pedantic(
        run_fig3d,
        args=(weighted_settings,),
        kwargs={"slot_sizes": SLOTS},
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    print()
    print(result.render())

    for policy in ("RR", "TDMA"):
        aware = result.series(f"{policy}-P")
        base = result.series(policy)
        assert all(a >= b for a, b in zip(aware, base))
        # Larger slot sizes degrade schedulability end to end.
        assert aware[-1] <= aware[0]
        assert base[-1] <= base[0]

    # The persistence gap narrows as s grows (RR, s=1 vs s=6).
    gap_small = result.series("RR-P")[0] - result.series("RR")[0]
    gap_large = result.series("RR-P")[-1] - result.series("RR")[-1]
    assert gap_small >= gap_large - 0.05
