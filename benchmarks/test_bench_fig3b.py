"""Benchmark E5 — regenerate Fig. 3b (weighted schedulability vs d_mem).

Paper shape: longer memory reload times shrink every curve (memory time
dominates), and the advantage of the persistence-aware analyses is largest
at small ``d_mem``.
"""

from conftest import attach_series

from repro.experiments.fig3 import run_fig3b

D_MEM_US = (2, 4, 6, 8, 10)


def test_bench_fig3b(benchmark, weighted_settings):
    result = benchmark.pedantic(
        run_fig3b,
        args=(weighted_settings,),
        kwargs={"d_mem_microseconds": D_MEM_US},
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    print()
    print(result.render())

    for policy in ("FP", "RR", "TDMA"):
        aware = result.series(f"{policy}-P")
        base = result.series(policy)
        assert all(a >= b for a, b in zip(aware, base))
        # Growing d_mem degrades schedulability end to end.
        assert aware[-1] <= aware[0]
        assert base[-1] <= base[0]

    # The absolute persistence gain shrinks as d_mem grows (2 us vs 10 us).
    gain_small = result.series("FP-P")[0] - result.series("FP")[0]
    gain_large = result.series("FP-P")[-1] - result.series("FP")[-1]
    assert gain_small >= gain_large - 0.05
