"""Benchmark E1-E3 — regenerate Fig. 2 (a: FP, b: RR, c: TDMA).

Reproduces the paper's headline experiment: schedulability ratio versus
per-core utilisation for the three bus arbiters, with and without cache
persistence, plus the perfect-bus upper bound.  The assertions encode the
*shape* the paper reports:

* persistence-aware curves dominate their baselines everywhere;
* the maximum gain is tens of percentage points (paper: up to 70/65/50 pp
  for FP/RR/TDMA);
* FP outperforms RR outperforms TDMA;
* the perfect bus dominates everything.
"""

from conftest import attach_series

from repro.experiments.fig2 import run_fig2


def _series_area(series):
    return sum(series)


def test_bench_fig2(benchmark, fig2_settings):
    result = benchmark.pedantic(
        run_fig2, args=(fig2_settings,), rounds=1, iterations=1
    )
    attach_series(benchmark, result)
    benchmark.extra_info["max_gaps_pp"] = {
        k: round(100 * v, 1) for k, v in result.gaps.items()
    }
    print()
    print(result.render())

    # Persistence-aware dominates the baseline pointwise.
    for policy in ("FP", "RR", "TDMA"):
        aware = result.ratios[f"{policy}-P"]
        base = result.ratios[policy]
        assert all(a >= b for a, b in zip(aware, base))

    # Headline gaps: tens of percentage points for every arbiter.
    assert result.gaps["FP"] >= 0.30
    assert result.gaps["RR"] >= 0.30
    assert result.gaps["TDMA"] >= 0.20

    # Policy ordering: FP >= RR >= TDMA (in schedulable area).
    assert _series_area(result.ratios["FP-P"]) >= _series_area(result.ratios["RR-P"])
    assert _series_area(result.ratios["RR-P"]) >= _series_area(result.ratios["TDMA-P"])
    assert _series_area(result.ratios["FP"]) >= _series_area(result.ratios["TDMA"])

    # The perfect bus dominates every analysis.
    perfect = result.ratios["Perfect"]
    for label, series in result.ratios.items():
        assert all(p >= v for p, v in zip(perfect, series)), label
