"""Micro-benchmarks of the library's hot paths.

These use pytest-benchmark's normal auto-calibrated timing (many rounds):

* one full WCRT analysis of a paper-default task set (32 tasks, 4 cores);
* the per-pair CPRO/CRPD cache-set term kernel from cold calculator caches;
* static parameter extraction of the heaviest benchmark model;
* task-set generation;
* one simulator run of a small scenario.

Note that ``test_bench_wcrt_analysis`` re-analyses the *same* task-set
object every round, so from the second round on it measures the
warm-started re-verification path (plus the shared interference table and
calculator caches) — exactly the regime sweep re-runs and repeated
schedulability checks operate in.  ``test_bench_cpro_terms`` isolates the
bitmask kernel itself by rebuilding the calculators (cold pair caches)
each round.
"""

import random

from repro.analysis import PERSISTENCE_AWARE, analyze_taskset
from repro.cacheanalysis.extraction import extract_parameters
from repro.crpd.approaches import CrpdApproach, CrpdCalculator
from repro.experiments.config import default_platform
from repro.generation import generate_taskset
from repro.model.platform import BusPolicy, Platform
from repro.persistence.cpro import CproApproach, CproCalculator
from repro.program.malardalen import benchmark_program, reference_geometry
from repro.sim import (
    ScenarioSpec,
    build_scenario,
    simulate,
    workload_from_programs,
)


def test_bench_wcrt_analysis(benchmark):
    platform = default_platform()
    taskset = generate_taskset(random.Random(1), platform, 0.3)
    result = benchmark(analyze_taskset, taskset, platform, PERSISTENCE_AWARE)
    assert result.response_times


def test_bench_cpro_terms(benchmark):
    """Pairwise CPRO eviction counts + CRPD gammas from cold pair caches.

    Fresh calculators every round (the shared interference table persists,
    as it does across real analysis runs), so each round pays the full
    AND+popcount kernel once per task pair rather than a dict probe.
    """
    platform = default_platform()
    taskset = generate_taskset(random.Random(3), platform, 0.5)
    tasks = tuple(taskset)

    def evaluate() -> int:
        cpro = CproCalculator(taskset, CproApproach.UNION)
        crpd = CrpdCalculator(taskset, CrpdApproach.ECB_UNION)
        total = 0
        for task_i in tasks:
            for task_j in tasks:
                if task_i is task_j:
                    continue
                total += cpro.eviction_count(task_j, task_i)
                if (
                    task_j.core == task_i.core
                    and task_j.priority < task_i.priority
                ):
                    total += crpd.gamma(task_i, task_j)
        return total

    total = benchmark(evaluate)
    assert total > 0


def test_bench_extraction_nsichneu(benchmark):
    program = benchmark_program("nsichneu")
    geometry = reference_geometry()
    params = benchmark(extract_parameters, program, geometry)
    assert len(params.ecbs) == 256


def test_bench_taskset_generation(benchmark):
    platform = default_platform()

    def generate():
        return generate_taskset(random.Random(7), platform, 0.5)

    taskset = benchmark(generate)
    assert len(taskset) == 32


def test_bench_simulator(benchmark):
    platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.RR)
    scenario = build_scenario(
        [ScenarioSpec("lcdnum", 0), ScenarioSpec("cnt", 1)], platform
    )
    workload = workload_from_programs(scenario.taskset, platform, scenario.programs)
    duration = int(max(t.period for t in scenario.taskset)) * 5

    result = benchmark(simulate, workload, platform, duration)
    assert result.stats


def test_bench_verify_fuzz(benchmark):
    """Fuzz-campaign throughput: a fixed seeded batch across all case
    kinds and every oracle (tracked as scenarios-per-second via the
    benchmark's ops/s column)."""
    from repro.verify import fuzz

    report = benchmark(fuzz, max_cases=8, seed=2020)
    assert report.passed
    assert report.cases == 8
