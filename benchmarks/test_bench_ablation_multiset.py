"""Ablation bench — multiset refinements of CRPD and CPRO (extensions).

The paper fixes per-job ECB-union CRPD and CPRO-union; the RTSS 2011/2017
literature it builds on also defines window-level *multiset* refinements.
This bench quantifies how much schedulability those refinements add on top
of the paper's configuration.
"""

import random

from repro.analysis import AnalysisConfig, is_schedulable
from repro.crpd.approaches import CrpdApproach
from repro.experiments.config import default_platform
from repro.generation import generate_taskset
from repro.persistence.cpro import CproApproach

UTILIZATIONS = (0.4, 0.5, 0.6)
SAMPLES = 25

CONFIGS = {
    "paper (per-job union)": AnalysisConfig(persistence=True),
    "+ multiset CRPD": AnalysisConfig(
        persistence=True, crpd_approach=CrpdApproach.ECB_UNION_MULTISET
    ),
    "+ multiset CPRO": AnalysisConfig(
        persistence=True, cpro_approach=CproApproach.MULTISET
    ),
    "+ both multisets": AnalysisConfig(
        persistence=True,
        crpd_approach=CrpdApproach.ECB_UNION_MULTISET,
        cpro_approach=CproApproach.MULTISET,
    ),
}


def _run_ablation():
    platform = default_platform()
    counts = {name: 0 for name in CONFIGS}
    total = 0
    for utilization in UTILIZATIONS:
        rng = random.Random(7000 + int(utilization * 100))
        for _ in range(SAMPLES):
            taskset = generate_taskset(rng, platform, utilization)
            total += 1
            for name, config in CONFIGS.items():
                counts[name] += is_schedulable(taskset, platform, config)
    return {name: counts[name] / total for name in CONFIGS}


def test_bench_ablation_multiset(benchmark):
    ratios = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["schedulable_ratio"] = {
        name: round(r, 4) for name, r in ratios.items()
    }
    print()
    print("Multiset ablation (FP bus, schedulable ratio):")
    for name, ratio in ratios.items():
        print(f"  {name:<24} {ratio:.3f}")

    # The refinements never lose to the paper's configuration.
    paper = ratios["paper (per-job union)"]
    assert ratios["+ multiset CRPD"] >= paper
    assert ratios["+ multiset CPRO"] >= paper
    assert ratios["+ both multisets"] >= max(
        ratios["+ multiset CRPD"], ratios["+ multiset CPRO"]
    ) - 0.02
