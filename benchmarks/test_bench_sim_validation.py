"""Validation bench — analytical bounds vs the discrete-event simulator.

Runs one fixed 2-core scenario per bus policy, simulating 15 hyperperiods,
and reports the slack between the observed worst response time and the
analytical WCRT bound.  Bounds must hold for every policy; for the perfect
bus on an otherwise idle core they are *exactly* tight on the first job.
"""

from repro.analysis import AnalysisConfig, analyze_taskset
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.sim import (
    ScenarioSpec,
    build_scenario,
    simulate,
    workload_from_programs,
)

CONFIG = AnalysisConfig(persistence=True, tdma_slot_alignment=True)

SPECS = [
    ScenarioSpec("lcdnum", 0, period_factor=6.0),
    ScenarioSpec("bs", 0, period_factor=8.0),
    ScenarioSpec("cnt", 1, period_factor=6.0),
    ScenarioSpec("insertsort", 1, period_factor=10.0),
]

POLICIES = (BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA, BusPolicy.PERFECT)


def _run_all():
    rows = []
    for policy in POLICIES:
        platform = Platform(
            num_cores=2,
            cache=CacheGeometry(num_sets=256),
            d_mem=10,
            bus_policy=policy,
            slot_size=2,
        )
        scenario = build_scenario(SPECS, platform)
        analysis = analyze_taskset(scenario.taskset, platform, CONFIG)
        workload = workload_from_programs(
            scenario.taskset, platform, scenario.programs
        )
        duration = int(max(t.period for t in scenario.taskset)) * 15
        observed = simulate(workload, platform, duration=duration)
        for task in scenario.taskset:
            stats = observed.of(task)
            rows.append(
                (
                    policy.value,
                    task.name,
                    analysis.response_time(task),
                    stats.max_response_time,
                    stats.max_job_bus_accesses,
                    task.md,
                )
            )
    return rows


def test_bench_sim_validation(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print(f"{'bus':<9}{'task':<15}{'bound':>9}{'observed':>10}{'slack':>8}"
          f"{'acc':>6}{'MD':>5}")
    slacks = []
    for policy, name, bound, observed, accesses, md in rows:
        slack = (bound - observed) / bound
        slacks.append(slack)
        print(f"{policy:<9}{name:<15}{bound:>9}{observed:>10}{slack:>8.1%}"
              f"{accesses:>6}{md:>5}")
        assert observed <= bound, (policy, name)
        assert accesses <= md, (policy, name)
    benchmark.extra_info["mean_slack"] = round(sum(slacks) / len(slacks), 4)
