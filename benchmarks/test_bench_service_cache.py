"""Service request-path benchmark: durable cache hit vs. cold compute.

One measured operation is one ``AnalysisService.handle()`` call — the
full admission / fingerprint / cache / breaker path — against an
in-process worker pool, so the numbers isolate the service core from
process-spawn and HTTP costs:

* **cold** — every round starts from an invalidated fingerprint, so the
  request is fingerprinted, analysed and written back to disk;
* **warm** — the entry is primed once and every round is a durable cache
  hit: fingerprint, disk read, checksum re-validation, id rewrite.

The warm median is gated by the bench-smoke job
(``benchmarks/thresholds.json``): the whole point of the result cache is
that a hit costs microseconds-to-milliseconds instead of a WCRT fixed
point, so a hit becoming as slow as a compute (a broken index, a
re-validation slip into re-analysis) is a genuine regression even though
all verdicts stay bit-identical.
"""

import json
import random

import pytest

from repro.experiments import default_platform
from repro.generation import generate_taskset
from repro.resultcache import request_fingerprint
from repro.serialization import taskset_to_json
from repro.service import AnalysisService, ServiceConfig
from repro.service.pool import service_worker
from repro.service.protocol import parse_request


class InProcessPool:
    """Runs the worker function inline (no processes, no watchdog)."""

    def run(self, document):
        return service_worker(document)

    def allowance_for(self, budget_seconds):
        return None

    def close(self):
        pass


@pytest.fixture(scope="module")
def document():
    platform = default_platform()
    taskset = generate_taskset(random.Random(11), platform, 0.4)
    envelope = json.loads(taskset_to_json(taskset, platform))
    return {"id": "bench", "taskset": envelope}


@pytest.fixture()
def service(tmp_path):
    instance = AnalysisService(
        ServiceConfig(cache_dir=str(tmp_path)), pool=InProcessPool()
    )
    yield instance
    instance.close()


def _fingerprint(document):
    request = parse_request(document)
    return request_fingerprint(request.taskset, request.platform, request.config)


def test_bench_service_cache_cold(benchmark, service, document):
    fingerprint = _fingerprint(document)

    def cold():
        status, body = service.handle(document)
        assert status == 200 and body["status"] == "ok"
        assert "cache" not in body  # every round really computed

    def drop_entry():
        # (pedantic setup must return None, not invalidate's bool)
        service.cache.invalidate(fingerprint)

    benchmark.pedantic(cold, setup=drop_entry, rounds=10, iterations=1)


def test_bench_service_cache_warm(benchmark, service, document):
    status, cold = service.handle(document)
    assert status == 200 and cold["status"] == "ok"

    def warm():
        status, body = service.handle(document)
        assert status == 200 and body.get("cache") == "hit"
        return body

    body = benchmark(warm)
    stripped = {k: v for k, v in body.items() if k != "cache"}
    assert stripped == {k: v for k, v in cold.items() if k != "cache"}
