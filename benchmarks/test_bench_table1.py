"""Benchmark E8 — regenerate Table I (benchmark parameter extraction).

Times the full static cache analysis of all 15 benchmark models at the
reference geometry (uncached, the real analysis cost) and checks the
calibration contract: footprint sizes and PD match the canonical rows
exactly, MD within 5%.
"""

from repro.cacheanalysis.extraction import extract_parameters
from repro.experiments.table1 import run_table1
from repro.program.malardalen import ALL_MODELS, reference_geometry


def _extract_all():
    geometry = reference_geometry()
    return [extract_parameters(program, geometry) for program in ALL_MODELS]


def test_bench_table1(benchmark):
    extractions = benchmark(_extract_all)
    assert len(extractions) == 25

    result = run_table1()
    print()
    print(result.render())

    for row in result.rows:
        dataset, model = row.dataset, row.model
        # Footprint sizes and PD are calibrated exactly.
        assert model.n_ecb == dataset.n_ecb, row.name
        assert model.n_pcb == dataset.n_pcb, row.name
        assert model.n_ucb == dataset.n_ucb, row.name
        assert model.pd == dataset.pd, row.name
        # Demand within 5% (the table's MD/MDr semantics cannot always be
        # realised by a footprint model; see DESIGN.md).
        assert abs(model.md - dataset.md) <= max(2, 0.05 * dataset.md), row.name
