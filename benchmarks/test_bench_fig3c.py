"""Benchmark E6 — regenerate Fig. 3c (weighted schedulability vs cache size).

Benchmark parameters are re-derived per cache size through the synthetic
program models (the paper re-ran its Heptane extraction per size).  Paper
shape: larger caches help everybody, but the persistence-aware analyses
improve faster because bigger caches mean more PCBs.
"""

from conftest import attach_series

from repro.experiments.fig3 import run_fig3c

CACHE_SETS = (32, 64, 128, 256, 512, 1024)


def test_bench_fig3c(benchmark, weighted_settings):
    result = benchmark.pedantic(
        run_fig3c,
        args=(weighted_settings,),
        kwargs={"cache_sets": CACHE_SETS},
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, result)
    print()
    print(result.render())

    for policy in ("FP", "RR", "TDMA"):
        aware = result.series(f"{policy}-P")
        base = result.series(policy)
        assert all(a >= b for a, b in zip(aware, base))
        # Bigger caches never hurt (end to end).
        assert aware[-1] >= aware[0]

    # Persistence-aware analyses benefit more from cache growth than the
    # baselines do (FP, smallest vs largest cache).
    aware_growth = result.series("FP-P")[-1] - result.series("FP-P")[0]
    base_growth = result.series("FP")[-1] - result.series("FP")[0]
    assert aware_growth >= base_growth
