"""Benchmark E9 — Fig. 1: the worked example, checked bit-for-bit.

Unlike the statistical experiments this one is exact: all nine derived
quantities (CRPD, BAS/BAO with and without persistence, multi-job demand,
CPRO, total RR-bus accesses) must equal the paper's published values.
"""

from repro.experiments.fig1 import run_fig1


def test_bench_fig1(benchmark):
    result = benchmark(run_fig1)
    print()
    print(result.render())
    assert result.all_match
