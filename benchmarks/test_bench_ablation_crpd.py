"""Ablation bench — CRPD approach (ECB-union vs UCB-only vs ECB-only).

The paper fixes the ECB-union approach of Altmeyer et al. for the
:math:`\\gamma` terms.  This ablation quantifies that design choice: the
two classic coarser bounds are sound but strictly more pessimistic, so the
schedulable area can only shrink when they replace ECB-union.
"""

import random

from repro.analysis import AnalysisConfig, is_schedulable
from repro.crpd.approaches import CrpdApproach
from repro.experiments.config import default_platform
from repro.generation import generate_taskset

UTILIZATIONS = (0.2, 0.3, 0.4, 0.5)
SAMPLES = 25

APPROACHES = (
    CrpdApproach.ECB_UNION,
    CrpdApproach.UCB_ONLY,
    CrpdApproach.ECB_ONLY,
    CrpdApproach.NONE,
)


def _run_ablation():
    platform = default_platform()
    counts = {approach: 0 for approach in APPROACHES}
    for utilization in UTILIZATIONS:
        rng = random.Random(5000 + int(utilization * 100))
        tasksets = [
            generate_taskset(rng, platform, utilization) for _ in range(SAMPLES)
        ]
        for taskset in tasksets:
            for approach in APPROACHES:
                config = AnalysisConfig(persistence=True, crpd_approach=approach)
                counts[approach] += is_schedulable(taskset, platform, config)
    total = len(UTILIZATIONS) * SAMPLES
    return {approach: counts[approach] / total for approach in APPROACHES}


def test_bench_ablation_crpd(benchmark):
    ratios = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["schedulable_ratio"] = {
        a.value: round(r, 4) for a, r in ratios.items()
    }
    print()
    print("CRPD ablation (persistence-aware FP bus, schedulable ratio):")
    for approach, ratio in ratios.items():
        print(f"  {approach.value:<12} {ratio:.3f}")

    # ECB-union dominates the coarser sound bounds...
    assert ratios[CrpdApproach.ECB_UNION] >= ratios[CrpdApproach.UCB_ONLY]
    assert ratios[CrpdApproach.ECB_UNION] >= ratios[CrpdApproach.ECB_ONLY]
    # ...and ignoring CRPD entirely (unsound) upper-bounds everything.
    assert ratios[CrpdApproach.NONE] >= ratios[CrpdApproach.ECB_UNION]
