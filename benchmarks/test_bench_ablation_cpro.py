"""Ablation bench — CPRO eviction set (union vs global vs none).

The paper uses the CPRO-union approach: between two jobs of a task, only
same-core tasks of priority at least the analysed task's can evict PCBs.
The coarser *global* variant charges every other task on the core; the
*none* variant drops CPRO entirely (unsound — it upper-bounds how much the
CPRO term costs the analysis).
"""

import random

from repro.analysis import AnalysisConfig, is_schedulable
from repro.experiments.config import default_platform
from repro.generation import generate_taskset
from repro.persistence.cpro import CproApproach

UTILIZATIONS = (0.3, 0.4, 0.5, 0.6)
SAMPLES = 25

APPROACHES = (CproApproach.UNION, CproApproach.GLOBAL, CproApproach.NONE)


def _run_ablation():
    platform = default_platform()
    counts = {approach: 0 for approach in APPROACHES}
    for utilization in UTILIZATIONS:
        rng = random.Random(6000 + int(utilization * 100))
        tasksets = [
            generate_taskset(rng, platform, utilization) for _ in range(SAMPLES)
        ]
        for taskset in tasksets:
            for approach in APPROACHES:
                config = AnalysisConfig(persistence=True, cpro_approach=approach)
                counts[approach] += is_schedulable(taskset, platform, config)
    total = len(UTILIZATIONS) * SAMPLES
    return {approach: counts[approach] / total for approach in APPROACHES}


def test_bench_ablation_cpro(benchmark):
    ratios = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    benchmark.extra_info["schedulable_ratio"] = {
        a.value: round(r, 4) for a, r in ratios.items()
    }
    print()
    print("CPRO ablation (persistence-aware FP bus, schedulable ratio):")
    for approach, ratio in ratios.items():
        print(f"  {approach.value:<12} {ratio:.3f}")

    # The union eviction set dominates the global one (it is a subset).
    assert ratios[CproApproach.UNION] >= ratios[CproApproach.GLOBAL]
    # Dropping CPRO shows how much reload overhead costs.
    assert ratios[CproApproach.NONE] >= ratios[CproApproach.UNION]
