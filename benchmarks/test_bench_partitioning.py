"""Ablation bench — partitioning heuristics under the persistence analysis.

Generates unpartitioned task lists, assigns cores with each heuristic, and
compares the resulting schedulability under the persistence-aware FP-bus
analysis.  The cache-aware packer is expected to match or beat plain
worst-fit: separating overlapping footprints reduces both CRPD and CPRO.
"""

import random

from repro.analysis import PERSISTENCE_AWARE, is_schedulable
from repro.errors import GenerationError
from repro.experiments.config import default_platform
from repro.generation import generate_taskset
from repro.generation.partitioning import HEURISTICS
from repro.model.task import TaskSet, assign_deadline_monotonic_priorities

UTILIZATIONS = (0.35, 0.45, 0.55)
SAMPLES = 20


def _repartition(taskset, platform, heuristic):
    tasks = [task.with_core(0) for task in taskset]
    placed = heuristic(tasks, platform)
    return TaskSet(assign_deadline_monotonic_priorities(placed))


def _run_comparison():
    platform = default_platform()
    counts = {name: 0 for name in HEURISTICS}
    total = 0
    for utilization in UTILIZATIONS:
        rng = random.Random(8000 + int(utilization * 100))
        for _ in range(SAMPLES):
            taskset = generate_taskset(rng, platform, utilization)
            total += 1
            for name, heuristic in HEURISTICS.items():
                try:
                    repartitioned = _repartition(taskset, platform, heuristic)
                except GenerationError:
                    continue  # packing failed: counts as unschedulable
                counts[name] += is_schedulable(
                    repartitioned, platform, PERSISTENCE_AWARE
                )
    return {name: counts[name] / total for name in HEURISTICS}


def test_bench_partitioning(benchmark):
    ratios = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    benchmark.extra_info["schedulable_ratio"] = {
        name: round(r, 4) for name, r in ratios.items()
    }
    print()
    print("Partitioning heuristics (persistence-aware FP analysis):")
    for name, ratio in ratios.items():
        print(f"  {name:<12} {ratio:.3f}")

    # The cache-aware packer should not lose to plain worst fit by more
    # than sampling noise.
    assert ratios["cache-aware"] >= ratios["worst-fit"] - 0.05
