"""Quickstart: analyse one multicore task set with and without persistence.

Builds a 2-core task set from the Mälardalen parameter table, runs the
worst-case response time analysis of Rashid et al. (DATE 2020) under a
round-robin memory bus, and prints per-task WCRT bounds for the baseline
(Davis et al.) and the cache-persistence-aware analysis.

Run with::

    python examples/quickstart.py
"""

from repro import (
    BASELINE,
    PERSISTENCE_AWARE,
    BusPolicy,
    Platform,
    Task,
    TaskSet,
    analyze_taskset,
    assign_deadline_monotonic_priorities,
    microseconds_to_cycles,
)
from repro.data.benchmarks import benchmark_spec


def build_taskset(platform: Platform) -> TaskSet:
    """Four benchmark tasks, two per core, with hand-picked periods."""
    layout = [
        # (benchmark, core, period in multiples of the isolated WCET,
        #  first cache set of the task's ECB region)
        ("lcdnum", 0, 4, 0),
        ("statemate", 0, 10, 0),
        ("fdct", 1, 5, 64),
        ("cnt", 1, 12, 128),
    ]
    tasks = []
    for name, core, factor, first_set in layout:
        spec = benchmark_spec(name)
        wcet = spec.pd + spec.md * platform.d_mem
        ecbs = frozenset(
            (first_set + i) % platform.cache.num_sets for i in range(spec.n_ecb)
        )
        ordered = sorted(ecbs)
        tasks.append(
            Task(
                name=name,
                pd=spec.pd,
                md=spec.md,
                md_r=spec.md_r,
                period=factor * wcet,
                deadline=factor * wcet,
                priority=len(tasks),
                core=core,
                ecbs=ecbs,
                ucbs=frozenset(ordered[: spec.n_ucb]),
                pcbs=frozenset(ordered[-spec.n_pcb:] if spec.n_pcb else []),
            )
        )
    return TaskSet(assign_deadline_monotonic_priorities(tasks))


def main() -> None:
    platform = Platform(
        num_cores=2,
        d_mem=microseconds_to_cycles(5),
        bus_policy=BusPolicy.RR,
        slot_size=2,
    )
    taskset = build_taskset(platform)

    baseline = analyze_taskset(taskset, platform, BASELINE)
    aware = analyze_taskset(taskset, platform, PERSISTENCE_AWARE)

    print(f"Platform: {platform.num_cores} cores, RR bus, "
          f"d_mem = {platform.d_mem} cycles\n")
    header = f"{'task':<12}{'core':>5}{'T=D':>10}{'baseline R':>14}{'persistence R':>16}"
    print(header)
    print("-" * len(header))
    for task in taskset:
        base_r = baseline.response_times.get(task)
        aware_r = aware.response_times.get(task)
        print(
            f"{task.name:<12}{task.core:>5}{int(task.period):>10}"
            f"{base_r:>14}{aware_r:>16}"
        )
    print()
    print(f"baseline schedulable:    {baseline.schedulable}")
    print(f"persistence schedulable: {aware.schedulable}")
    total = sum(baseline.response_times.values())
    tightened = sum(aware.response_times.values())
    print(f"cumulative WCRT tightening: {100 * (1 - tightened / total):.1f}%")


if __name__ == "__main__":
    main()
