"""A miniature Fig. 2: schedulability ratio versus per-core utilisation.

Runs a reduced-scale version of the paper's headline experiment (FP bus,
50 task sets per point instead of 1000) and prints the persistence-aware
curve, the baseline curve and the perfect-bus reference side by side,
together with the maximum percentage-point gain.

Run with::

    python examples/schedulability_sweep.py
"""

from repro.experiments.config import SweepSettings, default_platform
from repro.experiments.fig2 import run_fig2

UTILIZATIONS = tuple(round(0.1 * step, 1) for step in range(1, 10))


def spark(series, width=1):
    """Tiny text sparkline for a 0..1 series."""
    glyphs = " .:-=+*#%@"
    return "".join(glyphs[min(9, int(v * 9.999))] * width for v in series)


def main() -> None:
    settings = SweepSettings(samples=50, seed=42, utilizations=UTILIZATIONS)
    result = run_fig2(settings, default_platform())

    print("Schedulability ratio vs per-core utilisation "
          f"({settings.samples} task sets per point)\n")
    print(f"{'util':<8}" + "".join(f"{label:>9}" for label in
                                   ("FP-P", "FP", "RR-P", "RR", "TDMA-P", "TDMA", "Perfect")))
    for row, utilization in enumerate(result.utilizations):
        cells = "".join(
            f"{result.ratios[label][row]:>9.2f}"
            for label in ("FP-P", "FP", "RR-P", "RR", "TDMA-P", "TDMA", "Perfect")
        )
        print(f"{utilization:<8}" + cells)

    print("\nShape at a glance (each column is one utilisation point):")
    for label in ("FP-P", "FP", "Perfect"):
        print(f"  {label:<8} |{spark(result.ratios[label], width=3)}|")

    print("\nMaximum persistence-aware gain:")
    for policy, gap in result.gaps.items():
        print(f"  {policy:<6} {100 * gap:5.1f} pp "
              f"(paper reports up to {dict(FP=70, RR=65, TDMA=50)[policy]} pp)")


if __name__ == "__main__":
    main()
