"""The paper's worked example (Fig. 1), reproduced number by number.

Three tasks: τ1 and τ2 on core π_x, τ3 on core π_y, round-robin bus with
slot size 1.  The script recomputes every quantity the paper derives in
Sec. IV — γ, BAS, M̂D, CPRO, BAO — and checks them against the published
values (32 vs 26 on the local core, 24 vs 9 on the remote core).

Run with::

    python examples/paper_example.py
"""

from repro.businterference.arbiters import total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.businterference.requests import bao, bas
from repro.crpd.approaches import CrpdCalculator
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import CproCalculator
from repro.persistence.demand import multi_job_demand

R2 = 36  # window such that E_1(R2) = 3 and N_{3,3}(R2) = 4, as in Fig. 1


def build_example():
    tau1 = Task(
        name="tau1", pd=4, md=6, md_r=1, period=12, deadline=12, priority=1,
        core=0,
        ecbs=frozenset({5, 6, 7, 8, 9, 10}),
        ucbs=frozenset({5, 6, 7, 8, 10}),
        pcbs=frozenset({5, 6, 7, 8, 10}),
    )
    tau2 = Task(
        name="tau2", pd=32, md=8, period=64, deadline=64, priority=2, core=0,
        ecbs=frozenset({1, 2, 3, 4, 5, 6}),
        ucbs=frozenset({5, 6}),
    )
    tau3 = Task(
        name="tau3", pd=4, md=6, md_r=1, period=10, deadline=10, priority=3,
        core=1,
        ecbs=frozenset({5, 6, 7, 8, 9, 10}),
        ucbs=frozenset({5, 6, 7, 8, 10}),
        pcbs=frozenset({5, 6, 7, 8, 10}),
    )
    taskset = TaskSet([tau1, tau2, tau3])
    platform = Platform(
        num_cores=2,
        cache=CacheGeometry(num_sets=16, block_size=32),
        d_mem=1,
        bus_policy=BusPolicy.RR,
        slot_size=1,
    )
    return taskset, platform, tau1, tau2, tau3


def check(label, computed, published):
    marker = "ok" if computed == published else "MISMATCH"
    print(f"  {label:<44} = {computed:>4}   (paper: {published})  [{marker}]")
    assert computed == published


def main() -> None:
    taskset, platform, tau1, tau2, tau3 = build_example()
    crpd = CrpdCalculator(taskset)
    cpro = CproCalculator(taskset)

    baseline = AnalysisContext(taskset=taskset, platform=platform, persistence=False)
    aware = AnalysisContext(taskset=taskset, platform=platform, persistence=True)
    for ctx in (baseline, aware):
        ctx.set_response_time(tau3, 10)  # R3 in the example schedule

    print("Fig. 1 worked example (RR bus, slot size 1)\n")
    print("CRPD (Eq. 2):")
    check("gamma_{2,1,x}", crpd.gamma(tau2, tau1), 2)

    print("\nBaseline bounds of Davis et al.:")
    check("BAS_2^x(R2)  (Eq. 12)", bas(baseline, tau2, R2), 32)
    check("BAO_3^y(R2)  (Eq. 13)", bao(baseline, 1, tau3, R2), 24)

    print("\nCache persistence (Eq. 10 and 14):")
    check("M^D_1(3)  three jobs of tau1 in isolation",
          multi_job_demand(tau1, 3), 8)
    check("rho_{1,2,x}(3)  CPRO of tau1 in tau2's window",
          cpro.rho(tau1, tau2, 3), 4)

    print("\nPersistence-aware bounds (Lemmas 1 and 2):")
    check("B^AS_2^x(R2)  (Eq. 15/16)", bas(aware, tau2, R2), 26)
    check("B^AO_3^y(R2)", bao(aware, 1, tau3, R2), 9)

    print("\nTotal bus accesses under the RR bus (Eq. 8/11):")
    check("BAT_2^x baseline", total_bus_accesses(baseline, tau2, R2), 32 + 24)
    check("BAT_2^x persistence-aware", total_bus_accesses(aware, tau2, R2), 26 + 9)

    saved = (56 - 35) / 56
    print(f"\nPersistence awareness removes {saved:.0%} of the bus accesses "
          "charged to tau2's response time in this example.")


if __name__ == "__main__":
    main()
