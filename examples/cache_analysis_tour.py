"""Tour of the static cache analysis (the Heptane substitute).

Builds a small synthetic program with all four cache behaviours (hot
persistent code, one-shot init code, conflicting hot regions, one-shot
conflicting regions), extracts ``PD/MD/MDr/ECB/UCB/PCB`` across cache
sizes, and cross-validates the structural analysis against an exact
unrolled trace simulation.

Run with::

    python examples/cache_analysis_tour.py
"""

from repro.cacheanalysis.extraction import extract_parameters
from repro.cacheanalysis.simulator import simulate_trace
from repro.model.platform import CacheGeometry
from repro.program.cfg import Block, Loop, Program, Seq
from repro.program.malardalen import benchmark_program
from repro.program.trace import worst_case_trace


def build_demo_program() -> Program:
    """A hand-written kernel: init, then a hot loop, then a cold helper."""
    line = 32  # bytes per cache line
    init = Block(start=0, n_instructions=8 * 6)           # lines 0..5, once
    hot = Loop(
        body=Block(start=6 * line, n_instructions=8 * 4, uncached=1),
        bound=50,
    )                                                     # lines 6..9, hot
    helper = Block(start=(10 + 256) * line, n_instructions=8 * 2)
    conflicting = Block(start=10 * line, n_instructions=8 * 2)
    tail = Seq(conflicting, helper)                       # lines 10,11 collide
    return Program(name="demo", root=Seq(init, hot, tail))


def main() -> None:
    program = build_demo_program()

    print("Extracted parameters across cache sizes:")
    print(f"{'sets':>6}{'PD':>8}{'MD':>6}{'MDr':>6}{'|ECB|':>7}{'|UCB|':>7}{'|PCB|':>7}")
    for sets in (8, 16, 64, 256, 1024):
        geometry = CacheGeometry(num_sets=sets, block_size=32)
        params = extract_parameters(program, geometry)
        print(
            f"{sets:>6}{params.pd:>8}{params.md:>6}{params.md_r:>6}"
            f"{len(params.ecbs):>7}{len(params.ucbs):>7}{len(params.pcbs):>7}"
        )
    print("\nNote how growing the cache separates the conflicting lines\n"
          "(|PCB| rises, MD falls) until everything is persistent.\n")

    geometry = CacheGeometry(num_sets=16, block_size=32)
    params = extract_parameters(program, geometry)
    steps = worst_case_trace(program, geometry)
    cached = [s.block for s in steps if s.block is not None]
    uncached = sum(1 for s in steps if s.uncached)
    replay = simulate_trace(cached, geometry)
    print("Cross-validation against the exact trace simulator (16 sets):")
    print(f"  structural MD = {params.md}")
    print(f"  replayed trace: {replay.misses} misses + {uncached} uncached "
          f"= {replay.misses + uncached}")
    assert params.md == replay.misses + uncached

    print("\nMälardalen model example — statemate at three cache sizes:")
    statemate = benchmark_program("statemate")
    for sets in (64, 256, 1024):
        geometry = CacheGeometry(num_sets=sets, block_size=32)
        params = extract_parameters(statemate, geometry)
        ratio = params.md_r / params.md
        print(f"  {sets:>5} sets: MD={params.md:>5}  MDr={params.md_r:>5} "
              f"(persistence keeps {1 - ratio:.0%})  |PCB|={len(params.pcbs)}")


if __name__ == "__main__":
    main()
