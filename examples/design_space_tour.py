"""Design-space tooling: partitioning, WCRT decomposition, sensitivity.

A walk through the supporting tooling a system designer would use around
the core analysis:

1. partition an unassigned task list onto cores (utilisation-balancing vs
   cache-aware packing);
2. decompose each task's WCRT bound into its interference sources to see
   *why* the bound is what it is;
3. probe the robustness of the design: the breakdown period scale and the
   largest memory latency the task set tolerates, for the baseline and the
   persistence-aware analysis.

Run with::

    python examples/design_space_tour.py
"""

import random

from repro.analysis import (
    BASELINE,
    PERSISTENCE_AWARE,
    analyze_taskset,
    breakdown_d_mem,
    breakdown_period_scale,
    decompose_taskset,
    is_schedulable,
)
from repro.data.benchmarks import benchmark_spec
from repro.generation.partitioning import cache_aware_worst_fit, worst_fit
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet, assign_deadline_monotonic_priorities


def unassigned_tasks(rng):
    """Eight benchmark tasks, no cores assigned yet."""
    names = ["lcdnum", "fdct", "cnt", "crc", "statemate", "ns", "bs", "qurt"]
    tasks = []
    platform_d_mem = 10
    for i, name in enumerate(names):
        spec = benchmark_spec(name)
        wcet = spec.pd + spec.md * platform_d_mem
        period = wcet * rng.randint(4, 9)
        start = rng.randrange(256)
        ecbs = frozenset((start + k) % 256 for k in range(spec.n_ecb))
        ordered = sorted(ecbs)
        tasks.append(
            Task(
                name=name, pd=spec.pd, md=spec.md, md_r=spec.md_r,
                period=period, deadline=period, priority=i, core=0,
                ecbs=ecbs,
                ucbs=frozenset(rng.sample(ordered, spec.n_ucb)),
                pcbs=frozenset(rng.sample(ordered, spec.n_pcb)),
            )
        )
    return tasks


def main() -> None:
    rng = random.Random(0)
    platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
    tasks = unassigned_tasks(rng)

    print("1. Partitioning " + "-" * 50)
    for label, heuristic in (("worst-fit", worst_fit),
                             ("cache-aware", cache_aware_worst_fit)):
        placed = heuristic(tasks, platform)
        taskset = TaskSet(assign_deadline_monotonic_priorities(placed))
        verdict = is_schedulable(taskset, platform, PERSISTENCE_AWARE)
        assignment = {
            core: [t.name for t in taskset.on_core(core)]
            for core in platform.cores
        }
        print(f"  {label:<12} schedulable={verdict}")
        for core, names in assignment.items():
            print(f"    core {core}: {', '.join(names)}")

    placed = cache_aware_worst_fit(tasks, platform)
    taskset = TaskSet(assign_deadline_monotonic_priorities(placed))

    print("\n2. WCRT decomposition (persistence-aware) " + "-" * 24)
    result = analyze_taskset(taskset, platform, PERSISTENCE_AWARE)
    breakdowns = decompose_taskset(taskset, platform, PERSISTENCE_AWARE, result)
    heaviest = max(breakdowns, key=lambda b: b.response_time)
    print(heaviest.render())

    print("\n3. Sensitivity " + "-" * 51)
    for label, config in (("baseline", BASELINE),
                          ("persistence", PERSISTENCE_AWARE)):
        scale = breakdown_period_scale(taskset, platform, config)
        latency = breakdown_d_mem(taskset, platform, config)
        scale_text = f"{scale:.2f}" if scale is not None else "unschedulable"
        latency_text = f"{latency} cycles" if latency is not None else "none"
        print(f"  {label:<12} breakdown period scale = {scale_text:<14} "
              f"max tolerated d_mem = {latency_text}")
    print("\nLower scale and higher tolerated latency = more headroom; the "
          "persistence-aware analysis strictly extends both.")


if __name__ == "__main__":
    main()
