"""Analysis vs execution: WCRT bounds checked against the simulator.

Builds a 2-core scenario whose task parameters are extracted from the very
synthetic programs the discrete-event simulator executes, computes WCRT
bounds for every bus arbiter, simulates 15 hyperperiods, and reports the
observed maxima next to the bounds.  Also shows cache persistence emerging
at run time: the first job of each task pays its full memory demand ``MD``,
later jobs only the residual ``MDr``.

Run with::

    python examples/simulation_vs_analysis.py
"""

from repro.analysis import AnalysisConfig, analyze_taskset
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.sim import (
    ScenarioSpec,
    build_scenario,
    simulate,
    workload_from_programs,
)

# The TDMA simulator serves requests anywhere in the owner's window, so the
# validation uses the alignment-safe variant of Eq. (9) (see DESIGN.md).
CONFIG = AnalysisConfig(persistence=True, tdma_slot_alignment=True)

SPECS = [
    ScenarioSpec("lcdnum", core=0, period_factor=6),
    ScenarioSpec("bs", core=0, period_factor=8),
    ScenarioSpec("cnt", core=1, period_factor=6),
    ScenarioSpec("insertsort", core=1, period_factor=10),
]


def run_for(policy: BusPolicy) -> None:
    platform = Platform(
        num_cores=2,
        cache=CacheGeometry(num_sets=256, block_size=32),
        d_mem=10,
        bus_policy=policy,
        slot_size=2,
    )
    scenario = build_scenario(SPECS, platform)
    analysis = analyze_taskset(scenario.taskset, platform, CONFIG)
    workload = workload_from_programs(scenario.taskset, platform, scenario.programs)
    duration = int(max(t.period for t in scenario.taskset)) * 15
    observed = simulate(workload, platform, duration=duration)

    print(f"--- {policy.value.upper()} bus ---")
    print(f"{'task':<14}{'WCRT bound':>12}{'observed max':>14}{'slack':>9}"
          f"{'MD':>6}{'1st job':>9}{'later':>7}{'MDr':>6}")
    for task in scenario.taskset:
        stats = observed.of(task)
        bound = analysis.response_time(task)
        peak = stats.max_response_time
        later = stats.completed_jobs[1].bus_accesses if len(
            stats.completed_jobs) > 1 else "-"
        print(
            f"{task.name:<14}{bound:>12}{peak:>14}"
            f"{(bound - peak) / bound:>8.0%}"
            f"{task.md:>6}{stats.jobs[0].bus_accesses:>9}{later:>7}{task.md_r:>6}"
        )
        assert peak <= bound, "simulation exceeded the analytical bound!"
    print(f"bus utilisation observed: {observed.bus_utilization:.1%}\n")


def main() -> None:
    for policy in (BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA, BusPolicy.PERFECT):
        run_for(policy)
    print("All observed response times stayed within the analytical bounds.")


if __name__ == "__main__":
    main()
