"""Unit tests for the multiset CRPD and CPRO refinements (extensions)."""

import random

import pytest

from repro.analysis import AnalysisConfig, analyze_taskset
from repro.businterference.context import AnalysisContext
from repro.businterference.requests import bas
from repro.crpd.approaches import CrpdApproach, CrpdCalculator
from repro.crpd.multiset import ecb_union_multiset_window
from repro.generation import generate_taskset
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import (
    CproApproach,
    CproCalculator,
    cpro_multiset_window,
)


def make_task(name, priority, core=0, md=10, md_r=3, period=1000,
              ecbs=(), ucbs=(), pcbs=()):
    return Task(
        name=name, pd=10, md=md, md_r=md_r, period=period, deadline=period,
        priority=priority, core=core,
        ecbs=frozenset(ecbs), ucbs=frozenset(ucbs), pcbs=frozenset(pcbs),
    )


@pytest.fixture()
def system():
    t1 = make_task("t1", 1, period=100, ecbs={1, 2, 3, 4}, ucbs={1, 2})
    t2 = make_task("t2", 2, period=500, ecbs={3, 4, 5, 6}, ucbs={3, 4, 5},
                   pcbs={5, 6})
    t3 = make_task("t3", 3, period=900, ecbs={5, 6, 7, 8}, ucbs={5, 6, 7, 8},
                   pcbs={7, 8})
    taskset = TaskSet([t1, t2, t3])
    return taskset, t1, t2, t3


class TestCrpdMultiset:
    def test_never_exceeds_per_job_bound(self, system):
        taskset, t1, t2, t3 = system
        crpd = CrpdCalculator(taskset)
        responses = {t: int(t.pd + t.md * 10) for t in taskset}
        for t in range(0, 5000, 177):
            multiset = ecb_union_multiset_window(
                taskset, t3, t1, t, lambda task: responses[task]
            )
            per_job = -((-t) // int(t1.period)) * crpd.gamma(t3, t1)
            assert multiset <= per_job

    def test_zero_without_affected_tasks(self, system):
        taskset, t1, t2, t3 = system
        assert ecb_union_multiset_window(taskset, t1, t1, 1000, lambda t: 100) == 0

    def test_zero_window(self, system):
        taskset, t1, t2, t3 = system
        assert ecb_union_multiset_window(taskset, t3, t1, 0, lambda t: 100) == 0

    def test_limited_by_affected_executions(self):
        # t2 runs once in the window and can be preempted once per run:
        # the multiset has a single element, even though t1 releases many
        # jobs.
        t1 = make_task("t1", 1, period=10, ecbs={1, 2}, ucbs=())
        t2 = make_task("t2", 2, period=10_000, ecbs={1, 2, 3}, ucbs={1, 2})
        t3 = make_task("t3", 3, period=10_000, ecbs={9}, ucbs={9})
        taskset = TaskSet([t1, t2, t3])
        # R(t2) = 15 -> E_1(R_2) = 2 preemptions per job of t2; one job of
        # t2 in the window -> at most 2 elements of cost 2.
        total = ecb_union_multiset_window(
            taskset, t3, t1, 5000, lambda t: 15
        )
        assert total == 2 * 2
        # The per-job bound would charge E_1(5000) = 500 preemptions.
        assert total < 500 * 2

    def test_respects_window_budget(self, system):
        taskset, t1, t2, t3 = system
        # With a huge response time the multiset is budget-limited by
        # E_j(t) elements.
        crpd = CrpdCalculator(taskset)
        t = 1000
        budget = -((-t) // int(t1.period))
        total = ecb_union_multiset_window(
            taskset, t3, t1, t, lambda task: 10**9
        )
        assert total <= budget * crpd.gamma(t3, t1)

    def test_bas_with_multiset_never_exceeds_plain(self, system):
        taskset, t1, t2, t3 = system
        platform = Platform(num_cores=1, d_mem=10)
        plain = AnalysisContext(
            taskset=taskset, platform=platform,
            crpd=CrpdCalculator(taskset, CrpdApproach.ECB_UNION),
        )
        multiset = AnalysisContext(
            taskset=taskset, platform=platform,
            crpd=CrpdCalculator(taskset, CrpdApproach.ECB_UNION_MULTISET),
        )
        for t in range(0, 4000, 133):
            assert bas(multiset, t3, t) <= bas(plain, t3, t)


class TestCproMultiset:
    def test_never_exceeds_union(self, system):
        taskset, t1, t2, t3 = system
        union = CproCalculator(taskset, CproApproach.UNION)
        multiset = CproCalculator(taskset, CproApproach.MULTISET)
        for n in range(0, 10):
            for t in range(0, 4000, 333):
                assert multiset.rho_window(t2, t3, n, t) <= union.rho(t2, t3, n)

    def test_limited_by_evictor_jobs(self):
        # The evictor releases one job per 10_000 cycles; in a 1_000-cycle
        # window it can evict each overlapping PCB at most once, however
        # many jobs of the victim run.
        evictor = make_task("e", 1, period=10_000, ecbs={5})
        victim = make_task("v", 2, period=100, ecbs={5, 6}, pcbs={5, 6})
        low = make_task("l", 3, period=10_000, ecbs={9})
        taskset = TaskSet([evictor, victim, low])
        total = cpro_multiset_window(taskset, victim, low, n_jobs=10, window=1000)
        assert total == 1  # one eviction opportunity for PCB 5; PCB 6 safe

    def test_limited_by_job_boundaries(self):
        evictor = make_task("e", 1, period=10, ecbs={5})
        victim = make_task("v", 2, period=100, ecbs={5, 6}, pcbs={5, 6})
        low = make_task("l", 3, period=10_000, ecbs={9})
        taskset = TaskSet([evictor, victim, low])
        # Plenty of eviction opportunities, but only n-1 reloads possible.
        total = cpro_multiset_window(taskset, victim, low, n_jobs=4, window=1000)
        assert total == 3

    def test_carry_in_adds_one_job(self):
        evictor = make_task("e", 1, period=10_000, ecbs={5})
        victim = make_task("v", 2, period=100, ecbs={5, 6}, pcbs={5, 6})
        low = make_task("l", 3, period=10_000, ecbs={9})
        taskset = TaskSet([evictor, victim, low])
        without = cpro_multiset_window(taskset, victim, low, 10, 1000)
        with_carry = cpro_multiset_window(
            taskset, victim, low, 10, 1000, carry_in=True
        )
        assert with_carry == without + 1

    def test_zero_for_single_job(self, system):
        taskset, t1, t2, t3 = system
        assert cpro_multiset_window(taskset, t2, t3, 1, 1000) == 0

    def test_rho_window_falls_back_for_union(self, system):
        taskset, t1, t2, t3 = system
        union = CproCalculator(taskset, CproApproach.UNION)
        assert union.rho_window(t2, t3, 5, 123) == union.rho(t2, t3, 5)


class TestEndToEnd:
    def test_multiset_config_never_hurts_schedulability(self):
        platform = Platform(bus_policy=BusPolicy.FP)
        plain = AnalysisConfig(persistence=True)
        refined = AnalysisConfig(
            persistence=True,
            crpd_approach=CrpdApproach.ECB_UNION_MULTISET,
            cpro_approach=CproApproach.MULTISET,
        )
        plain_count = refined_count = 0
        for seed in range(10):
            taskset = generate_taskset(random.Random(seed), platform, 0.45)
            plain_count += analyze_taskset(taskset, platform, plain).schedulable
            refined_count += analyze_taskset(taskset, platform, refined).schedulable
        assert refined_count >= plain_count
