"""Unit tests for the task and task-set model."""

import pytest

from repro.errors import ModelError
from repro.model.task import (
    Task,
    TaskSet,
    assign_deadline_monotonic_priorities,
    assign_rate_monotonic_priorities,
)


def make_task(name="t", priority=1, core=0, **overrides):
    defaults = dict(
        pd=100,
        md=10,
        md_r=4,
        period=1000,
        deadline=1000,
        ecbs=frozenset({1, 2, 3}),
        ucbs=frozenset({1, 2}),
        pcbs=frozenset({3}),
    )
    defaults.update(overrides)
    return Task(name=name, priority=priority, core=core, **defaults)


class TestTaskValidation:
    def test_md_r_defaults_to_md(self):
        task = Task(name="t", pd=5, md=7, period=100, deadline=100, priority=1)
        assert task.md_r == 7

    def test_rejects_md_r_above_md(self):
        with pytest.raises(ModelError):
            make_task(md=5, md_r=6)

    def test_rejects_negative_pd(self):
        with pytest.raises(ModelError):
            make_task(pd=-1)

    def test_rejects_negative_md(self):
        with pytest.raises(ModelError):
            make_task(md=-1)

    def test_rejects_deadline_beyond_period(self):
        with pytest.raises(ModelError):
            make_task(period=100, deadline=200)

    def test_rejects_non_positive_period(self):
        with pytest.raises(ModelError):
            make_task(period=0, deadline=0)

    def test_rejects_negative_core(self):
        with pytest.raises(ModelError):
            make_task(core=-1)

    def test_rejects_ucbs_outside_ecbs(self):
        with pytest.raises(ModelError):
            make_task(ucbs=frozenset({99}))

    def test_rejects_pcbs_outside_ecbs(self):
        with pytest.raises(ModelError):
            make_task(pcbs=frozenset({99}))

    def test_sets_coerced_to_frozenset(self):
        task = make_task(ecbs={1, 2, 3}, ucbs={1}, pcbs={2})
        assert isinstance(task.ecbs, frozenset)
        assert isinstance(task.ucbs, frozenset)
        assert isinstance(task.pcbs, frozenset)


class TestTaskMetrics:
    def test_isolated_wcet(self):
        assert make_task(pd=100, md=10).isolated_wcet(10) == 200

    def test_utilization(self):
        task = make_task(pd=100, md=10, period=400, deadline=400)
        assert task.utilization(10) == pytest.approx(0.5)

    def test_with_helpers(self):
        task = make_task()
        assert task.with_priority(9).priority == 9
        assert task.with_core(3).core == 3
        updated = task.with_timing(2000, 1500)
        assert (updated.period, updated.deadline) == (2000, 1500)

    def test_identity_semantics(self):
        a = make_task(priority=1)
        b = make_task(priority=1)
        assert a != b
        assert len({a, b}) == 2


class TestTaskSet:
    def setup_method(self):
        self.t1 = make_task("t1", priority=1, core=0)
        self.t2 = make_task("t2", priority=2, core=0)
        self.t3 = make_task("t3", priority=3, core=1)
        self.t4 = make_task("t4", priority=4, core=1)
        self.ts = TaskSet([self.t3, self.t1, self.t4, self.t2])

    def test_sorted_by_priority(self):
        assert [t.name for t in self.ts] == ["t1", "t2", "t3", "t4"]

    def test_len_and_getitem(self):
        assert len(self.ts) == 4
        assert self.ts[0] is self.t1

    def test_contains_is_identity_based(self):
        assert self.t1 in self.ts
        assert make_task("t1", priority=9) not in self.ts

    def test_rejects_duplicate_priorities(self):
        with pytest.raises(ModelError):
            TaskSet([make_task("a", priority=1), make_task("b", priority=1)])

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            TaskSet([])

    def test_hp_lp_hep(self):
        assert self.ts.hp(self.t3) == (self.t1, self.t2)
        assert self.ts.lp(self.t3) == (self.t4,)
        assert self.ts.hep(self.t3) == (self.t1, self.t2, self.t3)

    def test_aff(self):
        # aff(4, 1) = hep(4) ∩ lp(1) = {t2, t3, t4}
        assert self.ts.aff(self.t4, self.t1) == (self.t2, self.t3, self.t4)
        # aff(2, 2) is empty (nothing both <= prio 2 and > prio 2).
        assert self.ts.aff(self.t2, self.t2) == ()

    def test_per_core_views(self):
        assert self.ts.on_core(0) == (self.t1, self.t2)
        assert self.ts.on_core(1) == (self.t3, self.t4)
        assert self.ts.on_core(7) == ()
        assert self.ts.hp_on_core(self.t4, 1) == (self.t3,)
        assert self.ts.hep_on_core(self.t4, 0) == (self.t1, self.t2)
        assert self.ts.lp_on_core(self.t1, 1) == (self.t3, self.t4)

    def test_cores_property(self):
        assert self.ts.cores == (0, 1)

    def test_lowest_priority_task(self):
        assert self.ts.lowest_priority_task is self.t4

    def test_relation_rejects_foreign_task(self):
        foreign = make_task("x", priority=99)
        with pytest.raises(ModelError):
            self.ts.hp(foreign)

    def test_utilization_aggregates(self):
        d_mem = 10
        expected_core0 = self.t1.utilization(d_mem) + self.t2.utilization(d_mem)
        assert self.ts.core_utilization(0, d_mem) == pytest.approx(expected_core0)
        assert self.ts.total_utilization(d_mem) == pytest.approx(
            sum(t.utilization(d_mem) for t in self.ts)
        )

    def test_bus_utilization_residual_is_lower(self):
        assert self.ts.bus_utilization(10, residual=True) < self.ts.bus_utilization(10)


class TestPriorityAssignment:
    def test_deadline_monotonic(self):
        short = make_task("short", priority=0, period=500, deadline=500)
        long = make_task("long", priority=0, period=2000, deadline=2000)
        ordered = assign_deadline_monotonic_priorities([long, short])
        by_name = {t.name: t for t in ordered}
        assert by_name["short"].priority < by_name["long"].priority

    def test_rate_monotonic(self):
        fast = make_task("fast", priority=0, period=500, deadline=400)
        slow = make_task("slow", priority=0, period=2000, deadline=300)
        ordered = assign_rate_monotonic_priorities([slow, fast])
        by_name = {t.name: t for t in ordered}
        assert by_name["fast"].priority < by_name["slow"].priority

    def test_priorities_unique_on_ties(self):
        tasks = [make_task(f"t{i}", priority=0) for i in range(5)]
        ordered = assign_deadline_monotonic_priorities(tasks)
        priorities = [t.priority for t in ordered]
        assert sorted(priorities) == [1, 2, 3, 4, 5]

    def test_tie_break_preserves_input_order(self):
        tasks = [make_task(f"t{i}", priority=0) for i in range(3)]
        ordered = assign_deadline_monotonic_priorities(tasks)
        assert [t.name for t in sorted(ordered, key=lambda t: t.priority)] == [
            "t0",
            "t1",
            "t2",
        ]
