"""Unit tests for the request bounds (Eq. 1, 3-6, Lemmas 1-2)."""

import pytest

from repro.businterference.context import AnalysisContext
from repro.businterference.requests import (
    bao,
    bao_low,
    bas,
    carried_out_accesses,
    full_jobs_in_window,
    jobs_in_window,
)
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet


def make_task(name, priority, core=0, pd=100, md=10, md_r=None, period=1000,
              ecbs=(), ucbs=(), pcbs=()):
    return Task(
        name=name,
        pd=pd,
        md=md,
        md_r=md_r,
        period=period,
        deadline=period,
        priority=priority,
        core=core,
        ecbs=frozenset(ecbs),
        ucbs=frozenset(ucbs),
        pcbs=frozenset(pcbs),
    )


@pytest.fixture()
def system():
    t1 = make_task("t1", 1, core=0, md=6, md_r=2, period=100,
                   ecbs={0, 1, 2}, ucbs={0, 1}, pcbs={0, 1})
    t2 = make_task("t2", 2, core=0, md=8, period=400, ecbs={2, 3, 4}, ucbs={2})
    t3 = make_task("t3", 3, core=1, md=5, md_r=1, period=120,
                   ecbs={0, 1}, ucbs={0}, pcbs={0, 1})
    taskset = TaskSet([t1, t2, t3])
    platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
    return taskset, platform, t1, t2, t3


def make_ctx(taskset, platform, persistence):
    return AnalysisContext(taskset=taskset, platform=platform, persistence=persistence)


class TestJobsInWindow:
    def test_exact_multiples(self):
        assert jobs_in_window(300, 100) == 3

    def test_partial_window_rounds_up(self):
        assert jobs_in_window(301, 100) == 4

    def test_zero_window(self):
        assert jobs_in_window(0, 100) == 0

    def test_rejects_negative_window(self):
        with pytest.raises(AnalysisError):
            jobs_in_window(-1, 100)

    def test_rejects_non_positive_period(self):
        with pytest.raises(AnalysisError):
            jobs_in_window(10, 0)


class TestBas:
    def test_own_demand_only_for_highest_priority(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        assert bas(ctx, t1, 1000) == t1.md

    def test_baseline_formula(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        gamma = ctx.crpd.gamma(t2, t1)
        t = 400
        expected = t2.md + jobs_in_window(t, 100) * (t1.md + gamma)
        assert bas(ctx, t2, t) == expected

    def test_persistence_never_exceeds_baseline(self, system):
        taskset, platform, t1, t2, t3 = system
        base = make_ctx(taskset, platform, False)
        aware = make_ctx(taskset, platform, True)
        for t in range(0, 2000, 37):
            assert bas(aware, t2, t) <= bas(base, t2, t)

    def test_monotone_in_window(self, system):
        taskset, platform, t1, t2, t3 = system
        for persistence in (False, True):
            ctx = make_ctx(taskset, platform, persistence)
            values = [bas(ctx, t2, t) for t in range(0, 2000, 50)]
            assert values == sorted(values)

    def test_rejects_negative_window(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        with pytest.raises(AnalysisError):
            bas(ctx, t2, -5)

    def test_remote_tasks_do_not_contribute(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        # t3 on core 1 must not appear in t2's same-core bound: removing it
        # from the system leaves BAS unchanged.
        reduced = TaskSet([t1, t2])
        ctx_reduced = make_ctx(reduced, platform, False)
        assert bas(ctx, t2, 800) == bas(ctx_reduced, t2, 800)


class TestFullJobsAndCarryOut:
    def test_short_window_no_full_jobs(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        ctx.set_response_time(t3, 10)
        assert full_jobs_in_window(ctx, t2, t3, 0) == 0

    def test_full_jobs_grow_with_window(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        values = [full_jobs_in_window(ctx, t2, t3, t) for t in range(0, 3000, 60)]
        assert values == sorted(values)

    def test_carry_out_capped_by_job_demand(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        gamma = ctx.crpd.gamma(t2, t3)
        for t in range(0, 3000, 60):
            n = full_jobs_in_window(ctx, t2, t3, t)
            cout = carried_out_accesses(ctx, t2, t3, t, n)
            assert 0 <= cout <= t3.md + gamma

    def test_larger_response_time_means_more_jobs(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx_small = make_ctx(taskset, platform, False)
        ctx_small.set_response_time(t3, 50)
        ctx_large = make_ctx(taskset, platform, False)
        ctx_large.set_response_time(t3, 500)
        t = 1000
        assert full_jobs_in_window(ctx_large, t2, t3, t) >= full_jobs_in_window(
            ctx_small, t2, t3, t
        )


class TestBao:
    def test_empty_remote_core(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        # Core 1 hosts only t3 (priority 3); for priority level 1 nothing
        # on core 1 qualifies.
        assert bao(ctx, 1, t1, 1000) == 0

    def test_baseline_counts_full_and_carry_out(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        t = 1000
        n = full_jobs_in_window(ctx, t3, t3, t)
        gamma = ctx.crpd.gamma(t3, t3)
        expected = n * (t3.md + gamma) + carried_out_accesses(ctx, t3, t3, t, n)
        assert bao(ctx, 1, t3, t) == expected

    def test_persistence_never_exceeds_baseline(self, system):
        taskset, platform, t1, t2, t3 = system
        base = make_ctx(taskset, platform, False)
        aware = make_ctx(taskset, platform, True)
        for t in range(0, 4000, 111):
            assert bao(aware, 1, t3, t) <= bao(base, 1, t3, t)

    def test_monotone_in_window(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, True)
        values = [bao(ctx, 1, t3, t) for t in range(0, 4000, 120)]
        assert values == sorted(values)

    def test_rejects_negative_window(self, system):
        taskset, platform, t1, t2, t3 = system
        with pytest.raises(AnalysisError):
            bao(make_ctx(taskset, platform, False), 1, t3, -1)


class TestBaoLow:
    def test_counts_only_lower_priority_tasks(self, system):
        taskset, platform, t1, t2, t3 = system
        ctx = make_ctx(taskset, platform, False)
        t = 1000
        # From t2's standpoint, core 1 holds one lower-priority task: t3.
        assert bao_low(ctx, 1, t2, t) == bao(ctx, 1, t3, t)
        # From t3's standpoint nothing on core 1 is lower priority.
        assert bao_low(ctx, 1, t3, t) == 0

    def test_persistence_in_low_flag(self, system):
        taskset, platform, t1, t2, t3 = system
        faithful = make_ctx(taskset, platform, True)
        tightened = make_ctx(taskset, platform, True)
        tightened.persistence_in_low = True
        t = 2000
        assert bao_low(tightened, 1, t2, t) <= bao_low(faithful, 1, t2, t)
