"""Tests for the ``repro-experiments`` command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "lcdnum" in output
        assert "[table1 completed" in output

    def test_fig2_with_tiny_samples(self, capsys):
        assert main(["fig2", "--samples", "2"]) == 0
        output = capsys.readouterr().out
        assert "Fig. 2a" in output
        assert "Maximum persistence-aware gain" in output

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "table1"]) == 0
        output = capsys.readouterr().out
        assert output.count("Table I") == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_requires_at_least_one_experiment(self):
        with pytest.raises(SystemExit):
            main([])

    def test_seed_flag_changes_results(self, capsys):
        main(["fig2", "--samples", "2", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig2", "--samples", "2", "--seed", "1"])
        second = capsys.readouterr().out
        # Same seed -> identical series (strip the timing line).
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[")
        ]
        assert strip(first) == strip(second)

    def test_samples_env_override(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "2")
        assert main(["fig2"]) == 0
        assert "Fig. 2a" in capsys.readouterr().out

    def test_invalid_jobs_reports_clean_error(self, capsys):
        assert main(["fig2", "--samples", "2", "--jobs", "-1"]) == 2
        err = capsys.readouterr().err
        assert "repro-experiments: error:" in err
        assert "jobs" in err

    def test_garbage_jobs_env_reports_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["fig2", "--samples", "2"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_JOBS" in err and "many" in err

    def test_profile_flag_prints_counters(self, capsys):
        assert main(["fig2", "--samples", "2", "--profile"]) == 0
        output = capsys.readouterr().out
        assert "Performance profile:" in output
        assert "inner iterations" in output


def _figure_lines(text):
    """Report lines without the wall-clock timing footers."""
    return [line for line in text.splitlines() if not line.startswith("[")]


class TestResilienceCli:
    def test_journal_then_resume_is_bit_identical(self, capsys, tmp_path):
        assert main(["fig2", "--samples", "2"]) == 0
        plain = capsys.readouterr().out
        assert main(["fig2", "--samples", "2", "--journal", str(tmp_path)]) == 0
        journaled = capsys.readouterr().out
        assert (
            main(
                ["fig2", "--samples", "2", "--journal", str(tmp_path), "--resume"]
            )
            == 0
        )
        resumed = capsys.readouterr().out
        assert _figure_lines(journaled) == _figure_lines(plain)
        assert _figure_lines(resumed) == _figure_lines(plain)

    def test_nonempty_journal_without_resume_is_refused(self, capsys, tmp_path):
        assert main(["fig2", "--samples", "2", "--journal", str(tmp_path)]) == 0
        capsys.readouterr()
        # JournalError is an ExecutionError raised from the run phase, so
        # it maps to the execution exit code (see repro.exitcodes).
        assert main(["fig2", "--samples", "2", "--journal", str(tmp_path)]) == 4
        err = capsys.readouterr().err
        assert "repro-experiments: error:" in err and "--resume" in err

    def test_resume_without_journal_is_refused(self, capsys):
        assert main(["fig2", "--samples", "2", "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume requires a --journal" in err

    def test_invalid_timeout_reports_clean_error(self, capsys):
        assert main(["fig2", "--samples", "2", "--timeout", "-5"]) == 2
        err = capsys.readouterr().err
        assert "repro-experiments: error:" in err and "timeout" in err

    def test_invalid_retries_reports_clean_error(self, capsys):
        assert main(["fig2", "--samples", "2", "--retries", "-1"]) == 2
        err = capsys.readouterr().err
        assert "retries" in err

    def test_unknown_inject_reports_clean_error(self, capsys):
        assert main(["fig2", "--samples", "2", "--inject", "meteor"]) == 2
        err = capsys.readouterr().err
        assert "repro-experiments: error:" in err

    def test_injected_flaky_sample_output_matches_clean_run(self, capsys):
        # The transient fault is retried away: same report, full coverage.
        assert main(["fig2", "--samples", "2"]) == 0
        clean = capsys.readouterr().out
        assert (
            main(["fig2", "--samples", "2", "--inject", "flaky-sample"]) == 0
        )
        injected = capsys.readouterr().out
        assert _figure_lines(injected) == _figure_lines(clean)
        assert "Coverage:" not in injected

    def test_injected_crash_is_quarantined_and_reported(self, capsys):
        assert (
            main(
                [
                    "fig2",
                    "--samples",
                    "2",
                    "--jobs",
                    "2",
                    "--retries",
                    "1",
                    "--inject",
                    "crash-sample",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Coverage:" in captured.out
        assert "1 quarantined" in captured.out
        assert "quarantined crash at point 0 sample 0" in captured.err
