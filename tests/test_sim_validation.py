"""Integration tests: simulated behaviour never exceeds the analysis bounds.

These tests build scenarios where the task parameters are *extracted from
the very programs the simulator executes*, run both worlds, and check:

* observed response times <= analytical WCRT bounds (all arbiters; TDMA
  uses the alignment-safe variant, see ``AnalysisConfig``);
* per-job bus accesses <= ``MD``; steady-state per-job accesses <= ``MDr``
  plus CPRO effects;
* the perfect-bus analysis is exact for isolated single-core workloads.
"""

import random

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import analyze_taskset
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.sim import (
    ScenarioSpec,
    build_scenario,
    simulate,
    workload_from_programs,
)

VALIDATION_CONFIG = AnalysisConfig(persistence=True, tdma_slot_alignment=True)
BASELINE_CONFIG = AnalysisConfig(persistence=False, tdma_slot_alignment=True)

SPECS = [
    ScenarioSpec("lcdnum", 0, period_factor=6.0),
    ScenarioSpec("bs", 0, period_factor=8.0),
    ScenarioSpec("cnt", 1, period_factor=6.0),
    ScenarioSpec("fibcall", 1, period_factor=10.0),
]


def run_scenario(policy, specs=SPECS, rng=None, jitter=0.0, jitter_rng=None):
    platform = Platform(
        num_cores=2,
        cache=CacheGeometry(num_sets=256),
        d_mem=10,
        bus_policy=policy,
        slot_size=2,
    )
    scenario = build_scenario(specs, platform, rng=rng)
    analysis = analyze_taskset(scenario.taskset, platform, VALIDATION_CONFIG)
    workload = workload_from_programs(
        scenario.taskset, platform, scenario.programs
    )
    duration = int(max(t.period for t in scenario.taskset)) * 15
    observed = simulate(
        workload, platform, duration=duration, jitter=jitter, rng=jitter_rng
    )
    return scenario, analysis, observed


@pytest.mark.parametrize(
    "policy",
    [BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA, BusPolicy.PERFECT],
    ids=lambda p: p.value,
)
class TestBoundsHold:
    def test_response_times_bounded(self, policy):
        scenario, analysis, observed = run_scenario(policy)
        assert analysis.schedulable
        for task in scenario.taskset:
            stats = observed.of(task)
            assert stats.max_response_time is not None
            assert stats.max_response_time <= analysis.response_time(task)

    def test_per_job_accesses_bounded_by_md(self, policy):
        scenario, analysis, observed = run_scenario(policy)
        for task in scenario.taskset:
            assert observed.of(task).max_job_bus_accesses <= task.md

    def test_baseline_bound_dominates_persistence_bound(self, policy):
        scenario, _, _ = run_scenario(policy)
        platform = scenario.platform
        aware = analyze_taskset(scenario.taskset, platform, VALIDATION_CONFIG)
        baseline = analyze_taskset(scenario.taskset, platform, BASELINE_CONFIG)
        if aware.schedulable and baseline.schedulable:
            for task in scenario.taskset:
                assert aware.response_time(task) <= baseline.response_time(task)


class TestPersistenceEmerges:
    def test_first_job_pays_md_later_jobs_pay_md_r(self):
        # Single task per core: no inter-task evictions, so the residual
        # demand is observed exactly.
        specs = [ScenarioSpec("lcdnum", 0), ScenarioSpec("cnt", 1)]
        scenario, analysis, observed = run_scenario(BusPolicy.FP, specs=specs)
        for task in scenario.taskset:
            stats = observed.of(task)
            assert stats.jobs[0].bus_accesses == task.md
            for job in stats.completed_jobs[1:]:
                assert job.bus_accesses == task.md_r

    def test_cpro_bounded_by_cpro_union(self):
        # Two tasks sharing a core: the extra accesses of later jobs over
        # MDr are PCB reloads, bounded by the CPRO eviction count.
        from repro.persistence.cpro import CproCalculator

        scenario, analysis, observed = run_scenario(BusPolicy.FP)
        cpro = CproCalculator(scenario.taskset)
        lowest = scenario.taskset.lowest_priority_task
        for task in scenario.taskset:
            evictable = cpro.eviction_count(task, lowest)
            for job in observed.of(task).completed_jobs[1:]:
                assert job.bus_accesses <= task.md_r + evictable


class TestJitteredReleases:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sporadic_arrivals_stay_within_bounds(self, seed):
        rng = random.Random(seed)
        scenario, analysis, observed = run_scenario(
            BusPolicy.FP, jitter=0.4, jitter_rng=rng
        )
        for task in scenario.taskset:
            stats = observed.of(task)
            assert stats.max_response_time <= analysis.response_time(task)


class TestRandomisedScenarios:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_layouts_never_violate_bounds(self, seed):
        rng = random.Random(1000 + seed)
        names = ["lcdnum", "bs", "cnt", "fibcall", "insertsort", "ns"]
        rng.shuffle(names)
        specs = [
            ScenarioSpec(name, core=i % 2, period_factor=6 + (i % 3) * 2)
            for i, name in enumerate(names[:4])
        ]
        policy = rng.choice([BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA])
        scenario, analysis, observed = run_scenario(policy, specs=specs, rng=rng)
        if not analysis.schedulable:
            pytest.skip("scenario not schedulable under the analysis")
        for task in scenario.taskset:
            stats = observed.of(task)
            assert stats.max_response_time <= analysis.response_time(task)


class TestExactnessForIsolation:
    def test_perfect_bus_single_core_bound_is_tight(self):
        platform = Platform(
            num_cores=1, d_mem=10, bus_policy=BusPolicy.PERFECT
        )
        scenario = build_scenario([ScenarioSpec("bs", 0)], platform)
        analysis = analyze_taskset(scenario.taskset, platform, VALIDATION_CONFIG)
        workload = workload_from_programs(
            scenario.taskset, platform, scenario.programs
        )
        task = scenario.taskset.tasks[0]
        observed = simulate(workload, platform, duration=int(task.period) * 4)
        assert observed.of(task).jobs[0].response_time == analysis.response_time(
            task
        )
