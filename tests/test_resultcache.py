"""Unit tests of the persistent content-addressed result cache.

Covers the soundness-critical invariants of :mod:`repro.resultcache`:
fingerprints only hash the outcome-determining knobs, payloads round-trip
bit-identically, aborted partials are refused at the store layer,
corruption of every flavour is quarantined (never crashes, never served),
and a kill mid-write — exercised in a real subprocess — leaves committed
state untouched.  The end-to-end counterpart against real daemon
processes is ``scripts/chaos_smoke.py`` (CI's ``chaos-smoke`` job).
"""

import json
import os
import random
import subprocess
import sys

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.schedulability import check_schedulability
from repro.analysis.wcrt import analyze_taskset
from repro.budget import Budget
from repro.errors import BudgetExceeded, CacheError, ModelError
from repro.experiments import default_platform
from repro.generation import generate_taskset
from repro.perf import PerfCounters
from repro.resultcache import (
    CHAOS_FAULT_ENV,
    CHAOS_KILL_STATUS,
    ResultCache,
    WarmSeedStore,
    hint_from_seed,
    request_fingerprint,
    result_from_payload,
    result_payload,
    seed_payload,
    seed_payload_from_response,
)


@pytest.fixture(scope="module")
def platform():
    return default_platform()


@pytest.fixture(scope="module")
def taskset(platform):
    return generate_taskset(random.Random(7), platform, 0.3)


@pytest.fixture(scope="module")
def result(taskset, platform):
    return analyze_taskset(taskset, platform, AnalysisConfig())


@pytest.fixture(scope="module")
def fingerprint(taskset, platform):
    return request_fingerprint(taskset, platform, AnalysisConfig())


class TestFingerprint:
    def test_is_64_hex_digits(self, fingerprint):
        assert len(fingerprint) == 64
        assert all(c in "0123456789abcdef" for c in fingerprint)

    def test_invisible_optimisation_knobs_do_not_change_it(
        self, taskset, platform, fingerprint
    ):
        # Kernel variants are pinned bit-identical by the differential
        # oracles, so an entry computed under any of them serves all.
        for variant in (
            AnalysisConfig(memoization=False),
            AnalysisConfig(bitset_kernel=False),
            AnalysisConfig(warm_start=False),
            AnalysisConfig(array_kernel=False),
        ):
            assert request_fingerprint(taskset, platform, variant) == fingerprint

    def test_outcome_determining_knobs_change_it(
        self, taskset, platform, fingerprint
    ):
        loose = AnalysisConfig(persistence=False)
        assert request_fingerprint(taskset, platform, loose) != fingerprint

    def test_different_tasksets_differ(self, taskset, platform, fingerprint):
        other = generate_taskset(random.Random(8), platform, 0.3)
        assert request_fingerprint(other, platform, AnalysisConfig()) != fingerprint


class TestPayloadRoundtrip:
    def test_result_round_trips_bit_identically(self, taskset, result):
        rebuilt = result_from_payload(taskset, result_payload(result))
        assert rebuilt == result

    def test_payload_survives_json(self, taskset, result):
        payload = json.loads(json.dumps(result_payload(result)))
        assert result_from_payload(taskset, payload) == result

    def test_mismatched_payload_raises_model_error(self, taskset, result):
        payload = dict(result_payload(result), response_times={"ghost": 1})
        with pytest.raises(ModelError):
            result_from_payload(taskset, payload)

    def test_seed_round_trips_through_hint(self, result):
        seed = seed_payload(result)
        if not result.schedulable:
            pytest.skip("fixture task set must be schedulable for this test")
        hint = hint_from_seed(json.loads(json.dumps(seed)))
        assert hint.response_times == {
            task.priority: bound
            for task, bound in result.response_times.items()
        }
        assert hint.outer_iterations == result.outer_iterations

    def test_seed_payload_matches_response_form(self, taskset, result):
        body = dict(result_payload(result), id="x")
        assert seed_payload_from_response(taskset, body) == seed_payload(result)

    def test_malformed_seed_raises_model_error(self):
        with pytest.raises(ModelError):
            hint_from_seed({"response_times": {"1": "not-a-number"}})


class TestResultCache:
    def test_round_trip_and_reopen(self, tmp_path, result, fingerprint):
        cache = ResultCache(tmp_path)
        payload = result_payload(result)
        assert cache.put(fingerprint, payload)
        assert cache.get(fingerprint) == payload
        # A fresh handle on the same directory sees the same entry.
        assert ResultCache(tmp_path).get(fingerprint) == payload

    def test_refuses_non_ok_payloads(self, tmp_path, fingerprint):
        cache = ResultCache(tmp_path)
        partial = {"status": "budget-exceeded", "partial_response_times": {}}
        assert not cache.put(fingerprint, partial)
        assert cache.get(fingerprint) is None
        assert len(cache) == 0

    def test_rejects_malformed_fingerprints(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bad in ("", "xyz", "A" * 64, "../../etc/passwd", None):
            with pytest.raises(CacheError):
                cache.get(bad)

    def test_rejects_invalid_store_configuration(self, tmp_path):
        with pytest.raises(CacheError):
            ResultCache(tmp_path, max_entries=0)
        with pytest.raises(CacheError):
            ResultCache(tmp_path, max_bytes=0)

    def _distinct_fingerprints(self, count):
        return [f"{index:064x}" for index in range(count)]

    def test_lru_eviction_by_entry_count(self, tmp_path, result):
        cache = ResultCache(tmp_path, max_entries=2)
        payload = result_payload(result)
        first, second, third = self._distinct_fingerprints(3)
        cache.put(first, payload)
        cache.put(second, payload)
        cache.get(first)  # refresh: first is now the most recent
        cache.put(third, payload)
        assert cache.get(second) is None  # LRU victim
        assert cache.get(first) == payload
        assert cache.get(third) == payload

    def test_eviction_by_byte_budget(self, tmp_path, result):
        payload = result_payload(result)
        size = len(
            json.dumps(
                {
                    "format": "x",
                    "version": 1,
                    "fingerprint": "0" * 64,
                    "payload": payload,
                    "sha256": "0" * 64,
                },
                sort_keys=True,
            )
        )
        cache = ResultCache(tmp_path, max_bytes=size + 10)
        first, second = self._distinct_fingerprints(2)
        cache.put(first, payload)
        cache.put(second, payload)
        assert cache.get(first) is None
        assert cache.get(second) == payload

    def test_tmp_droppings_are_swept_on_scan(self, tmp_path, result, fingerprint):
        cache = ResultCache(tmp_path)
        cache.put(fingerprint, result_payload(result))
        dropping = tmp_path / "entries" / "ab" / "torn.json.tmp"
        dropping.parent.mkdir(parents=True, exist_ok=True)
        dropping.write_text('{"half')
        reopened = ResultCache(tmp_path)
        assert not dropping.exists()
        assert reopened.quarantined_files == 0  # a dropping is not corruption
        assert reopened.get(fingerprint) == result_payload(result)

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda text: text[: len(text) // 2],  # truncated JSON
            lambda text: text.replace('"ok"', '"OK"', 1),  # checksum mismatch
            lambda text: "",  # empty file
            lambda text: text.replace(
                "repro-result-cache-entry", "foreign-format", 1
            ),  # foreign tag
        ],
        ids=["truncated", "bitflip", "empty", "foreign-tag"],
    )
    def test_corruption_is_quarantined_on_reopen(
        self, tmp_path, result, fingerprint, corrupt
    ):
        cache = ResultCache(tmp_path)
        cache.put(fingerprint, result_payload(result))
        path = tmp_path / "entries" / fingerprint[:2] / f"{fingerprint}.json"
        path.write_text(corrupt(path.read_text()))
        perf = PerfCounters()
        reopened = ResultCache(tmp_path, perf=perf)
        assert reopened.get(fingerprint) is None
        assert reopened.quarantined_files == 1
        assert perf.result_cache_quarantines == 1
        assert not path.exists()
        assert list((tmp_path / "quarantine").iterdir())  # moved, not deleted

    def test_corruption_after_open_is_quarantined_at_read(
        self, tmp_path, result, fingerprint
    ):
        cache = ResultCache(tmp_path)
        cache.put(fingerprint, result_payload(result))
        path = tmp_path / "entries" / fingerprint[:2] / f"{fingerprint}.json"
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        assert cache.get(fingerprint) is None  # a miss, never an exception
        assert cache.quarantined_files == 1
        assert cache.get(fingerprint) is None  # and stays a plain miss

    def test_invalidate_drops_the_entry(self, tmp_path, result, fingerprint):
        cache = ResultCache(tmp_path)
        cache.put(fingerprint, result_payload(result))
        assert cache.invalidate(fingerprint)
        assert cache.get(fingerprint) is None
        assert not cache.invalidate(fingerprint)

    def test_counters_feed_perf(self, tmp_path, result, fingerprint):
        perf = PerfCounters()
        cache = ResultCache(tmp_path, perf=perf)
        cache.get(fingerprint)
        cache.put(fingerprint, result_payload(result))
        cache.get(fingerprint)
        assert perf.result_cache_misses == 1
        assert perf.result_cache_stores == 1
        assert perf.result_cache_hits == 1

    def test_stats_shape(self, tmp_path, result, fingerprint):
        cache = ResultCache(tmp_path)
        cache.put(fingerprint, result_payload(result))
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["quarantined_files"] == 0


class TestWarmSeedStore:
    def test_round_trip(self, tmp_path, result, fingerprint):
        if not result.schedulable:
            pytest.skip("fixture task set must be schedulable for this test")
        store = WarmSeedStore(tmp_path)
        seed = seed_payload(result)
        assert store.put(fingerprint, seed)
        assert store.get(fingerprint) == seed
        assert WarmSeedStore(tmp_path).get(fingerprint) == seed

    def test_refuses_shapeless_payloads(self, tmp_path, fingerprint):
        store = WarmSeedStore(tmp_path)
        assert not store.put(fingerprint, {"response_times": "not-a-map"})
        assert store.get(fingerprint) is None


class TestKillMidWrite:
    """The injected chaos fault, exercised in a real subprocess."""

    SCRIPT = """
import sys
from repro.resultcache import ResultCache
cache = ResultCache(sys.argv[1])
cache.put("{fp}", {{"status": "ok", "schedulable": True}})
print("survived")  # must never be reached under the fault
"""

    def _run(self, tmp_path, env_extra):
        env = dict(
            os.environ, PYTHONPATH=os.pathsep.join(sys.path)
        )
        env.pop(CHAOS_FAULT_ENV, None)
        env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-c", self.SCRIPT.format(fp="ab" * 32), str(tmp_path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )

    def test_fault_kills_between_tmp_and_commit(self, tmp_path):
        completed = self._run(tmp_path, {CHAOS_FAULT_ENV: "kill-mid-write"})
        assert completed.returncode == CHAOS_KILL_STATUS
        assert "survived" not in completed.stdout
        entries = tmp_path / "entries"
        droppings = list(entries.rglob("*.tmp"))
        assert droppings, "the injected kill must leave a torn tmp dropping"
        committed = list(entries.rglob("*.json"))
        assert committed == [], "no partial entry may reach the final path"
        # Recovery: a fresh store sweeps the dropping and serves nothing.
        cache = ResultCache(tmp_path)
        assert not list(entries.rglob("*.tmp"))
        assert cache.quarantined_files == 0
        assert cache.get("ab" * 32) is None

    def test_without_the_env_var_the_store_commits(self, tmp_path):
        completed = self._run(tmp_path, {})
        assert completed.returncode == 0
        assert "survived" in completed.stdout
        assert ResultCache(tmp_path).get("ab" * 32) is not None


class TestSchedulabilityWithCache:
    def test_cached_verdict_is_bit_identical(self, tmp_path, taskset, platform):
        cache = ResultCache(tmp_path)
        perf = PerfCounters()
        cold = check_schedulability(
            taskset, platform, perf=perf, result_cache=cache
        )
        analyses_after_cold = perf.analyses
        assert perf.result_cache_stores == 1
        warm = check_schedulability(
            taskset, platform, perf=perf, result_cache=cache
        )
        assert perf.result_cache_hits == 1
        assert perf.analyses == analyses_after_cold  # no second analysis ran
        assert warm.schedulable == cold.schedulable
        assert warm.wcrt == cold.wcrt
        bare = check_schedulability(taskset, platform)
        assert bare.schedulable == warm.schedulable
        assert bare.wcrt == warm.wcrt

    def test_budget_abort_is_never_cached(self, tmp_path, platform):
        heavy = generate_taskset(random.Random(12), platform, 0.8)
        cache = ResultCache(tmp_path)
        with pytest.raises(BudgetExceeded):
            check_schedulability(
                heavy,
                platform,
                budget=Budget(max_iterations=1),
                result_cache=cache,
            )
        assert len(cache) == 0
        # The identical uncapped request computes, completes and stores.
        perf = PerfCounters()
        full = check_schedulability(
            heavy, platform, perf=perf, result_cache=cache
        )
        assert perf.result_cache_hits == 0
        assert perf.result_cache_stores == 1
        assert len(cache) == 1
        again = check_schedulability(heavy, platform, result_cache=cache)
        assert again.wcrt == full.wcrt
