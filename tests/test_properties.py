"""Property-based tests (hypothesis) on the core bounds and data structures.

Invariants covered:

* direct-mapped cache semantics (per-set independence, warm-start
  monotonicity);
* Eq. (10) multi-job demand (dominance, monotonicity, subadditivity);
* Lemmas 1-2 (persistence-aware bounds never exceed baselines; BAS is
  monotone in the window length, baseline BAO too);
* UUnifast (sums, positivity);
* structural extraction vs exact trace simulation on random branch-free
  programs.
"""

import random as _random

from hypothesis import given, settings, strategies as st

from repro.businterference.context import AnalysisContext
from repro.businterference.requests import bao, bas
from repro.cacheanalysis.extraction import extract_parameters
from repro.cacheanalysis.simulator import simulate_trace
from repro.cacheanalysis.state import DirectMappedCache
from repro.generation.uunifast import uunifast
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.model.task import Task, TaskSet
from repro.persistence.demand import multi_job_demand
from repro.program.cfg import Block, Loop, Program, Seq

GEO = CacheGeometry(num_sets=16, block_size=32)

blocks = st.integers(min_value=0, max_value=63)
traces = st.lists(blocks, max_size=60)


class TestCacheProperties:
    @given(trace=traces)
    def test_hits_plus_misses_equals_accesses(self, trace):
        result = simulate_trace(trace, GEO)
        assert result.hits + result.misses == len(trace)

    @given(trace=traces)
    def test_misses_at_least_distinct_sets(self, trace):
        # Every distinct cache set touched by the trace misses at least
        # once (the first access to it starts from an empty set).
        result = simulate_trace(trace, GEO)
        distinct_sets = {GEO.set_of_block(b) for b in trace}
        assert result.misses >= len(distinct_sets)

    @given(trace=traces, warm=st.lists(blocks, max_size=16))
    def test_warm_start_never_increases_misses(self, trace, warm):
        cold = simulate_trace(trace, GEO)
        warm_state = DirectMappedCache.with_resident_blocks(GEO, warm)
        warmed = simulate_trace(trace, GEO, initial=warm_state)
        assert warmed.misses <= cold.misses

    @given(trace=traces)
    def test_final_state_blocks_map_to_their_sets(self, trace):
        result = simulate_trace(trace, GEO)
        for block in result.final_state.resident_blocks():
            assert result.final_state.lookup(block)

    @given(trace=traces)
    def test_repeat_of_trace_only_hits_for_persistent_suffix(self, trace):
        # Replaying a trace from its own final state gives at most the
        # cold-run miss count.
        first = simulate_trace(trace, GEO)
        second = simulate_trace(trace, GEO, initial=first.final_state)
        assert second.misses <= first.misses


def task_strategy(priority, core):
    return st.builds(
        lambda pd, md, mdr_frac, period_factor, e, u, p: _make_task(
            priority, core, pd, md, mdr_frac, period_factor, e, u, p
        ),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=0, max_value=60),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )


def _make_task(priority, core, pd, md, mdr_frac, period_factor, e, u_frac, p_frac):
    rng = _random.Random(priority * 7919 + e)
    ecbs = frozenset(rng.sample(range(64), e)) if e else frozenset()
    ordered = sorted(ecbs)
    ucbs = frozenset(ordered[: int(u_frac * len(ordered))])
    pcbs = frozenset(ordered[int((1 - p_frac) * len(ordered)):])
    d_mem = 10
    period = max(1, period_factor * (pd + md * d_mem))
    return Task(
        name=f"t{priority}",
        pd=pd,
        md=md,
        md_r=int(mdr_frac * md),
        period=period,
        deadline=period,
        priority=priority,
        core=core,
        ecbs=ecbs,
        ucbs=ucbs,
        pcbs=pcbs,
    )


def taskset_strategy():
    return st.builds(
        lambda t1, t2, t3, t4: TaskSet([t1, t2, t3, t4]),
        task_strategy(1, 0),
        task_strategy(2, 0),
        task_strategy(3, 1),
        task_strategy(4, 1),
    )


windows = st.integers(min_value=0, max_value=50_000)


class TestBoundProperties:
    @settings(max_examples=60)
    @given(taskset=taskset_strategy(), t=windows)
    def test_persistence_bas_never_exceeds_baseline(self, taskset, t):
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        aware = AnalysisContext(taskset=taskset, platform=platform, persistence=True)
        base = AnalysisContext(taskset=taskset, platform=platform, persistence=False)
        for task in taskset:
            assert bas(aware, task, t) <= bas(base, task, t)

    @settings(max_examples=60)
    @given(taskset=taskset_strategy(), t=windows)
    def test_persistence_bao_never_exceeds_baseline(self, taskset, t):
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        aware = AnalysisContext(taskset=taskset, platform=platform, persistence=True)
        base = AnalysisContext(taskset=taskset, platform=platform, persistence=False)
        for task in taskset:
            for core in (0, 1):
                assert bao(aware, core, task, t) <= bao(base, core, task, t)

    @settings(max_examples=40)
    @given(taskset=taskset_strategy(), t1=windows, t2=windows)
    def test_bounds_monotone_in_window(self, taskset, t1, t2):
        # BAS is monotone for both analyses; BAO is only guaranteed
        # monotone for the baseline: the persistence-aware W-hat can dip at
        # carry-out boundaries (a new full job enters the persistence
        # ``min`` while the persistence-oblivious carry-out term resets) —
        # see repro.analysis.decomposition for the discussion.
        lo, hi = sorted((t1, t2))
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        for persistence in (False, True):
            ctx = AnalysisContext(
                taskset=taskset, platform=platform, persistence=persistence
            )
            for task in taskset:
                assert bas(ctx, task, lo) <= bas(ctx, task, hi)
        baseline = AnalysisContext(
            taskset=taskset, platform=platform, persistence=False
        )
        for task in taskset:
            assert bao(baseline, 1, task, lo) <= bao(baseline, 1, task, hi)

    @settings(max_examples=60)
    @given(taskset=taskset_strategy(), t=windows)
    def test_bas_at_least_own_demand(self, taskset, t):
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        ctx = AnalysisContext(taskset=taskset, platform=platform, persistence=True)
        for task in taskset:
            assert bas(ctx, task, t) >= task.md


class TestDemandProperties:
    @settings(max_examples=100)
    @given(
        md=st.integers(min_value=0, max_value=1000),
        mdr_frac=st.floats(min_value=0, max_value=1),
        pcbs=st.integers(min_value=0, max_value=64),
        n=st.integers(min_value=0, max_value=100),
    )
    def test_demand_bounded_both_ways(self, md, mdr_frac, pcbs, n):
        task = Task(
            name="t",
            pd=1,
            md=md,
            md_r=int(md * mdr_frac),
            period=10_000_000,
            deadline=10_000_000,
            priority=1,
            ecbs=frozenset(range(pcbs)),
            pcbs=frozenset(range(pcbs)),
        )
        value = multi_job_demand(task, n)
        assert value <= n * task.md
        assert value <= n * task.md_r + len(task.pcbs) or n == 0

    @settings(max_examples=50)
    @given(
        md=st.integers(min_value=0, max_value=200),
        mdr=st.integers(min_value=0, max_value=200),
        pcbs=st.integers(min_value=0, max_value=64),
        n1=st.integers(min_value=0, max_value=50),
        n2=st.integers(min_value=0, max_value=50),
    )
    def test_demand_monotone_and_subadditive(self, md, mdr, pcbs, n1, n2):
        task = Task(
            name="t",
            pd=1,
            md=max(md, mdr),
            md_r=min(md, mdr),
            period=10_000_000,
            deadline=10_000_000,
            priority=1,
            ecbs=frozenset(range(pcbs)),
            pcbs=frozenset(range(pcbs)),
        )
        assert multi_job_demand(task, n1) <= multi_job_demand(task, n1 + n2)
        # Splitting a run of jobs can only add PCB reloads.
        assert multi_job_demand(task, n1 + n2) <= multi_job_demand(
            task, n1
        ) + multi_job_demand(task, n2)


class TestUUnifastProperties:
    @settings(max_examples=100)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=32),
        total=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_sum_and_positivity(self, seed, n, total):
        utils = uunifast(_random.Random(seed), n, total)
        assert len(utils) == n
        assert abs(sum(utils) - total) < 1e-9
        assert all(u >= 0 for u in utils)


def branch_free_programs():
    line = st.integers(min_value=0, max_value=40)
    simple_block = st.builds(
        lambda l, n: Block(start=l * 32, n_instructions=8 * n),
        line,
        st.integers(min_value=1, max_value=3),
    )
    loops = st.builds(
        lambda body, bound: Loop(body=body, bound=bound),
        st.builds(lambda a, b: Seq(a, b), simple_block, simple_block),
        st.integers(min_value=1, max_value=12),
    )
    return st.builds(
        lambda parts: Program(name="random", root=Seq(*parts)),
        st.lists(st.one_of(simple_block, loops), min_size=1, max_size=5),
    )


def unrolled_trace(node):
    if isinstance(node, Block):
        return list(node.memory_blocks(GEO))
    if isinstance(node, Seq):
        out = []
        for part in node.parts:
            out.extend(unrolled_trace(part))
        return out
    if isinstance(node, Loop):
        return unrolled_trace(node.body) * node.bound
    raise AssertionError("branch-free only")


class TestExtractionProperties:
    @settings(max_examples=60, deadline=None)
    @given(program=branch_free_programs())
    def test_extraction_exact_for_branch_free(self, program):
        params = extract_parameters(program, GEO)
        trace = unrolled_trace(program.root)
        result = simulate_trace(trace, GEO)
        assert params.md == result.misses
        assert params.ucbs == result.hit_sets

    @settings(max_examples=60, deadline=None)
    @given(program=branch_free_programs())
    def test_md_r_relation(self, program):
        params = extract_parameters(program, GEO)
        assert 0 <= params.md_r <= params.md
        assert params.md - params.md_r <= len(params.pcbs)


class TestSchedulabilityMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        base_util=st.floats(min_value=0.15, max_value=0.5),
    )
    def test_longer_periods_never_hurt(self, seed, base_util):
        """Uniformly stretching every period keeps schedulable sets
        schedulable (interference per unit time only drops)."""
        from repro.analysis import PERSISTENCE_AWARE, is_schedulable
        from repro.analysis.sensitivity import _scaled_taskset
        from repro.generation import generate_taskset

        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        taskset = generate_taskset(_random.Random(seed), platform, base_util)
        if not is_schedulable(taskset, platform, PERSISTENCE_AWARE):
            return
        stretched = _scaled_taskset(taskset, 2.0)
        assert is_schedulable(stretched, platform, PERSISTENCE_AWARE)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        base_util=st.floats(min_value=0.15, max_value=0.5),
    )
    def test_faster_memory_never_hurts(self, seed, base_util):
        """Shrinking d_mem keeps schedulable sets schedulable: every
        interference term of the analysis scales with the latency."""
        from repro.analysis import PERSISTENCE_AWARE, is_schedulable
        from repro.generation import generate_taskset

        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.RR)
        taskset = generate_taskset(_random.Random(seed), platform, base_util)
        if not is_schedulable(taskset, platform, PERSISTENCE_AWARE):
            return
        assert is_schedulable(
            taskset, platform.with_d_mem(5), PERSISTENCE_AWARE
        )
