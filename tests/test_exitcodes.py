"""Exit-code contract of the CLIs (see :mod:`repro.exitcodes`).

The mapping is part of the scripting interface: wrappers distinguish
"my input was bad" (2) from "the analysis failed" (3) from "the execution
machinery failed" (4) from "the user interrupted" (130) without parsing
stderr.  The end-to-end checks of real CLI invocations live in
``tests/test_cli.py`` and ``tests/test_verify_engine.py``; this file pins
the class-to-code mapping itself.
"""

import pytest

from repro.errors import (
    AnalysisAborted,
    AnalysisError,
    BudgetExceeded,
    Cancelled,
    ChunkTimeoutError,
    ConvergenceError,
    ExecutionError,
    GenerationError,
    JournalError,
    ModelError,
    ProgramError,
    ReproError,
    SimulationError,
    SweepInterrupted,
    WorkerCrashError,
)
from repro.exitcodes import (
    EXIT_ANALYSIS,
    EXIT_EXECUTION,
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    exit_code_for,
)


class TestExitCodeMapping:
    def test_distinct_documented_codes(self):
        codes = {
            EXIT_OK,
            EXIT_FAILURE,
            EXIT_USAGE,
            EXIT_ANALYSIS,
            EXIT_EXECUTION,
            EXIT_INTERRUPTED,
        }
        assert codes == {0, 1, 2, 3, 4, 130}

    @pytest.mark.parametrize(
        "error_type", [ModelError, GenerationError, ProgramError]
    )
    def test_input_errors_map_to_usage(self, error_type):
        assert exit_code_for(error_type("bad input")) == EXIT_USAGE

    @pytest.mark.parametrize(
        "error_type",
        [
            AnalysisError,
            ConvergenceError,
            SimulationError,
            AnalysisAborted,
            BudgetExceeded,
            Cancelled,
        ],
    )
    def test_analysis_errors_map_to_analysis(self, error_type):
        assert exit_code_for(error_type("analysis failed")) == EXIT_ANALYSIS

    @pytest.mark.parametrize(
        "error_type",
        [ExecutionError, WorkerCrashError, ChunkTimeoutError, JournalError],
    )
    def test_execution_errors_map_to_execution(self, error_type):
        assert exit_code_for(error_type("machinery failed")) == EXIT_EXECUTION

    def test_interrupt_wins_over_its_execution_base(self):
        # SweepInterrupted subclasses ExecutionError; the conventional 130
        # must win over the generic execution code.
        assert exit_code_for(SweepInterrupted("^C")) == EXIT_INTERRUPTED

    def test_unknown_repro_error_falls_back_to_failure(self):
        assert exit_code_for(ReproError("uncategorised")) == EXIT_FAILURE
