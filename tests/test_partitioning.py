"""Unit tests for the task-to-core partitioning heuristics."""

import random

import pytest

from repro.errors import GenerationError
from repro.generation.partitioning import (
    HEURISTICS,
    best_fit,
    cache_aware_worst_fit,
    first_fit,
    worst_fit,
)
from repro.model.platform import Platform
from repro.model.task import Task


def make_task(name, utilization, priority, ecbs=(), ucbs=(), pcbs=()):
    # d_mem = 10; pd chosen so (pd + md*d)/T equals the target utilisation.
    period = 1000
    pd = int(utilization * period)
    return Task(
        name=name, pd=pd, md=0, period=period, deadline=period,
        priority=priority, ecbs=frozenset(ecbs), ucbs=frozenset(ucbs),
        pcbs=frozenset(pcbs),
    )


@pytest.fixture()
def platform():
    return Platform(num_cores=2, d_mem=10)


class TestUtilizationPacking:
    def test_all_tasks_assigned(self, platform):
        tasks = [make_task(f"t{i}", 0.2, i) for i in range(8)]
        for heuristic in (first_fit, best_fit, worst_fit):
            placed = heuristic(tasks, platform)
            assert len(placed) == 8
            assert {t.core for t in placed} <= {0, 1}

    def test_capacity_respected(self, platform):
        tasks = [make_task(f"t{i}", 0.4, i) for i in range(4)]
        for heuristic in (first_fit, best_fit, worst_fit):
            placed = heuristic(tasks, platform)
            for core in platform.cores:
                load = sum(
                    t.utilization(platform.d_mem) for t in placed if t.core == core
                )
                assert load <= 1.0 + 1e-9

    def test_infeasible_raises(self, platform):
        tasks = [make_task(f"t{i}", 0.9, i) for i in range(3)]
        with pytest.raises(GenerationError):
            first_fit(tasks, platform)

    def test_first_fit_prefers_low_cores(self, platform):
        tasks = [make_task(f"t{i}", 0.1, i) for i in range(4)]
        placed = first_fit(tasks, platform)
        assert all(t.core == 0 for t in placed)

    def test_worst_fit_balances(self, platform):
        tasks = [make_task(f"t{i}", 0.3, i) for i in range(4)]
        placed = worst_fit(tasks, platform)
        loads = [
            sum(t.utilization(platform.d_mem) for t in placed if t.core == core)
            for core in platform.cores
        ]
        assert loads[0] == pytest.approx(loads[1])

    def test_best_fit_fills_before_opening(self, platform):
        # 0.6 then 0.3 fit together on one core under best fit.
        tasks = [make_task("big", 0.6, 1), make_task("small", 0.3, 2)]
        placed = best_fit(tasks, platform)
        assert placed[0].core == placed[1].core

    def test_custom_capacity(self, platform):
        tasks = [make_task(f"t{i}", 0.4, i) for i in range(2)]
        placed = first_fit(tasks, platform, capacity=0.5)
        assert placed[0].core != placed[1].core

    def test_priorities_preserved(self, platform):
        tasks = [make_task(f"t{i}", 0.2, i) for i in range(4)]
        placed = worst_fit(tasks, platform)
        assert sorted(t.priority for t in placed) == [0, 1, 2, 3]


class TestCacheAware:
    def test_separates_conflicting_footprints(self, platform):
        # Two pairs: tasks within a pair share cache sets; across pairs
        # they are disjoint.  The cache-aware packer should co-locate
        # non-conflicting tasks.
        a1 = make_task("a1", 0.2, 1, ecbs=range(0, 50), pcbs=range(0, 50))
        a2 = make_task("a2", 0.2, 2, ecbs=range(0, 50), pcbs=range(0, 50))
        b1 = make_task("b1", 0.2, 3, ecbs=range(100, 150), pcbs=range(100, 150))
        b2 = make_task("b2", 0.2, 4, ecbs=range(100, 150), pcbs=range(100, 150))
        placed = cache_aware_worst_fit(
            [a1, a2, b1, b2], platform, headroom=1.0
        )
        cores = {t.name: t.core for t in placed}
        assert cores["a1"] != cores["a2"]
        assert cores["b1"] != cores["b2"]

    def test_zero_headroom_matches_worst_fit_loads(self, platform):
        rng = random.Random(5)
        tasks = [
            make_task(f"t{i}", 0.1 + 0.05 * (i % 4), i,
                      ecbs=range(rng.randrange(0, 200), rng.randrange(200, 256)))
            for i in range(8)
        ]
        aware = cache_aware_worst_fit(tasks, platform, headroom=0.0)
        plain = worst_fit(tasks, platform)
        d_mem = platform.d_mem
        loads = lambda placed: sorted(
            round(sum(t.utilization(d_mem) for t in placed if t.core == c), 6)
            for c in platform.cores
        )
        assert loads(aware) == loads(plain)

    def test_rejects_negative_headroom(self, platform):
        with pytest.raises(GenerationError):
            cache_aware_worst_fit([make_task("t", 0.1, 1)], platform, headroom=-1)

    def test_registry_contains_all(self):
        assert set(HEURISTICS) == {
            "first-fit", "best-fit", "worst-fit", "cache-aware",
        }
