"""Tests for the randomised analysis-vs-simulation validation campaign."""

import pytest

from repro.errors import SimulationError
from repro.model.platform import BusPolicy
from repro.sim.validation import run_campaign


class TestCampaign:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_bound_violations(self, seed):
        result = run_campaign(scenarios=8, seed=seed)
        assert result.scenarios == 8
        assert result.passed, result.violations

    def test_policies_rotate(self):
        result = run_campaign(scenarios=4, seed=5)
        policies = [report.policy for report in result.reports]
        assert policies == [
            BusPolicy.FP,
            BusPolicy.RR,
            BusPolicy.TDMA,
            BusPolicy.PERFECT,
        ]

    def test_jittered_releases_also_validate(self):
        result = run_campaign(scenarios=4, seed=9, jitter=0.4)
        assert result.passed, result.violations

    def test_schedulable_scenarios_check_tasks(self):
        result = run_campaign(scenarios=8, seed=3)
        checked = sum(r.checked_tasks for r in result.reports if r.schedulable)
        assert checked > 0

    def test_slack_within_unit_interval(self):
        result = run_campaign(scenarios=6, seed=11)
        assert 0.0 <= result.min_slack <= 1.0

    def test_single_policy_campaign(self):
        result = run_campaign(
            scenarios=3, seed=1, policies=(BusPolicy.RR,)
        )
        assert all(r.policy is BusPolicy.RR for r in result.reports)

    def test_custom_benchmark_pool(self):
        result = run_campaign(
            scenarios=2, seed=2, benchmarks=("lcdnum", "bs", "cnt")
        )
        assert result.scenarios == 2

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SimulationError):
            run_campaign(scenarios=1, benchmarks=("nonexistent",))

    def test_zero_scenarios_rejected(self):
        with pytest.raises(SimulationError):
            run_campaign(scenarios=0)

    def test_empty_campaign_properties(self):
        from repro.sim.validation import CampaignResult

        empty = CampaignResult()
        assert empty.passed
        assert empty.min_slack == 1.0
        assert empty.scenarios == 0


class TestDeterminism:
    """Regression tests for explicit-RNG reproducibility (same seed, same
    reports — no dependence on the module-level ``random`` state)."""

    @staticmethod
    def _fingerprint(result):
        return [
            (
                r.policy,
                r.schedulable,
                r.checked_tasks,
                r.min_slack,
                tuple(r.violations),
            )
            for r in result.reports
        ]

    def test_same_seed_identical_reports(self):
        first = run_campaign(scenarios=4, seed=42)
        second = run_campaign(scenarios=4, seed=42)
        assert self._fingerprint(first) == self._fingerprint(second)

    def test_explicit_rng_matches_seed(self):
        import random

        by_seed = run_campaign(scenarios=3, seed=7)
        by_rng = run_campaign(scenarios=3, seed=999, rng=random.Random(7))
        assert self._fingerprint(by_seed) == self._fingerprint(by_rng)

    def test_global_random_state_untouched(self):
        import random

        random.seed(123)
        before = random.random()
        random.seed(123)
        run_campaign(scenarios=2, seed=5)
        assert random.random() == before

    def test_different_seeds_differ(self):
        first = run_campaign(scenarios=4, seed=0)
        second = run_campaign(scenarios=4, seed=1)
        assert self._fingerprint(first) != self._fingerprint(second)
