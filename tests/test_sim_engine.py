"""Unit tests for the discrete-event simulator engine."""

import pytest

from repro.errors import SimulationError
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.model.task import Task, TaskSet
from repro.program.cfg import Block, Loop, Program, Seq
from repro.sim.engine import MulticoreSimulator, simulate
from repro.sim.workload import (
    SimWorkload,
    periodic_releases,
    workload_from_programs,
)


def make_task(name, priority, core, pd, md, period, md_r=None):
    return Task(
        name=name,
        pd=pd,
        md=md,
        md_r=md_r,
        period=period,
        deadline=period,
        priority=priority,
        core=core,
    )


def program_for(lines, work, start_line=0, loop=1, uncached=0):
    block = Block(
        start=start_line * 32, n_instructions=8 * lines, work=work, uncached=uncached
    )
    root = Loop(block, bound=loop) if loop > 1 else block
    return Program(name="prog", root=root)


def build_workload(entries, platform):
    """entries: list of (task, program)."""
    taskset = TaskSet([task for task, _ in entries])
    programs = {task: prog for task, prog in entries}
    return workload_from_programs(taskset, platform, programs), taskset


class TestSingleTask:
    def test_response_time_is_pd_plus_memory(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)
        task = make_task("solo", 1, 0, pd=40, md=3, period=1000)
        workload, taskset = build_workload(
            [(task, program_for(lines=3, work=40))], platform
        )
        result = simulate(workload, platform, duration=3000)
        stats = result.of(task)
        # First job: 40 cycles of work + 3 misses x 10 cycles.
        assert stats.jobs[0].response_time == 40 + 30

    def test_persistence_across_jobs(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)
        task = make_task("solo", 1, 0, pd=40, md=3, period=1000)
        workload, _ = build_workload(
            [(task, program_for(lines=3, work=40))], platform
        )
        result = simulate(workload, platform, duration=5000)
        stats = result.of(task)
        assert stats.jobs[0].bus_accesses == 3
        # All three lines are persistent: later jobs run from the cache.
        assert all(j.bus_accesses == 0 for j in stats.jobs[1:] if j.finish)
        assert stats.jobs[1].response_time == 40

    def test_uncached_traffic_never_cached(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)
        task = make_task("solo", 1, 0, pd=40, md=5, period=1000)
        workload, _ = build_workload(
            [(task, program_for(lines=3, work=40, uncached=2))], platform
        )
        result = simulate(workload, platform, duration=5000)
        stats = result.of(task)
        assert stats.jobs[0].bus_accesses == 5
        assert stats.jobs[1].bus_accesses == 2


class TestPreemption:
    def test_high_priority_preempts(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)
        # lp releases at 0 and runs long; hp releases at its period bound.
        hp = make_task("hp", 1, 0, pd=50, md=1, period=300)
        lp = make_task("lp", 2, 0, pd=400, md=1, period=2000)
        workload, _ = build_workload(
            [
                (hp, program_for(lines=1, work=50, start_line=0)),
                (lp, program_for(lines=1, work=400, start_line=10)),
            ],
            platform,
        )
        result = simulate(workload, platform, duration=2000)
        hp_stats = result.of(hp)
        lp_stats = result.of(lp)
        # hp is never delayed by more than one in-flight lp access.
        for job in hp_stats.completed_jobs:
            assert job.response_time <= 50 + 10 + 10
        # lp accumulates all hp interference.
        assert lp_stats.jobs[0].response_time > 400

    def test_cache_evictions_by_preempting_task(self):
        platform = Platform(
            num_cores=1,
            d_mem=10,
            bus_policy=BusPolicy.FP,
            cache=CacheGeometry(num_sets=16),
        )
        # Both tasks map onto set 0: the hp job evicts lp's line every time.
        hp = make_task("hp", 1, 0, pd=10, md=1, period=97)
        lp = make_task("lp", 2, 0, pd=300, md=10, period=3000)
        lp_program = Program(
            name="lp",
            root=Loop(Block(start=0, n_instructions=8, work=30), bound=10),
        )
        hp_program = Program(
            name="hp", root=Block(start=16 * 32, n_instructions=8, work=10)
        )
        workload, _ = build_workload(
            [(hp, hp_program), (lp, lp_program)], platform
        )
        result = simulate(workload, platform, duration=3000)
        lp_stats = result.of(lp)
        # Without preemption lp would miss once; each hp preemption forces
        # a reload of the conflicting line.
        assert lp_stats.jobs[0].bus_accesses > 1


class TestBusContention:
    def test_remote_core_contention_delays(self):
        base = dict(d_mem=10, bus_policy=BusPolicy.FP)
        # Task under observation on core 0, a bus hog on core 1.
        observed = make_task("obs", 2, 0, pd=100, md=10, period=5000)
        hog = make_task("hog", 1, 1, pd=10, md=40, period=600)
        obs_prog = program_for(lines=10, work=100, start_line=0)
        hog_prog = program_for(lines=20, work=10, start_line=100, loop=2, uncached=20)

        platform = Platform(num_cores=2, **base)
        workload, _ = build_workload(
            [(hog, hog_prog), (observed, obs_prog)], platform
        )
        contended = simulate(workload, platform, duration=5000)

        solo_platform = Platform(num_cores=1, **base)
        solo = make_task("obs", 1, 0, pd=100, md=10, period=5000)
        solo_workload, _ = build_workload([(solo, obs_prog)], solo_platform)
        alone = simulate(solo_workload, solo_platform, duration=5000)

        assert (
            contended.of(observed).jobs[0].response_time
            > alone.of(solo).jobs[0].response_time
        )

    def test_perfect_bus_never_queues(self):
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.PERFECT)
        t1 = make_task("a", 1, 0, pd=20, md=5, period=1000)
        t2 = make_task("b", 2, 1, pd=20, md=5, period=1000)
        prog1 = program_for(lines=5, work=20, start_line=0)
        prog2 = program_for(lines=5, work=20, start_line=50)
        workload, _ = build_workload([(t1, prog1), (t2, prog2)], platform)
        result = simulate(workload, platform, duration=1000)
        for task in (t1, t2):
            assert result.of(task).jobs[0].response_time == 20 + 5 * 10


class TestTdmaSemantics:
    def test_bus_idles_outside_owner_windows(self):
        platform = Platform(
            num_cores=2, d_mem=10, bus_policy=BusPolicy.TDMA, slot_size=1
        )
        # Core 1's task requests at t=0 but owns only [10, 20) of each
        # 20-cycle TDMA cycle.
        task = make_task("t", 1, 1, pd=0, md=1, period=500)
        program = Program(name="p", root=Block(start=0, n_instructions=8, work=0))
        workload, _ = build_workload([(task, program)], platform)
        result = simulate(workload, platform, duration=500)
        # Release at 0, window starts at 10, service 10 -> finish 20.
        assert result.of(task).jobs[0].response_time == 20


class TestReleasePlans:
    def test_periodic_plan_counts(self):
        task = make_task("t", 1, 0, pd=10, md=1, period=100)
        plan = periodic_releases(TaskSet([task]), duration=1000)
        assert plan.of(task) == list(range(0, 1000, 100))

    def test_jitter_requires_rng(self):
        task = make_task("t", 1, 0, pd=10, md=1, period=100)
        with pytest.raises(SimulationError):
            periodic_releases(TaskSet([task]), duration=1000, jitter=0.5)

    def test_jittered_gaps_at_least_period(self):
        import random

        task = make_task("t", 1, 0, pd=10, md=1, period=100)
        plan = periodic_releases(
            TaskSet([task]), duration=5000, jitter=0.5, rng=random.Random(1)
        )
        releases = plan.of(task)
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(gap >= 100 for gap in gaps)

    def test_rejects_bad_duration(self):
        task = make_task("t", 1, 0, pd=10, md=1, period=100)
        with pytest.raises(SimulationError):
            periodic_releases(TaskSet([task]), duration=0)


class TestWorkloadValidation:
    def test_missing_trace_rejected(self):
        task = make_task("t", 1, 0, pd=10, md=1, period=100)
        with pytest.raises(SimulationError):
            SimWorkload(taskset=TaskSet([task]), traces={})

    def test_missing_program_rejected(self):
        platform = Platform(num_cores=1, d_mem=10)
        task = make_task("t", 1, 0, pd=10, md=1, period=100)
        with pytest.raises(SimulationError):
            workload_from_programs(TaskSet([task]), platform, {})


class TestMetrics:
    def test_bus_utilization_reported(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)
        task = make_task("t", 1, 0, pd=10, md=5, period=200)
        workload, _ = build_workload(
            [(task, program_for(lines=5, work=10, uncached=0))], platform
        )
        sim = MulticoreSimulator(workload, platform, duration=2000)
        result = sim.run()
        assert 0 < result.bus_utilization < 1

    def test_unfinished_jobs_have_no_response(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)
        # Overloaded: pd > period.
        task = make_task("t", 1, 0, pd=300, md=1, period=100)
        workload, _ = build_workload(
            [(task, program_for(lines=1, work=300))], platform
        )
        result = simulate(workload, platform, duration=400, horizon=500)
        stats = result.of(task)
        assert any(j.finish is None for j in stats.jobs)
        assert all(j.response_time is None for j in stats.jobs if j.finish is None)


class TestBusWaitStats:
    def test_waits_recorded_per_core(self):
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        t1 = make_task("a", 1, 0, pd=20, md=5, period=1000)
        t2 = make_task("b", 2, 1, pd=20, md=5, period=1000)
        prog1 = program_for(lines=5, work=20, start_line=0)
        prog2 = program_for(lines=5, work=20, start_line=50)
        workload, _ = build_workload([(t1, prog1), (t2, prog2)], platform)
        result = simulate(workload, platform, duration=2000)
        total_transactions = sum(s.count for s in result.bus_waits.values())
        issued = sum(
            stats.total_bus_accesses for stats in result.stats.values()
        )
        assert total_transactions == issued

    def test_contention_produces_waiting(self):
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        # Simultaneous release, both immediately fetch: one must wait.
        t1 = make_task("a", 1, 0, pd=0, md=3, period=1000)
        t2 = make_task("b", 2, 1, pd=0, md=3, period=1000)
        prog1 = program_for(lines=3, work=0, start_line=0)
        prog2 = program_for(lines=3, work=0, start_line=50)
        workload, _ = build_workload([(t1, prog1), (t2, prog2)], platform)
        result = simulate(workload, platform, duration=1000)
        # The lower-priority core's requests waited behind core 0's.
        assert result.bus_waits[1].max_wait > 0
        assert result.bus_waits[1].mean_wait > 0

    def test_perfect_bus_never_waits(self):
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.PERFECT)
        t1 = make_task("a", 1, 0, pd=0, md=3, period=1000)
        t2 = make_task("b", 2, 1, pd=0, md=3, period=1000)
        prog1 = program_for(lines=3, work=0, start_line=0)
        prog2 = program_for(lines=3, work=0, start_line=50)
        workload, _ = build_workload([(t1, prog1), (t2, prog2)], platform)
        result = simulate(workload, platform, duration=1000)
        for stats in result.bus_waits.values():
            assert stats.max_wait == 0
